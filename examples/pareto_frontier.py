#!/usr/bin/env python3
"""Multi-objective planning: the Pareto time/cost frontier of a workflow.

The paper's planner optimizes one scalarized metric and names Pareto-frontier
plans as the natural extension (§2.2.3).  This example plans the
text-analytics workflow for *all* non-dominated (execution time, monetary
cost) trade-offs at once, so an analyst can pick deadline-first or
budget-first after seeing the options.

Run:  python examples/pareto_frontier.py
"""

from repro.core import IReS, OptimizationPolicy, Planner
from repro.core.estimators import OracleEstimator
from repro.core.pareto import ParetoPlanner
from repro.scenarios import setup_text_analytics

N_DOCUMENTS = 25_000


def main() -> None:
    ires = IReS()
    make_workflow = setup_text_analytics(ires)
    workflow = make_workflow(N_DOCUMENTS)
    estimator = OracleEstimator(ires.cloud)

    frontier = ParetoPlanner(ires.library, estimator).plan_frontier(workflow)
    frontier.sort(key=lambda plan: plan.metrics["execTime"])

    print(f"Pareto frontier for {N_DOCUMENTS} documents "
          f"({len(frontier)} plans):\n")
    print(f"{'time (s)':>10} {'cost':>12}  engines")
    for plan in frontier:
        engines = "+".join(sorted(plan.engines_used()))
        print(f"{plan.metrics['execTime']:>10.2f} "
              f"{plan.metrics['cost']:>12.1f}  {engines}")

    # the scalar planner's optima sit at the frontier's two ends
    fastest = Planner(ires.library, estimator,
                      OptimizationPolicy.min_exec_time()).plan(workflow)
    cheapest = Planner(ires.library, estimator,
                       OptimizationPolicy.min_cost()).plan(workflow)
    print(f"\nmin-time scalar plan:  {fastest.cost:.2f}s "
          f"({'+'.join(sorted(fastest.engines_used()))})")
    print(f"min-cost scalar plan:  cost {cheapest.cost:.1f} "
          f"({'+'.join(sorted(cheapest.engines_used()))})")
    assert fastest.cost == min(p.metrics["execTime"] for p in frontier)
    assert cheapest.cost == min(p.metrics["cost"] for p in frontier)


if __name__ == "__main__":
    main()
