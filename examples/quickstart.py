#!/usr/bin/env python3
"""Quickstart: plan and execute a multi-engine workflow with IReS.

Builds the paper's text-analytics workflow (tf-idf → k-means, Figure 4),
lets the planner pick engines for three input scales, and executes the
chosen plan over the simulated multi-engine cloud — including the
automatically inserted move operator in the hybrid regime.

Run:  python examples/quickstart.py
"""

from repro.core import IReS
from repro.scenarios import setup_text_analytics


def main() -> None:
    # The platform facade wires the multi-engine cloud, operator library,
    # profiler/modeler, DP planner and executor together.
    ires = IReS()

    # Register the scenario's operators: TF_IDF and kmeans, each implemented
    # on scikit (centralized) and Spark (distributed).
    make_workflow = setup_text_analytics(ires)

    print("=== Engine choice vs corpus size (Figure 12 behaviour) ===")
    for n_documents in (5_000, 25_000, 100_000):
        workflow = make_workflow(n_documents)
        plan = ires.plan(workflow)
        chain = " -> ".join(
            f"{step.operator.name}@{step.engine}" for step in plan.steps
        )
        print(f"{n_documents:>7} docs | est. {plan.cost:6.1f}s | {chain}")

    print("\n=== Executing the 25k-document hybrid plan ===")
    report = ires.execute(make_workflow(25_000))
    print(f"succeeded:          {report.succeeded}")
    print(f"simulated time:     {report.sim_time:.1f}s")
    print(f"planning overhead:  {report.initial_planning_seconds * 1000:.1f}ms (real)")
    print(f"engines used:       {report.engines_used()}")
    for execution in report.executions:
        step = execution.step
        print(f"  {step.operator.name:<28} {execution.engine:<8} "
              f"{execution.sim_seconds:7.2f}s")


if __name__ == "__main__":
    main()
