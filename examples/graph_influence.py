#!/usr/bin/env python3
"""Graph analytics: subscriber influence over a CDR call graph.

The WIND use case of §4: call detail records form a graph (customers are
vertices, calls are edges) and Pagerank computes each subscriber's influence
score.  IReS selects Java / Hama / Spark depending on graph size (Figure 11),
and the operator really runs on a synthetic heavy-tailed call graph.

Run:  python examples/graph_influence.py
"""

from repro.analytics import generate_cdr_graph, pagerank
from repro.analytics.pagerank import top_influencers
from repro.core import IReS
from repro.scenarios import setup_graph_analytics


def main() -> None:
    ires = IReS()
    make_workflow = setup_graph_analytics(ires)

    print("=== Engine choice vs graph size (Figure 11 behaviour) ===")
    for edges in (10_000, 1_000_000, 20_000_000, 100_000_000):
        plan = ires.plan(make_workflow(edges))
        print(f"{edges:>12,} edges -> {plan.steps[-1].engine:<6} "
              f"(est. {plan.cost:6.1f}s)")

    print("\n=== Executing on a real synthetic CDR graph ===")
    edges = generate_cdr_graph(50_000, n_vertices=5_000, seed=42)
    report = ires.execute(make_workflow(len(edges)))
    print(f"IReS scheduled pagerank on {report.engines_used()[0]} "
          f"({report.sim_time:.1f} simulated seconds)")

    scores = pagerank(edges, n_vertices=5_000, iterations=20)
    print("top influencers (subscriber id, score):")
    for vertex, score in top_influencers(scores, k=5):
        print(f"  #{vertex:<6} {score:.5f}")


if __name__ == "__main__":
    main()
