#!/usr/bin/env python3
"""Fault tolerance: kill an engine mid-workflow and watch IReS replan.

Reproduces the §4.5 scenario: the HelloWorld chain (Table 1) is planned
optimally, the engine chosen for HelloWorld2 is killed the moment that
operator starts, and the two replanning strategies are compared —
IResReplan (reuses the materialized intermediate results) vs TrivialReplan
(reschedules the whole workflow).

Run:  python examples/fault_tolerance.py
"""

from repro.core import IReS
from repro.execution import IRES_REPLAN, TRIVIAL_REPLAN
from repro.scenarios import setup_helloworld


def run_with_failure(strategy: str, victim_operator: str = "HelloWorld2"):
    ires = IReS(strategy=strategy)
    make_workflow = setup_helloworld(ires)
    plan = ires.plan(make_workflow())
    victim_engine = plan.step_for_operator(victim_operator).engine
    ires.fault_injector.kill_engine_at(victim_engine,
                                       trigger_operator=victim_operator)
    report = ires.execute(make_workflow())
    return report, victim_engine


def main() -> None:
    baseline = IReS()
    make_workflow = setup_helloworld(baseline)
    plan = baseline.plan(make_workflow())
    print("optimal plan (no failures):")
    for step in plan.steps:
        if not step.is_move:
            print(f"  {step.abstract_name:<12} -> {step.engine}")
    no_failure = baseline.execute(make_workflow())
    print(f"execution time: {no_failure.sim_time:.1f}s\n")

    for strategy in (IRES_REPLAN, TRIVIAL_REPLAN):
        report, victim = run_with_failure(strategy)
        operator_runs = [e.step.abstract_name for e in report.executions
                         if e.success and e.engine != "move"]
        print(f"{strategy}: killed {victim} when HelloWorld2 started")
        print(f"  execution time:  {report.sim_time:.1f}s")
        print(f"  replanning time: {report.replanning_seconds * 1000:.1f}ms")
        print(f"  operators run:   {operator_runs}")
        print()


if __name__ == "__main__":
    main()
