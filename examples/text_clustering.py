#!/usr/bin/env python3
"""The §3.4 text-clustering workflow, end to end with real data.

Generates a synthetic web corpus (stand-in for the IMR WARC data), has IReS
pick engines for the tf-idf → k-means pipeline, and then actually runs the
operators (repro.analytics) to recover the latent topics — demonstrating
that the black-box operators produce genuine artifacts.

Run:  python examples/text_clustering.py
"""

import collections

from repro.analytics import generate_corpus, kmeans, tfidf_vectorize
from repro.core import IReS
from repro.scenarios import setup_text_analytics

N_DOCUMENTS = 300
N_TOPICS = 4


def main() -> None:
    # -- 1. the data (what the paper reads from HDFS as WARC files) --------
    documents = generate_corpus(N_DOCUMENTS, n_topics=N_TOPICS, seed=11)
    print(f"corpus: {len(documents)} documents, {N_TOPICS} latent topics")

    # -- 2. IReS picks the engines ------------------------------------------
    ires = IReS()
    make_workflow = setup_text_analytics(ires)
    report = ires.execute(make_workflow(N_DOCUMENTS))
    print(f"IReS plan engines: {report.engines_used()} "
          f"(simulated {report.sim_time:.1f}s)")

    # -- 3. run the actual operators the plan scheduled ---------------------
    vectors = tfidf_vectorize(documents, min_df=2)
    print(f"tf-idf: {vectors.n_documents} x {vectors.n_terms} matrix")

    clusters = kmeans(vectors.matrix, k=N_TOPICS, seed=5)
    sizes = collections.Counter(clusters.labels.tolist())
    print(f"k-means: inertia={clusters.inertia:.2f}, "
          f"{clusters.iterations} iterations")
    for label, size in sorted(sizes.items()):
        print(f"  cluster {label}: {size} documents")

    # sanity: with topic-structured documents the clustering is non-trivial
    assert len(sizes) == N_TOPICS


if __name__ == "__main__":
    main()
