#!/usr/bin/env python3
"""MuSQLE: one SQL query over tables living in three different engines.

TPC-H tables are split the way the paper deploys them — small legacy tables
in PostgreSQL, medium in MemSQL, large facts in SparkSQL — and MuSQLE's
location-aware optimizer decides which sub-joins run where and what moves
between engines.

Run:  python examples/multiengine_sql.py
"""

from repro.musqle import MuSQLE, build_default_deployment
from repro.musqle.plan import count_moves, engines_used

QUERY = """
SELECT c_custkey, o_orderdate
FROM customer, orders, nation, lineitem, part
WHERE c_custkey = o_custkey
  AND c_nationkey = n_nationkey
  AND o_orderkey = l_orderkey
  AND l_partkey = p_partkey
  AND n_name = 'GERMANY'
  AND p_retailprice > 1980
"""


def main() -> None:
    deployment = build_default_deployment(scale_factor=2.0, seed=7)
    print("table placement:")
    for engine_name, engine in deployment.engines.items():
        print(f"  {engine_name:<11} {sorted(engine.resident)}")

    musqle = MuSQLE(deployment)
    plan, opt_stats = musqle.optimize(QUERY)

    print(f"\noptimized in {opt_stats.total_seconds * 1000:.1f}ms "
          f"({opt_stats.csg_cmp_pairs} csg-cmp pairs, "
          f"{opt_stats.explain_seconds * 1000:.1f}ms in EXPLAIN calls)")
    print(f"engines used: {sorted(engines_used(plan))}, "
          f"moves: {count_moves(plan)}")
    print("\nplan:")
    print(plan.describe())

    table, info = musqle.execute(plan)
    print(f"\nresult: {table.n_rows} rows "
          f"(customers in Germany who ordered a part pricier than 1980)")
    print(f"simulated execution: {info.sim_seconds:.2f}s "
          f"(moves {info.move_seconds:.2f}s)")
    print(f"per-engine work: "
          f"{ {k: round(v, 2) for k, v in info.per_engine_seconds.items()} }")


if __name__ == "__main__":
    main()
