#!/usr/bin/env python3
"""The §3.3 tutorial: build the LineCount workflow from description files.

Recreates the deliverable's server-side definition flow: a dataset
description, a materialized operator description, an abstract operator and a
``graph`` file — all in the dotted ``key=value`` format — are written to a
scratch directory, parsed back, materialized and executed.

Run:  python examples/linecount_from_files.py
"""

import tempfile
from pathlib import Path

from repro.analytics import linecount
from repro.core import AbstractOperator, Dataset, IReS, MaterializedOperator
from repro.core.metadata import MetadataTree

SERVER_LOG = "\n".join(f"2017-02-{d:02d} INFO asap-server heartbeat ok"
                       for d in range(1, 28)) + "\n"


def write_library(root: Path) -> None:
    """Lay out the asapLibrary/ directory structure of §3.3."""
    (root / "datasets").mkdir(parents=True)
    (root / "datasets" / "asapServerLog").write_text(
        "Optimization.documents=1\n"
        "Execution.path=hdfs:///user/root/asap-server.log\n"
        "Constraints.Engine.FS=HDFS\n"
        "Constraints.type=text\n"
        "Optimization.size=%d\n" % len(SERVER_LOG)
    )
    ops = root / "operators" / "LineCount_spark"
    ops.mkdir(parents=True)
    (ops / "description").write_text(
        "Constraints.Engine=Spark\n"
        "Constraints.Output.number=1\n"
        "Constraints.Input.number=1\n"
        "Constraints.Input0.Engine.FS=HDFS\n"
        "Constraints.Input0.type=text\n"
        "Constraints.Output0.Engine.FS=HDFS\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n"
        "Execution.Arguments.number=2\n"
        "Execution.Argument0=In0.path.local\n"
        "Execution.Argument1=lines.out\n"
        "Execution.Output0.path=$HDFS_OP_DIR/lines.out\n"
    )
    abstract = root / "abstractOperators"
    abstract.mkdir()
    (abstract / "LineCount").write_text(
        "Constraints.Output.number=1\n"
        "Constraints.Input.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n"
    )
    wf = root / "abstractWorkflows" / "LineCountWorkflow"
    wf.mkdir(parents=True)
    (wf / "graph").write_text(
        "asapServerLog,LineCount,0\n"
        "LineCount,d1,0\n"
        "d1,$$target\n"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "asapLibrary"
        write_library(root)
        print(f"asapLibrary written under {root}")

        # -- parse everything back, exactly as the IReS server would -------
        ires = IReS()
        ires.register_dataset(Dataset.from_file(
            "asapServerLog", root / "datasets" / "asapServerLog"))
        ires.register_operator(MaterializedOperator.from_file(
            "LineCount_spark",
            root / "operators" / "LineCount_spark" / "description",
            impl=lambda text: linecount(text)))
        ires.register_abstract(AbstractOperator.from_file(
            "LineCount", root / "abstractOperators" / "LineCount"))

        graph_lines = (root / "abstractWorkflows" / "LineCountWorkflow" /
                       "graph").read_text().splitlines()
        workflow = ires.workflow_from_graph("LineCountWorkflow", graph_lines)
        print(f"parsed workflow: {workflow}")

        # -- materialize and execute ----------------------------------------
        plan = ires.plan(workflow)
        print(f"materialized plan: {plan}")
        report = ires.execute(workflow)
        print(f"executed in {report.sim_time:.2f} simulated seconds "
              f"on {report.engines_used()}")

        # the operator implementation really counts lines (wc -l semantics)
        lines = linecount(SERVER_LOG)
        print(f"lines.out = {lines}")
        assert lines == 27


if __name__ == "__main__":
    main()
