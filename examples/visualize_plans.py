#!/usr/bin/env python3
"""Render workflows and plans to Graphviz DOT files.

The deliverable's web UI draws the abstract workflow, the materialized plan
(chosen path in green, Figure 5/19) and MuSQLE's plan trees.  This example
produces the equivalent DOT sources under ``/tmp/ires-dot/`` — render them
with ``dot -Tsvg <file> -o <file>.svg`` if Graphviz is installed.

Run:  python examples/visualize_plans.py
"""

from pathlib import Path

from repro.core import IReS
from repro.musqle import JOIN_QUERIES, MuSQLE, build_default_deployment
from repro.scenarios import setup_text_analytics
from repro.viz import musqle_plan_to_dot, plan_to_dot, workflow_to_dot

OUT = Path("/tmp/ires-dot")


def main() -> None:
    OUT.mkdir(exist_ok=True)

    # -- the text-analytics workflow + its hybrid plan ----------------------
    ires = IReS()
    make_workflow = setup_text_analytics(ires)
    workflow = make_workflow(25_000)
    plan = ires.plan(workflow)

    (OUT / "workflow.dot").write_text(workflow_to_dot(workflow))
    (OUT / "plan.dot").write_text(plan_to_dot(plan))
    print(f"workflow: {workflow}")
    print(f"plan:     {plan}")

    # -- a MuSQLE multi-engine SQL plan -----------------------------------
    deployment = build_default_deployment(scale_factor=1.0, seed=41)
    musqle = MuSQLE(deployment)
    sql_plan, _ = musqle.optimize(JOIN_QUERIES[6])
    (OUT / "sql_plan.dot").write_text(musqle_plan_to_dot(sql_plan))
    print("sql plan engines:",
          sorted({n.engine for n in sql_plan.walk()}))

    for name in ("workflow.dot", "plan.dot", "sql_plan.dot"):
        print(f"wrote {OUT / name}")


if __name__ == "__main__":
    main()
