#!/usr/bin/env python3
"""Adaptive (PANIC-style) operator profiling vs a fixed random sweep.

IReS models operators by profiling them over a (data, operator, resource)
parameter grid.  The paper's profiler builds on PANIC, whose idea is to
spend the profiling budget where the model is most uncertain.  This example
profiles Wordcount/MapReduce with a 20-run budget both ways and compares
the resulting model accuracy against the simulator's ground truth.

Run:  python examples/adaptive_profiling.py
"""

from repro.core import ProfileSpec
from repro.core.adaptive import AdaptiveProfiler
from repro.core.profiler import Profiler
from repro.engines import Resources, build_default_cloud

SPEC = ProfileSpec(
    "wordcount", "MapReduce",
    counts=[1e5, 3e5, 1e6, 3e6, 1e7], bytes_per_item=1e3,
    resources=[Resources(c, m) for c in (4, 8, 16, 32) for m in (8, 16, 32)],
)
BUDGET = 20


def main() -> None:
    grid_size = len(SPEC.grid())
    print(f"profiling grid: {grid_size} configurations, budget: {BUDGET} runs\n")

    # -- adaptive: GP-uncertainty-guided sampling ---------------------------
    cloud = build_default_cloud(seed=1)
    adaptive = AdaptiveProfiler(cloud, SPEC, seed=1)
    records = adaptive.run(budget=BUDGET)
    adaptive_error = adaptive.mean_relative_error(test_points=60, seed=9)
    sizes = sorted({f"{r.input_count:.0e}" for r in records})
    print(f"adaptive sampling: {len(records)} runs over input sizes {sizes}")
    print(f"  model mean relative error: {adaptive_error:.1%}")

    # -- baseline: uniform random sampling, same budget ---------------------
    cloud2 = build_default_cloud(seed=1)
    Profiler(cloud2).sample_random_setups(SPEC, n_runs=BUDGET, seed=1)
    baseline = AdaptiveProfiler(cloud2, SPEC, seed=1)
    baseline_error = baseline.mean_relative_error(test_points=60, seed=9)
    print(f"random sampling:   {BUDGET} runs")
    print(f"  model mean relative error: {baseline_error:.1%}")

    winner = "adaptive" if adaptive_error <= baseline_error else "random"
    print(f"\nbetter on this run: {winner} sampling.")
    print("(on smooth cost surfaces like wordcount the two are comparable; "
          "uncertainty-guided\n sampling pays off on surfaces with cliffs — "
          "memory spills, engine crossovers —\n where it concentrates runs "
          "around the discontinuities)")


if __name__ == "__main__":
    main()
