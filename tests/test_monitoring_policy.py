"""Tests for monitoring records/timelines and optimization policies."""

import pytest

from repro.core import OptimizationPolicy
from repro.engines import MetricRecord, MetricsCollector
from repro.engines.monitoring import TIMELINE_MAX_SAMPLES, synthesize_timeline


class TestPolicy:
    def test_default_minimizes_exec_time(self):
        policy = OptimizationPolicy()
        assert policy.metrics == ("execTime",)
        assert policy.scalarize({"execTime": 3.0, "cost": 99.0}) == 3.0

    def test_weighted_blend(self):
        policy = OptimizationPolicy({"execTime": 1.0, "cost": 0.5})
        assert policy.scalarize({"execTime": 2.0, "cost": 4.0}) == 4.0

    def test_missing_metric_raises(self):
        policy = OptimizationPolicy({"cost": 1.0})
        with pytest.raises(KeyError):
            policy.scalarize({"execTime": 1.0})

    def test_custom_function(self):
        policy = OptimizationPolicy(
            function=lambda m: max(m["execTime"], m["cost"]))
        assert policy.scalarize({"execTime": 2.0, "cost": 7.0}) == 7.0
        assert policy.metrics == ()

    def test_weights_and_function_mutually_exclusive(self):
        with pytest.raises(ValueError):
            OptimizationPolicy({"execTime": 1.0}, function=lambda m: 0.0)

    def test_classmethod_constructors(self):
        assert OptimizationPolicy.min_exec_time().weights == {"execTime": 1.0}
        assert OptimizationPolicy.min_cost().weights == {"cost": 1.0}


class TestTimeline:
    def test_sample_count_scales_with_duration(self):
        short = synthesize_timeline(10.0, 4, 8.0)
        long = synthesize_timeline(500.0, 4, 8.0)
        assert len(short["cpu"]) < len(long["cpu"])

    def test_sample_count_capped(self):
        huge = synthesize_timeline(1e9, 4, 8.0)
        assert len(huge["cpu"]) == TIMELINE_MAX_SAMPLES

    def test_metrics_in_plausible_ranges(self):
        timeline = synthesize_timeline(120.0, 8, 16.0, seed=1)
        assert set(timeline) == {"cpu", "ram", "net_mbps", "iops"}
        assert all(0 <= v <= 1 for v in timeline["cpu"])
        assert all(0 <= v <= 16.0 for v in timeline["ram"])
        assert all(v >= 0 for v in timeline["net_mbps"])


class TestMetricRecord:
    def test_features_include_params(self):
        record = MetricRecord(
            "op", "alg", "E", 12.0, 0.0,
            input_size=1e6, input_count=1e3, cores=4, memory_gb=8.0,
            params={"iterations": 10, "label": "not-numeric"},
        )
        features = record.features()
        assert features["param_iterations"] == 10.0
        assert "param_label" not in features
        assert features["input_size"] == 1e6

    def test_collector_filters(self):
        collector = MetricsCollector()
        ok = MetricRecord("a", "alg", "E1", 1.0, 0.0)
        bad = MetricRecord("a", "alg", "E1", float("inf"), 0.0, success=False)
        other = MetricRecord("b", "other", "E2", 2.0, 0.0)
        for r in (ok, bad, other):
            collector.record(r)
        assert len(collector) == 3
        assert collector.for_operator("alg", "E1") == [ok]
        assert collector.for_operator("alg", "E1", successes_only=False) == [ok, bad]
        assert collector.failures() == [bad]

    def test_training_matrix_empty_when_no_records(self):
        collector = MetricsCollector()
        X, y, names = collector.training_matrix("alg", "E")
        assert X.size == 0 and y.size == 0 and names == []

    def test_training_matrix_explicit_features(self):
        collector = MetricsCollector()
        collector.record(MetricRecord("a", "alg", "E", 5.0, 0.0,
                                      input_count=7, cores=2))
        X, y, names = collector.training_matrix(
            "alg", "E", feature_names=["input_count", "missing"])
        assert names == ["input_count", "missing"]
        assert X.tolist() == [[7.0, 0.0]]
        assert y.tolist() == [5.0]


class TestCollectorPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.core import ProfileSpec, Profiler
        from repro.engines import build_default_cloud

        cloud = build_default_cloud(seed=17)
        Profiler(cloud).profile(ProfileSpec("TF_IDF", "Spark",
                                            counts=[1e3, 1e4, 1e5]))
        path = tmp_path / "runs.jsonl"
        assert cloud.collector.save(path) == 3

        restored = MetricsCollector()
        assert restored.load(path) == 3
        a = cloud.collector.training_matrix("TF_IDF", "Spark")
        b = restored.training_matrix("TF_IDF", "Spark")
        assert a[0].tolist() == b[0].tolist()
        assert a[1].tolist() == b[1].tolist()

    def test_failures_survive_roundtrip(self, tmp_path):
        collector = MetricsCollector()
        collector.record(MetricRecord("x", "a", "E", float("inf"), 0.0,
                                      success=False, error="OOM"))
        path = tmp_path / "fail.jsonl"
        collector.save(path)
        restored = MetricsCollector()
        restored.load(path)
        assert restored.failures()[0].exec_time == float("inf")
        assert restored.failures()[0].error == "OOM"

    def test_load_ignores_unknown_keys(self, tmp_path):
        """Files written by newer code (extra fields) still load cleanly."""
        import json

        path = tmp_path / "future.jsonl"
        payload = {
            "operator": "x", "algorithm": "a", "engine": "E",
            "exec_time": 1.5, "started_at": 0.0,
            "attempt": 3, "breaker_state": "open", "some_new_field": [1, 2],
        }
        path.write_text(json.dumps(payload) + "\n")
        restored = MetricsCollector()
        assert restored.load(path) == 1
        record = restored.all()[0]
        assert record.exec_time == 1.5
        assert not hasattr(record, "some_new_field")

    def test_resilience_events_queryable(self):
        from repro.engines.monitoring import resilience_event

        collector = MetricsCollector()
        collector.record(resilience_event("retry", "Spark", 1.0, success=False))
        collector.record(resilience_event("breaker_open", "Hive", 2.0,
                                          success=False))
        assert len(collector.resilience_events()) == 2
        assert len(collector.resilience_events("retry")) == 1
        # resilience events never leak into model-training queries
        assert collector.for_operator("retry") == []


class TestTornTailTolerance:
    """load() must skip a torn final line, but still raise on corruption."""

    def _save_three(self, tmp_path):
        collector = MetricsCollector()
        for i in range(3):
            collector.record(MetricRecord(f"op{i}", "alg", "E", 1.0 + i, 0.0))
        path = tmp_path / "runs.jsonl"
        assert collector.save(path) == 3
        return path

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = self._save_three(tmp_path)
        text = path.read_text()
        # tear the last record mid-write, like a crashed saver would
        path.write_text(text[: text.rindex('"exec_time"') + 5])
        restored = MetricsCollector()
        assert restored.load(path) == 2
        assert [r.operator for r in restored.all()] == ["op0", "op1"]

    def test_garbage_appended_line_is_skipped(self, tmp_path):
        path = self._save_three(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json at all")
        restored = MetricsCollector()
        assert restored.load(path) == 3

    def test_torn_tail_followed_by_blank_lines_is_skipped(self, tmp_path):
        path = self._save_three(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"operator": "op3"\n\n\n')
        restored = MetricsCollector()
        assert restored.load(path) == 3

    def test_corruption_before_the_tail_still_raises(self, tmp_path):
        import pytest

        path = self._save_three(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:20]  # mid-file damage is not a torn tail
        path.write_text("\n".join(lines) + "\n")
        restored = MetricsCollector()
        with pytest.raises(ValueError, match="line 2"):
            restored.load(path)

    def test_intact_file_loads_fully(self, tmp_path):
        path = self._save_three(tmp_path)
        restored = MetricsCollector()
        assert restored.load(path) == 3


class TestNonFiniteRoundtrip:
    """save()/load() must preserve every non-finite exec_time, not just +inf."""

    def test_nan_and_minus_inf_roundtrip(self, tmp_path):
        import math

        collector = MetricsCollector()
        collector.record(MetricRecord("a", "alg", "E", float("nan"), 0.0,
                                      success=False, error="corrupt"))
        collector.record(MetricRecord("b", "alg", "E", float("-inf"), 1.0,
                                      success=False, error="negative"))
        collector.record(MetricRecord("c", "alg", "E", float("inf"), 2.0,
                                      success=False, error="OOM"))
        path = tmp_path / "nonfinite.jsonl"
        assert collector.save(path) == 3

        restored = MetricsCollector()
        assert restored.load(path) == 3
        times = [r.exec_time for r in restored.all()]
        assert math.isnan(times[0])
        assert times[1] == float("-inf")
        assert times[2] == float("inf")

    def test_saved_file_is_strict_json(self, tmp_path):
        import json

        collector = MetricsCollector()
        collector.record(MetricRecord("a", "alg", "E", float("nan"), 0.0))
        path = tmp_path / "strict.jsonl"
        collector.save(path)
        # strict parsers (parse_constant raising) must accept every line
        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=lambda c: (_ for _ in ()).throw(
                ValueError(c)))


class TestTimelineSeed:
    def test_deterministic_and_distinct(self):
        from repro.engines.monitoring import timeline_seed

        a = timeline_seed("op", "Spark", 10.0)
        assert a == timeline_seed("op", "Spark", 10.0)
        assert a != timeline_seed("op", "Spark", 20.0)
        assert a != timeline_seed("op", "Hive", 10.0)
        assert a != timeline_seed("other", "Spark", 10.0)

    def test_engine_reruns_get_distinct_timelines(self):
        """The same operator re-executed later must not reuse its noise."""
        from repro.engines import build_default_cloud

        cloud = build_default_cloud(seed=3)
        engine = cloud.engines["Spark"]
        from repro.engines.profiles import Workload

        workload = Workload(size_gb=2.0, count=1e5)
        r1 = engine.execute("TF_IDF", workload).record
        r2 = engine.execute("TF_IDF", workload).record
        assert r1.timeline["cpu"] != r2.timeline["cpu"]
        # regenerating from the recorded identity reproduces the timeline
        from repro.engines.monitoring import synthesize_timeline, timeline_seed

        again = synthesize_timeline(
            r1.exec_time, r1.cores, r1.memory_gb,
            seed=timeline_seed(r1.operator, r1.engine, r1.started_at))
        assert again["cpu"] == r1.timeline["cpu"]
