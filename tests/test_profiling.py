"""Tests for the span-attributed sampling profiler (DESIGN.md §14).

Covers the sampler and its cross-thread attribution registry, the export
formats (folded, speedscope, flamegraph HTML), the service integration
(always-on profiler, per-run profile ring, REST surfaces), the ≥95%
run-attribution gate under an 8-worker burst, checker cleanliness of the
sampler's shared ring, and the timeline perf-offset regression.
"""

import asyncio
import json
import threading
import time
import types

import pytest

from repro.api.rest import IResServer
from repro.api.service import IResService
from repro.obs.context import bind_run_id
from repro.obs.profiling import (
    ATTRIBUTION,
    AllocationTracker,
    Profile,
    Sample,
    SamplingProfiler,
    diff_speedscope,
    flamegraph_html,
    folded_from_speedscope,
    hot_functions_from_speedscope,
    self_times_from_speedscope,
    validate_speedscope,
)
from repro.obs.tracing import Tracer, summarize_spans


def _spin(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        sum(i * i for i in range(100))


# -- sampler core ------------------------------------------------------------

def test_sampler_collects_and_attributes_run_and_span():
    tracer = Tracer()
    profiler = SamplingProfiler(hz=250).start()
    try:
        with bind_run_id("runA"), tracer.span("hot-loop",
                                              category="executor"):
            _spin(0.3)
    finally:
        profile = profiler.stop()
    assert len(profile.samples) > 10
    mine = [s for s in profile.samples if s.run_id == "runA"]
    assert mine, "no samples attributed to the bound run"
    assert any(s.span == "hot-loop" and s.category == "executor"
               for s in mine)
    runs = profile.run_breakdown()
    assert runs["runA"]["selfSecondsByCategory"].get("executor", 0) > 0
    assert runs["runA"]["selfSecondsBySpan"].get("hot-loop", 0) > 0


def test_sampler_attribution_is_per_thread():
    profiler = SamplingProfiler(hz=250).start()

    def work(run_id):
        with bind_run_id(run_id):
            _spin(0.25)

    try:
        threads = [threading.Thread(target=work, args=(f"r{i}",))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        profile = profiler.stop()
    by_run = profile.run_breakdown()
    for i in range(3):
        assert by_run.get(f"r{i}", {}).get("samples", 0) > 0


def test_spans_only_published_while_a_profiler_is_active():
    tracer = Tracer()
    assert not ATTRIBUTION.active
    with tracer.span("quiet"):
        _, spans = ATTRIBUTION.snapshot()
        assert threading.get_ident() not in spans
    profiler = SamplingProfiler(hz=50).start()
    try:
        assert ATTRIBUTION.active
        with tracer.span("loud", category="planner"):
            _, spans = ATTRIBUTION.snapshot()
            assert spans.get(threading.get_ident()) == ("loud", "planner")
    finally:
        profiler.stop()
    assert not ATTRIBUTION.active
    _, spans = ATTRIBUTION.snapshot()
    assert threading.get_ident() not in spans


def test_sampler_skips_idle_threads_by_default():
    idle_started = threading.Event()
    release = threading.Event()

    def idle():
        idle_started.set()
        release.wait()

    thread = threading.Thread(target=idle, name="idle-thread")
    thread.start()
    idle_started.wait()
    profiler = SamplingProfiler(hz=200).start()
    try:
        _spin(0.15)
    finally:
        profile = profiler.stop()
        release.set()
        thread.join()
    assert profile.samples, "busy main thread must be sampled"
    assert not any(s.thread_name == "idle-thread" for s in profile.samples)


def test_cpu_mode_collects_fewer_samples_while_process_sleeps():
    profiler = SamplingProfiler(hz=200, mode="cpu").start()
    try:
        time.sleep(0.25)  # process mostly idle: cpu ticks are skipped
    finally:
        profile = profiler.stop()
    assert len(profile.samples) <= 5


def test_ring_eviction_counts_dropped_samples():
    profiler = SamplingProfiler(hz=500, max_samples=10).start()
    try:
        _spin(0.3)
    finally:
        profile = profiler.stop()
    assert len(profile.samples) <= 10
    assert profile.dropped.get("ring_full", 0) > 0
    status = profiler.status()
    assert status["samples"] > 10  # collected total keeps counting


def test_take_run_snapshots_and_releases_the_bucket():
    profiler = SamplingProfiler(hz=250).start()
    try:
        with bind_run_id("bank-me"):
            _spin(0.25)
    finally:
        profiler.stop()
    banked = profiler.take_run("bank-me")
    assert banked.samples
    assert all(s.run_id == "bank-me" for s in banked.samples)
    assert not profiler.take_run("bank-me").samples  # bucket released


def test_sampler_never_starts_with_bad_config():
    with pytest.raises(ValueError):
        SamplingProfiler(hz=0)
    with pytest.raises(ValueError):
        SamplingProfiler(mode="gpu")


# -- export formats ----------------------------------------------------------

def _toy_profile() -> Profile:
    frames_a = (("main", "app/main.py", 1), ("work", "app/work.py", 10))
    frames_b = (("main", "app/main.py", 1), ("idle", "app/other.py", 5))
    samples = [
        Sample(1.0, "t", "r1", "s", "executor", frames_a, 0.01),
        Sample(1.0, "t", "r1", "s", "executor", frames_a, 0.01),
        Sample(1.0, "t", "r2", None, None, frames_b, 0.01),
    ]
    return Profile(samples, mode="wall", hz=100.0, started_at=0.0,
                   duration=1.0, overhead=0.001)


def test_speedscope_document_is_valid_and_round_trips():
    profile = _toy_profile()
    doc = profile.speedscope(name="toy")
    assert validate_speedscope(doc) == []
    assert doc["profiles"][0]["unit"] == "seconds"
    assert len(doc["profiles"][0]["samples"]) == 3
    # weights sum to endValue
    assert abs(sum(doc["profiles"][0]["weights"])
               - doc["profiles"][0]["endValue"]) < 1e-9
    # folded recovered from the doc matches the in-memory folded view
    assert folded_from_speedscope(doc) == profile.folded()
    # the ires extension carries per-run attribution
    self_times = self_times_from_speedscope(doc)
    assert self_times["r1"]["executor"] == pytest.approx(0.02)


def test_validate_speedscope_flags_malformed_documents():
    assert validate_speedscope([]) == ["document is not a JSON object"]
    assert any("profiles" in p for p in validate_speedscope(
        {"$schema": "x", "shared": {"frames": []}}))
    bad_index = {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": [{"name": "f"}]},
        "profiles": [{"type": "sampled", "name": "p", "unit": "seconds",
                      "startValue": 0, "endValue": 1,
                      "samples": [[7]], "weights": [1.0]}],
    }
    assert any("out of range" in p for p in validate_speedscope(bad_index))
    mismatched = dict(bad_index)
    mismatched["profiles"] = [{**bad_index["profiles"][0],
                               "samples": [[0]], "weights": [1.0, 2.0]}]
    assert any("weights" in p for p in validate_speedscope(mismatched))


def test_empty_profile_still_exports_a_loadable_document():
    profile = Profile([], mode="wall", hz=10.0, started_at=0.0,
                      duration=0.0, overhead=0.0)
    doc = profile.speedscope()
    assert validate_speedscope(doc) == []
    assert profile.folded() == ""


def test_flamegraph_html_is_self_contained():
    doc = _toy_profile().speedscope()
    html = flamegraph_html(doc, title="x</script><b>")
    assert html.startswith("<!DOCTYPE html>")
    assert "flame-data" in html
    # the data island escapes closing tags so it cannot end the script
    island = html.split('id="flame-data">')[1].split("</script>")[0]
    assert "</" not in island.replace("<\\/", "")
    json.loads(island.replace("<\\/", "</"))


def test_hot_functions_and_diff():
    doc = _toy_profile().speedscope()
    hot = hot_functions_from_speedscope(doc, limit=5)
    assert hot[0]["function"].startswith("work ")
    assert hot[0]["selfSeconds"] == pytest.approx(0.02)
    # main is on every stack: total 0.03, self 0
    totals = {r["function"]: r["totalSeconds"] for r in hot}
    assert all(not f.startswith("main ") for f in totals)
    delta = diff_speedscope(doc, doc)
    assert all(r["deltaSeconds"] == 0 for r in delta)


def test_profile_save_and_filter_run(tmp_path):
    profile = _toy_profile()
    only_r1 = profile.filter_run("r1")
    assert {s.run_id for s in only_r1.samples} == {"r1"}
    path = tmp_path / "p.json"
    profile.save(str(path))
    doc = json.loads(path.read_text())
    assert validate_speedscope(doc) == []
    assert doc["ires"]["sampleCount"] == 3


# -- allocation tracking -----------------------------------------------------

def test_allocation_tracker_stamps_spans_and_buckets_categories():
    tracer = Tracer()
    tracker = AllocationTracker()
    tracker.start()
    tracer.add_hook(tracker)
    try:
        with tracer.span("alloc-heavy", category="modeler") as span:
            blob = [bytes(1000) for _ in range(200)]
        assert "allocNetBytes" in span.attributes
        del blob
        summary = tracker.summary()
        assert "modeler" in summary["netBytesByCategory"]
        assert summary["topSites"]
    finally:
        tracer.remove_hook(tracker)
        tracker.stop()


# -- service + REST integration ----------------------------------------------

class _BusyPlatform:
    """Stub platform whose execute busy-spins in a run-named marker frame.

    The marker function ``marker_<run_id>`` gives every sample of the run
    a ground-truth label independent of the attribution registry, so the
    attribution-accuracy gate below measures real correctness.
    """

    def __init__(self, seconds: float = 0.2):
        self.workflows = {"busy": object()}
        self.executor = types.SimpleNamespace(journal_dir=None)
        self.seconds = seconds

    def execute(self, workflow, control=None, run_id=None, resume_from=None):
        ns: dict = {}
        exec(  # noqa: S102 — test-only ground-truth frame naming
            f"def marker_{run_id}(spin, seconds):\n"
            f"    spin(seconds)\n", ns)
        ns[f"marker_{run_id}"](_spin, self.seconds)
        return types.SimpleNamespace(
            sim_time=1.0, replans=0, retries=0, executions=[],
            recovered_steps=0, cached_plans=0)


def _run_burst(workers: int, runs: int, seconds: float = 0.2):
    profiler = SamplingProfiler(hz=250)
    service = IResService(_BusyPlatform(seconds), workers=workers,
                          queue_limit=runs + workers, profiler=profiler)

    async def main():
        await service.start()
        recs = [service.submit("busy", tenant=f"t{i % 3}")
                for i in range(runs)]
        for rec in recs:
            await service.wait(rec.run_id, timeout=120)
        full = profiler.snapshot()
        await service.shutdown()
        return recs, full

    recs, full = asyncio.run(main())
    return service, recs, full


def test_run_attribution_accuracy_under_8_worker_burst():
    """≥95% of marker-frame samples carry the marker's own run id."""
    service, recs, full = _run_burst(workers=8, runs=16)
    assert all(rec.state == "succeeded" for rec in recs)
    correct = total = 0
    for sample in full.samples:
        marked = [f[0] for f in sample.frames
                  if f[0].startswith("marker_")]
        if not marked:
            continue
        total += 1
        if sample.run_id == marked[-1].removeprefix("marker_"):
            correct += 1
    assert total >= 100, f"burst produced too few marker samples ({total})"
    accuracy = correct / total
    assert accuracy >= 0.95, f"attribution accuracy {accuracy:.3f} < 0.95"


def test_service_banks_per_run_profiles_and_reports_status():
    service, recs, _full = _run_burst(workers=4, runs=6, seconds=0.15)
    stats = service.stats()
    assert stats["profiler"] is not None
    assert stats["profiler"]["samples"] > 0
    banked = [service.run_profile(rec.run_id) for rec in recs]
    assert all(p is not None for p in banked)
    assert any(p.samples for p in banked)
    for rec, profile in zip(recs, banked):
        assert all(s.run_id == rec.run_id for s in profile.samples)


def test_profile_ring_is_bounded():
    profiler = SamplingProfiler(hz=100)
    service = IResService(_BusyPlatform(0.01), workers=2, queue_limit=32,
                          profiler=profiler, profile_history=3)

    async def main():
        await service.start()
        recs = [service.submit("busy") for _ in range(8)]
        for rec in recs:
            await service.wait(rec.run_id, timeout=60)
        await service.shutdown()
        return recs

    recs = asyncio.run(main())
    kept = [rec for rec in recs
            if service.run_profile(rec.run_id) is not None]
    assert len(kept) == 3
    assert {r.run_id for r in kept} == {r.run_id for r in recs[-3:]}


def test_rest_profile_endpoints():
    service, recs, _full = _run_burst(workers=2, runs=3, seconds=0.15)
    server = IResServer(service=service)
    live = server.handle("GET", "/profile")
    assert live.status == 200
    assert validate_speedscope(live.body) == []
    flame = server.handle("GET", "/profile/flamegraph")
    assert flame.status == 200
    assert flame.text.startswith("<!DOCTYPE html>")
    per_run = server.handle("GET", f"/runs/{recs[0].run_id}/profile")
    assert per_run.status == 200
    assert validate_speedscope(per_run.body) == []
    assert recs[0].run_id in per_run.body["ires"]["runs"] or (
        per_run.body["ires"]["sampleCount"] == 0)
    missing = server.handle("GET", "/runs/nope/profile")
    assert missing.status == 404


def test_rest_profile_404_when_profiler_disabled():
    service = IResService(_BusyPlatform(), profiler=False)
    server = IResServer(service=service)
    assert server.handle("GET", "/profile").status == 404
    assert service.stats()["profiler"] is None


def test_dashboard_renders_hot_functions_panel():
    from repro.obs.dashboard import render_dashboard

    doc = _toy_profile().speedscope()
    html = render_dashboard(service={}, slo={}, tenants={}, runs={},
                            profile=doc)
    assert "hot-body" in html and "profiler-line" in html
    assert "dashboard-data" in html


def test_metrics_registry_exposes_profiler_series():
    from repro.obs.metrics import get_registry, parse_exposition

    profiler = SamplingProfiler(hz=250).start()
    try:
        _spin(0.15)
    finally:
        profiler.stop()
    parsed = parse_exposition(get_registry().render())
    names = {name for name, _labels, _value in parsed["samples"]}
    assert "ires_profiler_samples_total" in names
    assert "ires_profiler_overhead_seconds_total" in names
    samples_total = sum(
        value for name, labels, value in parsed["samples"]
        if name == "ires_profiler_samples_total")
    assert samples_total > 0


# -- checker cleanliness -----------------------------------------------------

def test_sampler_shared_ring_is_clean_under_dynamic_checker(monkeypatch):
    """The sampler's ring survives the instrumented-lock checker.

    A profiler constructed while the checker is enabled gets instrumented
    locks and registered shared state; a multi-threaded burst with run
    binding and span publication must add zero violations.
    """
    from repro.analysis.runtime_check import CHECKER

    before = len(CHECKER.violations())
    monkeypatch.setattr(CHECKER, "enabled", True)
    tracer = Tracer()
    profiler = SamplingProfiler(hz=200, track_allocations=True)
    if profiler.allocation_tracker is not None:
        tracer.add_hook(profiler.allocation_tracker)
    profiler.start()

    def work(run_id):
        with bind_run_id(run_id), tracer.span("w", category="executor"):
            _spin(0.15)

    try:
        threads = [threading.Thread(target=work, args=(f"c{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        profile = profiler.stop()
        tracer._hooks.clear()
    assert profile.samples
    assert len(CHECKER.violations()) == before


# -- timeline perf-offset satellite ------------------------------------------

def test_build_timeline_computes_perf_offset_exactly_once(monkeypatch):
    import repro.obs.timeline as timeline_mod
    from repro.obs.timeline import build_timeline

    calls = {"n": 0}
    real = timeline_mod.perf_epoch_offset

    def counting():
        calls["n"] += 1
        return real()

    monkeypatch.setattr(timeline_mod, "perf_epoch_offset", counting)
    tracer = Tracer()
    with bind_run_id("tl-run"):
        for _ in range(5):
            with tracer.span("step", category="executor"):
                pass
    events = build_timeline("tl-run", spans=tracer.spans())
    assert len(events) == 5
    assert calls["n"] == 1


def test_timeline_events_share_one_epoch_and_order():
    """Spans merged in one build stay ordered by their perf timestamps."""
    from repro.obs.timeline import build_timeline

    tracer = Tracer()
    with bind_run_id("order-run"):
        for i in range(20):
            with tracer.span(f"s{i}", category="executor"):
                pass
    events = build_timeline("order-run", spans=tracer.spans())
    kinds = [e.kind for e in events]
    assert kinds == [f"span:s{i}" for i in range(20)]
    walls = [e.wall for e in events]
    assert walls == sorted(walls)


def test_timeline_span_self_annotation():
    from repro.obs.timeline import build_timeline

    tracer = Tracer()
    with bind_run_id("ann-run"):
        with tracer.span("hot", category="executor"):
            pass
        with tracer.span("cold", category="executor"):
            pass
    events = build_timeline("ann-run", spans=tracer.spans(),
                            span_self={"hot": 0.5})
    details = {e.kind: e.detail for e in events}
    assert details["span:hot"]["profileSelfSeconds"] == 0.5
    assert "profileSelfSeconds" not in details["span:cold"]


def test_perf_epoch_offset_is_stable():
    from repro.obs.timeline import perf_epoch_offset

    offsets = [perf_epoch_offset() for _ in range(5)]
    assert max(offsets) - min(offsets) < 0.05


# -- trace summary self-time fold-in -----------------------------------------

def test_summarize_spans_folds_profiler_self_time():
    tracer = Tracer()
    with bind_run_id("sum-run"):
        with tracer.span("work", category="executor"):
            pass
    spans = [s.to_dict() for s in tracer.spans()]
    summary = summarize_spans(
        spans, self_times={"sum-run": {"executor": 1.25}})
    run = next(r for r in summary["runs"] if r["run_id"] == "sum-run")
    assert run["phases"]["executor"]["self_seconds"] == 1.25
    # without self_times the key stays absent
    bare = summarize_spans(spans)
    run = next(r for r in bare["runs"] if r["run_id"] == "sum-run")
    assert "self_seconds" not in run["phases"]["executor"]
