"""Tests for the Pareto-frontier planner (repro.core.pareto)."""

import pytest

from repro.core import (
    AbstractOperator,
    AbstractWorkflow,
    Dataset,
    IReS,
    MaterializedOperator,
    OperatorLibrary,
    OptimizationPolicy,
    Planner,
)
from repro.core.estimators import OracleEstimator
from repro.core.pareto import ParetoPlanner, dominates, prune_frontier, _ParetoEntry
from repro.core.planner import PlanningError
from repro.scenarios import setup_graph_analytics, setup_text_analytics


def entry(metrics):
    return _ParetoEntry(None, tuple(metrics))


class TestFrontierPrimitives:
    def test_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 3), (2, 2))
        assert not dominates((1, 1), (1, 1))

    def test_prune_removes_dominated(self):
        entries = [entry(m) for m in [(1, 5), (2, 4), (3, 3), (2, 6), (4, 4)]]
        kept = prune_frontier(entries, max_size=10)
        assert sorted(e.metrics for e in kept) == [(1, 5), (2, 4), (3, 3)]

    def test_prune_thins_but_keeps_extremes(self):
        entries = [entry((i, 10 - i)) for i in range(10)]
        kept = prune_frontier(entries, max_size=4)
        assert len(kept) == 4
        metrics = [e.metrics for e in kept]
        assert (0, 10) in metrics and (9, 1) in metrics


def two_impl_workflow():
    """One operator, two engines: fast-expensive vs slow-cheap."""
    lib = OperatorLibrary()
    for name, engine, t, c in (("fast", "A", 1.0, 100.0),
                               ("slow", "B", 50.0, 1.0)):
        lib.add(MaterializedOperator(name, {
            "Constraints.OpSpecification.Algorithm.name": "job",
            "Constraints.Engine": engine,
            "Constraints.Input.number": 1, "Constraints.Output.number": 1,
            "Constraints.Input0.type": "x", "Constraints.Output0.type": "x",
            "Optimization.execTime": t, "Optimization.cost": c,
        }))
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("in", {"Constraints.type": "x"}, materialized=True))
    wf.add_dataset(Dataset("out"))
    wf.add_operator(AbstractOperator("job", {
        "Constraints.OpSpecification.Algorithm.name": "job"}))
    wf.connect("in", "job")
    wf.connect("job", "out")
    wf.set_target("out")
    return lib, wf


class TestParetoPlanner:
    def test_needs_two_metrics(self):
        lib, _ = two_impl_workflow()
        with pytest.raises(ValueError):
            ParetoPlanner(lib, metrics=("execTime",))

    def test_frontier_holds_both_tradeoffs(self):
        lib, wf = two_impl_workflow()
        frontier = ParetoPlanner(lib).plan_frontier(wf)
        assert len(frontier) == 2
        by_time = sorted(frontier, key=lambda p: p.metrics["execTime"])
        assert by_time[0].steps[0].operator.name == "fast"
        assert by_time[1].steps[0].operator.name == "slow"

    def test_frontier_mutually_nondominated(self):
        lib, wf = two_impl_workflow()
        frontier = ParetoPlanner(lib).plan_frontier(wf)
        vectors = [tuple(p.metrics.values()) for p in frontier]
        for a in vectors:
            for b in vectors:
                assert a == b or not dominates(a, b)

    def test_infeasible_raises(self):
        lib, wf = two_impl_workflow()
        with pytest.raises(PlanningError):
            ParetoPlanner(lib).plan_frontier(wf, available_engines={"Z"})

    def test_frontier_contains_scalar_optimum_graph(self):
        """The single-metric optimum must sit on the frontier (both metrics)."""
        ires = IReS()
        make = setup_graph_analytics(ires)
        wf = make(2e7)
        pareto = ParetoPlanner(
            ires.library, OracleEstimator(ires.cloud))
        frontier = pareto.plan_frontier(wf)
        time_opt = Planner(
            ires.library, OracleEstimator(ires.cloud),
            OptimizationPolicy.min_exec_time()).plan(make(2e7))
        cost_opt = Planner(
            ires.library, OracleEstimator(ires.cloud),
            OptimizationPolicy.min_cost()).plan(make(2e7))
        times = [p.metrics["execTime"] for p in frontier]
        costs = [p.metrics["cost"] for p in frontier]
        assert min(times) == pytest.approx(time_opt.cost, rel=1e-9)
        assert min(costs) == pytest.approx(cost_opt.cost, rel=1e-9)

    def test_frontier_on_hybrid_text_workflow(self):
        """The two-operator workflow yields a genuine multi-point frontier."""
        ires = IReS()
        make = setup_text_analytics(ires)
        frontier = ParetoPlanner(
            ires.library, OracleEstimator(ires.cloud)).plan_frontier(make(2.5e4))
        assert len(frontier) >= 2
        # frontier sorted by time has strictly decreasing cost
        frontier.sort(key=lambda p: p.metrics["execTime"])
        costs = [p.metrics["cost"] for p in frontier]
        assert all(c1 > c2 for c1, c2 in zip(costs, costs[1:]))

    def test_max_frontier_bounds_size(self):
        ires = IReS()
        make = setup_text_analytics(ires)
        frontier = ParetoPlanner(
            ires.library, OracleEstimator(ires.cloud),
            max_frontier=2).plan_frontier(make(2.5e4))
        assert len(frontier) <= 2
