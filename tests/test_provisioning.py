"""Tests for NSGA-II resource provisioning (repro.core.provisioning)."""

import pytest

from repro.core import ResourceProvisioner
from repro.engines import Resources, Workload, build_default_cloud


def spark_tfidf_time_fn(cloud, docs):
    spark = cloud.engine("Spark")
    workload = Workload.of_count(docs, 1e3)

    def time_fn(cores, memory_gb):
        return spark.true_seconds(
            "TF_IDF", workload,
            Resources(cores=max(int(cores), 1), memory_gb=max(memory_gb, 0.5)),
        )

    return time_fn


def test_bounds_validated():
    with pytest.raises(ValueError):
        ResourceProvisioner(max_cores=1, min_cores=4)


def test_provision_respects_bounds():
    cloud = build_default_cloud()
    prov = ResourceProvisioner(max_cores=32, max_memory_gb=54.0,
                               generations=15, population_size=16)
    result = prov.provision(spark_tfidf_time_fn(cloud, 1e5))
    assert 1 <= result.resources.cores <= 32
    assert 0.5 <= result.resources.memory_gb <= 54.0


def test_provision_time_close_to_max_resources():
    """Fig 17: IReS achieves times as low as the max-resources strategy."""
    cloud = build_default_cloud()
    time_fn = spark_tfidf_time_fn(cloud, 1e5)
    prov = ResourceProvisioner(max_cores=32, max_memory_gb=54.0,
                               generations=30, population_size=24)
    result = prov.provision(time_fn)
    t_max = time_fn(32, 54.0)
    assert result.est_time <= t_max * 1.15


def test_provision_cost_below_max_resources():
    """Fig 17: IReS execution cost lies below the max-resources strategy."""
    cloud = build_default_cloud()
    time_fn = spark_tfidf_time_fn(cloud, 1e4)
    prov = ResourceProvisioner(max_cores=32, max_memory_gb=54.0,
                               generations=30, population_size=24)
    result = prov.provision(time_fn)
    t_max = time_fn(32, 54.0)
    cost_max = 32 * 54.0 * t_max
    assert result.est_cost < cost_max


def test_provision_scales_resources_with_input():
    """Larger inputs should get at least as much provisioned capacity."""
    cloud = build_default_cloud()
    prov_small = ResourceProvisioner(generations=30, population_size=24, seed=1)
    prov_large = ResourceProvisioner(generations=30, population_size=24, seed=1)
    small = prov_small.provision(spark_tfidf_time_fn(cloud, 1e3))
    large = prov_large.provision(spark_tfidf_time_fn(cloud, 1e6))
    def cap(r):
        return r.resources.cores * r.resources.memory_gb
    assert cap(large) > cap(small)


def test_front_is_sorted_and_nontrivial():
    cloud = build_default_cloud()
    prov = ResourceProvisioner(generations=20, population_size=16)
    result = prov.provision(spark_tfidf_time_fn(cloud, 1e5))
    times = [p[2] for p in result.front]
    assert times == sorted(times)
    assert len(result.front) >= 1
