"""Tests for service-level telemetry: accounting, SLOs, timelines, dashboard.

Covers the DESIGN §12 stack: per-tenant cost attribution
(:mod:`repro.obs.accounting`), burn-rate SLO alarms under a simulated
clock (:mod:`repro.obs.slo`), merged per-run timelines
(:mod:`repro.obs.timeline`), the self-contained dashboard, and the
end-to-end run_id/tenant propagation across the asyncio→thread boundary.
"""

import asyncio
import json
import types

import pytest

from repro.api.rest import IResServer
from repro.api.service import FAILED, SUCCEEDED, IResService
from repro.core import IReS
from repro.execution.journal import RUN_ADMITTED, journal_path, read_journal
from repro.obs.accounting import TenantAccounts, usage_from_report
from repro.obs.context import bind_tenant, current_tenant
from repro.obs.slo import (
    SLOSpec,
    SLOTracker,
    default_slos,
    load_slo_config,
)
from repro.obs.timeline import TimelineEvent, build_timeline, render_text
from repro.scenarios import setup_helloworld


def _factory(journal_dir=None):
    def build():
        ires = IReS(journal_dir=journal_dir)
        make = setup_helloworld(ires)
        workflow = make()
        ires.workflows[workflow.name] = workflow
        return ires
    return build


# -- tenant context ----------------------------------------------------------

def test_bind_tenant_scopes_and_restores():
    assert current_tenant() is None
    with bind_tenant("acme"):
        assert current_tenant() == "acme"
        with bind_tenant("beta"):
            assert current_tenant() == "beta"
        assert current_tenant() == "acme"
    assert current_tenant() is None


# -- accounting --------------------------------------------------------------

def _report(sim=10.0, retries=1, replans=2, executions=()):
    return types.SimpleNamespace(
        sim_time=sim, retries=retries, replans=replans,
        executions=list(executions))


def _execution(engine="Spark", sim_seconds=4.0, cores=8):
    return types.SimpleNamespace(
        engine=engine, sim_seconds=sim_seconds, cores=cores)


def test_usage_from_report_charges_core_seconds_per_engine():
    usage = usage_from_report(
        "r1", "acme", "wf", SUCCEEDED,
        report=_report(executions=[
            _execution("Spark", 4.0, 8),
            _execution("Spark", 1.0, 8),
            _execution("Hadoop", 2.0, 4),
            _execution("Hadoop", 3.0, 0),  # a move: no cores, no charge
        ]),
        queued_wait_seconds=0.5, journal_bytes=100)
    assert usage.engine_core_seconds == {"Spark": 40.0, "Hadoop": 8.0}
    assert usage.total_core_seconds == 48.0
    assert usage.engine_sim_seconds == {"Spark": 5.0, "Hadoop": 5.0}
    assert usage.steps == 4
    assert usage.retries == 1 and usage.replans == 2
    assert usage.queued_wait_seconds == 0.5
    assert usage.journal_bytes == 100


def test_usage_from_report_without_report_is_zeroed():
    usage = usage_from_report("r2", "acme", "wf", FAILED)
    assert usage.total_core_seconds == 0.0
    assert usage.steps == 0
    assert usage.state == FAILED


def test_tenant_accounts_aggregate_and_snapshot():
    accounts = TenantAccounts()
    for i in range(3):
        accounts.record(usage_from_report(
            f"r{i}", "acme", "wf", SUCCEEDED,
            report=_report(executions=[_execution()]),
            queued_wait_seconds=0.25))
    accounts.record(usage_from_report("r9", "beta", "wf", FAILED))
    snapshot = accounts.snapshot()
    by_name = {t["tenant"]: t for t in snapshot["tenants"]}
    assert by_name["acme"]["runs"] == 3
    assert by_name["acme"]["runsByState"] == {SUCCEEDED: 3}
    assert by_name["acme"]["totalCoreSeconds"] == pytest.approx(96.0)
    assert by_name["acme"]["queuedWaitSeconds"] == pytest.approx(0.75)
    assert by_name["beta"]["runsByState"] == {FAILED: 1}
    assert len(snapshot["recentRuns"]) == 4
    # everything must be JSON-able (it is a REST body)
    json.dumps(snapshot)


def test_tenant_accounts_history_limit_bounds_memory():
    accounts = TenantAccounts(history_limit=5)
    for i in range(20):
        accounts.record(usage_from_report(f"r{i}", "t", "wf", SUCCEEDED))
    assert len(accounts.recent(50)) == 5
    assert accounts.tenant("t").runs == 20  # aggregates keep counting


# -- SLO burn-rate math under a simulated clock ------------------------------

class _Clock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def _latency_spec(**overrides):
    spec = dict(name="lat", kind="latency", target=0.9,
                threshold_seconds=1.0, short_window_seconds=60,
                long_window_seconds=600, burn_rate_threshold=2.0,
                min_events=3)
    spec.update(overrides)
    return SLOSpec(**spec)


def test_slo_spec_validation():
    with pytest.raises(ValueError, match="target"):
        SLOSpec(name="x", kind="availability", target=1.5)
    with pytest.raises(ValueError, match="kind"):
        SLOSpec(name="x", kind="nonsense")
    with pytest.raises(ValueError, match="threshold_seconds"):
        SLOSpec(name="x", kind="latency", threshold_seconds=None)
    with pytest.raises(ValueError, match="window"):
        SLOSpec(name="x", kind="availability",
                short_window_seconds=600, long_window_seconds=60)


def test_slo_spec_round_trips_through_dict():
    spec = _latency_spec()
    assert SLOSpec.from_dict(spec.to_dict()) == spec


def test_burn_rate_is_bad_fraction_over_budget():
    clock = _Clock()
    tracker = SLOTracker([_latency_spec()], clock=clock)
    # 10 runs, 2 breach the 1s threshold: bad fraction .2, budget .1 → burn 2
    for i in range(10):
        tracker.record_run(True, latency_seconds=5.0 if i < 2 else 0.1)
    (status,) = tracker.evaluate()
    assert status.burn_rate_short == pytest.approx(2.0)
    assert status.burn_rate_long == pytest.approx(2.0)
    assert status.compliance == pytest.approx(0.8)


def test_alarm_needs_both_windows_burning():
    clock = _Clock()
    tracker = SLOTracker([_latency_spec()], clock=clock)
    # long window: lots of good history, so the long burn stays low
    for _ in range(100):
        tracker.record_run(True, latency_seconds=0.1)
    clock.now += 500  # past the short window, inside the long one
    for _ in range(5):
        tracker.record_run(True, latency_seconds=5.0)
    (status,) = tracker.evaluate()
    assert status.burn_rate_short > 2.0  # short window is all-bad
    assert status.burn_rate_long < 2.0   # diluted by history
    assert not status.alarming            # needs BOTH windows


def test_alarm_fires_once_and_clears_with_hysteresis():
    clock = _Clock()
    tracker = SLOTracker([_latency_spec()], clock=clock)
    for _ in range(10):
        tracker.record_run(True, latency_seconds=5.0)  # all breach
    (status,) = tracker.evaluate()
    assert status.alarming
    assert tracker.active_alarms() == ["lat"]
    n_alarms = len(tracker.alarms)
    tracker.evaluate()  # still burning: no duplicate alarm edge
    assert len(tracker.alarms) == n_alarms
    # recovery: the bad events age out of the short window
    clock.now += 120
    for _ in range(10):
        tracker.record_run(True, latency_seconds=0.1)
    (status,) = tracker.evaluate()
    assert not status.alarming
    assert tracker.active_alarms() == []


def test_min_events_noise_floor_suppresses_alarms():
    clock = _Clock()
    tracker = SLOTracker([_latency_spec(min_events=5)], clock=clock)
    for _ in range(3):  # burning, but too few events to trust
        tracker.record_run(True, latency_seconds=9.0)
    (status,) = tracker.evaluate()
    assert status.burn_rate_short > 2.0
    assert not status.alarming


def test_availability_and_queue_wait_kinds():
    clock = _Clock()
    tracker = SLOTracker([
        SLOSpec(name="avail", kind="availability", target=0.5, min_events=1),
        SLOSpec(name="qw", kind="queue_wait", target=0.5,
                threshold_seconds=2.0, min_events=1),
    ], clock=clock)
    tracker.record_run(False, latency_seconds=0.1, queue_wait_seconds=5.0)
    tracker.record_run(True, latency_seconds=0.1, queue_wait_seconds=0.1)
    by_name = {s.spec.name: s for s in tracker.evaluate()}
    assert by_name["avail"].compliance == pytest.approx(0.5)
    assert by_name["qw"].compliance == pytest.approx(0.5)


def test_status_payload_is_json_able():
    tracker = SLOTracker(default_slos())
    tracker.record_run(True, latency_seconds=0.2)
    json.dumps(tracker.status())


def test_load_slo_config(tmp_path):
    path = tmp_path / "slo.json"
    path.write_text(json.dumps({"slos": [
        {"name": "lat", "kind": "latency", "target": 0.95,
         "thresholdSeconds": 2.0},
    ]}))
    (spec,) = load_slo_config(path)
    assert spec.name == "lat" and spec.threshold_seconds == 2.0
    path.write_text(json.dumps({"slos": []}))
    with pytest.raises(ValueError, match="non-empty"):
        load_slo_config(path)
    path.write_text(json.dumps({"slos": [
        {"name": "a", "kind": "availability"},
        {"name": "a", "kind": "availability"},
    ]}))
    with pytest.raises(ValueError, match="duplicate"):
        load_slo_config(path)


# -- timeline merge ----------------------------------------------------------

class _FakeSpan:
    def __init__(self, name, run_id, start_wall, events=(), **attributes):
        self.name = name
        self.category = "executor"
        self.run_id = run_id
        self.start_wall = start_wall
        self.end_wall = start_wall + 1.0
        self.start_sim = 0.0
        self.end_sim = 1.0
        self.attributes = attributes
        self.events = list(events)
        self.status = "ok"
        self.error = ""

    @property
    def wall_seconds(self):
        return self.end_wall - self.start_wall

    @property
    def sim_seconds(self):
        return self.end_sim - self.start_sim


def test_timeline_interleaves_replans_and_retries_in_order():
    # journal records on the epoch clock; spans on perf_counter with a
    # known offset of +1000 (epoch = perf + 1000)
    journal = [
        {"seq": 1, "kind": "RUN_ADMITTED", "runId": "r1", "wallTime": 1010.0},
        {"seq": 2, "kind": "STEP_STARTED", "runId": "r1", "wallTime": 1020.0,
         "operator": "op_a"},
        {"seq": 3, "kind": "REPLAN", "runId": "r1", "wallTime": 1040.0,
         "reason": "engine down"},
        {"seq": 4, "kind": "RUN_FINISHED", "runId": "r1", "wallTime": 1060.0,
         "outcome": "success"},
    ]
    spans = [_FakeSpan(
        "step:op_a", "r1", start_wall=25.0,
        events=[{"name": "retry", "wall": 30.0, "sim": 0.5,
                 "attributes": {"attempt": 1}}],
        engine="Spark")]
    events = build_timeline("r1", journal_records=journal, spans=spans,
                            perf_offset=1000.0)
    kinds = [e.kind for e in events]
    # retry (perf 30 → epoch 1030) lands between STEP_STARTED and REPLAN
    assert kinds == ["RUN_ADMITTED", "STEP_STARTED", "span:step:op_a",
                     "retry", "REPLAN", "RUN_FINISHED"]
    retry = events[3]
    assert retry.source == "span-event"
    assert retry.wall == pytest.approx(1030.0)
    assert retry.detail["attempt"] == 1


def test_timeline_filters_other_runs_and_sorts_stably():
    journal = [
        {"seq": 2, "kind": "B", "runId": "r1", "wallTime": 5.0},
        {"seq": 1, "kind": "A", "runId": "r1", "wallTime": 5.0},
        {"seq": 3, "kind": "X", "runId": "other", "wallTime": 1.0},
    ]
    events = build_timeline("r1", journal_records=journal)
    assert [e.kind for e in events] == ["A", "B"]  # seq breaks the tie


def test_timeline_merges_logs_and_service_record():
    record = types.SimpleNamespace(
        submitted_at=10.0, started_at=11.0, finished_at=15.0,
        queued_wait_seconds=1.0, tenant="acme", workflow="wf",
        state=SUCCEEDED, error="")
    logs = [
        {"ts": 12.0, "event": "resilience_retry", "run_id": "r1",
         "logger": "resilience", "level": "warning", "engine": "Spark"},
        {"ts": 12.5, "event": "noise", "run_id": "other",
         "logger": "x", "level": "info"},
    ]
    events = build_timeline("r1", logs=logs, record=record)
    kinds = [e.kind for e in events]
    assert kinds == ["run_submitted", "run_started", "resilience_retry",
                     "run_finished"]
    assert events[1].detail["queuedWaitSeconds"] == pytest.approx(1.0)
    assert events[2].detail["engine"] == "Spark"
    assert events[3].detail["state"] == SUCCEEDED


def test_render_text_has_relative_stamps_and_sources():
    events = [
        TimelineEvent(kind="RUN_ADMITTED", source="journal", wall=100.0),
        TimelineEvent(kind="RUN_FINISHED", source="journal", wall=102.5,
                      detail={"outcome": "success"}),
    ]
    text = render_text("r1", events)
    assert "run r1: 2 events" in text
    assert "+0.000s" in text and "+2.500s" in text
    assert "outcome=success" in text
    assert render_text("r1", []) == "run r1: no telemetry found"


# -- dashboard ---------------------------------------------------------------

def test_dashboard_embeds_snapshot_and_escapes_script_end():
    from repro.obs.dashboard import render_dashboard

    html = render_dashboard(
        service={"queueDepth": 1, "workers": 2, "accepting": True},
        slo={"slos": [], "activeAlarms": []},
        tenants={"tenants": [{"tenant": "</script><b>x"}]},
        runs={"runs": []})
    assert html.startswith("<!DOCTYPE html>")
    assert "dashboard-data" in html
    # the data island must not terminate the script block early
    assert "</script><b>x" not in html
    assert "<\\/script>" in html
    island = html.split("id='dashboard-data'>", 1)[1].split("</script>", 1)[0]
    snapshot = json.loads(island.replace("<\\/", "</"))
    assert snapshot["service"]["queueDepth"] == 1


# -- end-to-end propagation and REST surface ---------------------------------

def test_run_id_and_tenant_propagate_across_thread_boundary(tmp_path):
    """One id end-to-end: RunRecord == journal runId == enforcer span run_id,
    and the tenant rides along into span attributes and accounting."""
    service = IResService(_factory(), workers=1, journal_dir=tmp_path)
    server = IResServer(_factory()(), service=service)

    async def main():
        await service.start()
        rec = service.submit("helloworld-chain", tenant="acme")
        await service.wait(rec.run_id, timeout=120)
        return rec

    rec = asyncio.run(main())
    assert rec.state == SUCCEEDED

    # journal on disk is keyed by the service-assigned id
    records = read_journal(journal_path(tmp_path, rec.run_id))
    assert {r["runId"] for r in records} == {rec.run_id}
    admitted = next(r for r in records if r["kind"] == RUN_ADMITTED)
    assert admitted["tenant"] == "acme"

    # enforcer spans carry the same id and the tenant attribute
    spans = []
    for platform in service.platforms():
        spans.extend(platform.tracer.spans(rec.run_id))
    assert spans, "no spans recorded under the service-assigned run id"
    root = next(s for s in spans if s.name.startswith("execute:"))
    assert root.attributes["tenant"] == "acme"

    # accounting attributed the run to the tenant with real core-seconds
    snapshot = service.accounts.snapshot()
    (tenant,) = snapshot["tenants"]
    assert tenant["tenant"] == "acme"
    assert tenant["totalCoreSeconds"] > 0

    # the merged timeline sees all sources through REST
    response = server.handle("GET", f"/runs/{rec.run_id}/timeline")
    assert response.status == 200
    assert set(response.body["sources"]) >= {"journal", "service", "span"}
    assert response.body["runId"] == rec.run_id


def test_rest_tenants_slo_dashboard_routes():
    service = IResService(_factory(), workers=1)
    server = IResServer(_factory()(), service=service)

    async def main():
        await service.start()
        rec = service.submit("helloworld-chain", tenant="t1")
        await service.wait(rec.run_id, timeout=120)

    asyncio.run(main())
    tenants = server.handle("GET", "/tenants")
    assert tenants.status == 200
    assert tenants.body["tenants"][0]["tenant"] == "t1"
    slo = server.handle("GET", "/slo")
    assert slo.status == 200
    assert {s["slo"] for s in slo.body["slos"]} \
        == {s.name for s in default_slos()}
    dash = server.handle("GET", "/dashboard")
    assert dash.status == 200
    assert dash.content_type.startswith("text/html")
    assert "IReS service dashboard" in dash.text
    # method and disabled-feature errors
    assert server.handle("POST", "/tenants").status == 405
    assert server.handle("POST", "/slo").status == 405
    assert server.handle("POST", "/dashboard").status == 405
    bare = IResServer(_factory()(),
                      service=IResService(_factory(), accounts=False,
                                          slo=False))
    assert bare.handle("GET", "/tenants").status == 404
    assert bare.handle("GET", "/slo").status == 404
    assert bare.handle("GET", "/runs/nope/timeline").status == 404


def test_service_stats_expose_queue_wait_and_slo_fields():
    service = IResService(_factory(), workers=1)

    async def main():
        await service.start()
        rec = service.submit("helloworld-chain")
        await service.wait(rec.run_id, timeout=120)

    asyncio.run(main())
    stats = service.stats()
    assert stats["queueWaitEwmaSeconds"] is not None
    assert stats["queueWaitEwmaSeconds"] >= 0
    assert stats["sloActiveAlarms"] == []
    (rec,) = service.runs()
    assert rec.queued_wait_seconds is not None
    assert rec.to_dict()["queuedWaitSeconds"] == pytest.approx(
        rec.queued_wait_seconds, abs=1e-6)
