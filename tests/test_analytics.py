"""Unit tests for the real analytics operators (repro.analytics)."""

import numpy as np
import pytest

from repro.analytics import (
    generate_cdr_graph,
    generate_corpus,
    kmeans,
    linecount,
    pagerank,
    tfidf_vectorize,
    wordcount,
)
from repro.analytics.pagerank import top_influencers
from repro.analytics.wordcount import distinct_words


class TestPagerank:
    def test_scores_sum_to_one(self):
        edges = [(0, 1), (1, 2), (2, 0), (0, 2)]
        scores = pagerank(edges, iterations=30)
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)
        assert (scores > 0).all()

    def test_star_graph_center_wins(self):
        """Everyone calls vertex 0, so 0 must have the top score."""
        edges = [(i, 0) for i in range(1, 8)]
        scores = pagerank(edges, iterations=30)
        assert scores.argmax() == 0

    def test_symmetric_cycle_uniform(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        scores = pagerank(edges, iterations=60, tol=1e-12)
        np.testing.assert_allclose(scores, 0.25, atol=1e-6)

    def test_dangling_nodes_handled(self):
        # vertex 2 has no outlinks; mass must not vanish
        edges = [(0, 1), (1, 2)]
        scores = pagerank(edges, iterations=40)
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_empty_edges(self):
        assert pagerank([], n_vertices=4).tolist() == [0.25] * 4
        assert pagerank([]).size == 0

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError):
            pagerank([(0, 1)], damping=1.5)

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError):
            pagerank(np.array([[0, 1, 2]]))

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError):
            pagerank([(0, 5)], n_vertices=3)

    def test_top_influencers_sorted(self):
        edges = [(i, 0) for i in range(1, 10)] + [(0, 1), (2, 1)]
        scores = pagerank(edges, iterations=30)
        top = top_influencers(scores, k=3)
        assert top[0][0] == 0
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_matches_networkx(self):
        """Cross-check against networkx's reference implementation."""
        import networkx as nx

        edges = [tuple(e) for e in generate_cdr_graph(300, 40, seed=3)]
        ours = pagerank(edges, n_vertices=40, iterations=200, tol=1e-14)
        # MultiDiGraph keeps call multiplicity, matching CDR semantics.
        g = nx.MultiDiGraph()
        g.add_nodes_from(range(40))
        g.add_edges_from(edges)
        theirs = nx.pagerank(g, alpha=0.85, max_iter=200, tol=1e-14)
        for v in range(40):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-8)


class TestTfIdf:
    def test_shapes_and_vocabulary(self):
        docs = ["cat dog cat", "dog bird", "fish"]
        result = tfidf_vectorize(docs)
        assert result.n_documents == 3
        assert set(result.vocabulary) == {"cat", "dog", "bird", "fish"}
        assert result.matrix.shape == (3, 4)

    def test_rows_l2_normalized(self):
        docs = generate_corpus(20, seed=1)
        result = tfidf_vectorize(docs)
        norms = np.linalg.norm(result.matrix, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_rare_term_weighs_more(self):
        docs = ["common rare", "common", "common", "common"]
        result = tfidf_vectorize(docs)
        row = result.matrix[0]
        assert row[result.vocabulary["rare"]] > row[result.vocabulary["common"]]

    def test_min_df_filters(self):
        docs = ["a b", "a c", "a d"]
        result = tfidf_vectorize(docs, min_df=2)
        assert set(result.vocabulary) == {"a"}

    def test_max_terms_caps_vocabulary(self):
        docs = generate_corpus(30, seed=2)
        result = tfidf_vectorize(docs, max_terms=10)
        assert result.n_terms == 10

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            tfidf_vectorize([])


class TestKMeans:
    def test_separated_blobs_recovered(self):
        rng = np.random.default_rng(0)
        blob1 = rng.normal(0, 0.2, (40, 2))
        blob2 = rng.normal(5, 0.2, (40, 2)) + [0, 5]
        X = np.vstack([blob1, blob2])
        result = kmeans(X, k=2, seed=1)
        assert result.k == 2
        # all points of a blob share a label
        assert len(set(result.labels[:40])) == 1
        assert len(set(result.labels[40:])) == 1
        assert result.labels[0] != result.labels[40]

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (100, 3))
        inertias = [kmeans(X, k, seed=0).inertia for k in (1, 2, 4, 8)]
        assert inertias == sorted(inertias, reverse=True)

    def test_k_bounds_checked(self):
        X = np.zeros((5, 2))
        with pytest.raises(ValueError):
            kmeans(X, 0)
        with pytest.raises(ValueError):
            kmeans(X, 6)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 1)

    def test_clusters_tfidf_topics(self):
        """End-to-end: the text-clustering workflow recovers topics."""
        docs = generate_corpus(60, n_topics=3, seed=4)
        tfidf = tfidf_vectorize(docs)
        result = kmeans(tfidf.matrix, k=3, seed=2)
        assert len(set(result.labels.tolist())) == 3


class TestWordLineCount:
    def test_wordcount(self):
        counts = wordcount(["the cat the dog", "the bird"])
        assert counts["the"] == 3
        assert counts["cat"] == 1

    def test_distinct_words(self):
        assert distinct_words(["a b a", "b c"]) == 3

    def test_linecount(self):
        assert linecount("") == 0
        assert linecount("one") == 1
        assert linecount("one\ntwo\n") == 2
        assert linecount("one\ntwo\nthree") == 3


class TestGenerators:
    def test_cdr_graph_shape_and_no_self_loops(self):
        edges = generate_cdr_graph(500, 100, seed=5)
        assert edges.shape == (500, 2)
        assert (edges[:, 0] != edges[:, 1]).all()
        assert edges.min() >= 0 and edges.max() < 100

    def test_cdr_graph_heavy_tailed(self):
        edges = generate_cdr_graph(5000, 500, seed=6)
        degrees = np.bincount(edges.ravel(), minlength=500)
        # top-5% of vertices should hold a disproportionate share of calls
        top = np.sort(degrees)[-25:].sum()
        assert top / degrees.sum() > 0.2

    def test_cdr_graph_deterministic(self):
        a = generate_cdr_graph(100, seed=7)
        b = generate_cdr_graph(100, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_cdr_rejects_zero_edges(self):
        with pytest.raises(ValueError):
            generate_cdr_graph(0)

    def test_corpus_properties(self):
        docs = generate_corpus(25, words_per_doc=40, seed=8)
        assert len(docs) == 25
        assert all(len(d.split()) == 40 for d in docs)

    def test_corpus_rejects_zero_docs(self):
        with pytest.raises(ValueError):
            generate_corpus(0)
