"""Tests for profiler, modeler, refinement and estimators (optimizer layer)."""

import numpy as np
import pytest

from repro.core import (
    Dataset,
    MaterializedOperator,
    Modeler,
    ModelRefiner,
    ModelBackedEstimator,
    OracleEstimator,
    ProfileSpec,
    Profiler,
    monetary_cost,
    workload_from_inputs,
)
from repro.engines import Resources, Workload, build_default_cloud
from repro.models import fast_model_zoo


@pytest.fixture
def cloud():
    return build_default_cloud(seed=3)


def spark_tfidf_op(extra=None):
    props = {
        "Constraints.OpSpecification.Algorithm.name": "TF_IDF",
        "Constraints.Engine": "Spark",
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
    }
    props.update(extra or {})
    return MaterializedOperator("TF_IDF_spark", props)


class TestProfileSpec:
    def test_grid_is_full_cartesian_product(self):
        spec = ProfileSpec(
            "a", "E", counts=[1, 2], params={"k": [3, 4, 5]},
            resources=[Resources(2, 4), Resources(4, 8)],
        )
        grid = spec.grid()
        assert len(grid) == 2 * 3 * 2
        counts = {g[0] for g in grid}
        assert counts == {1, 2}
        assert all(set(g[1]) == {"k"} for g in grid)

    def test_grid_without_params(self):
        spec = ProfileSpec("a", "E", counts=[1], resources=[Resources(1, 1)])
        assert spec.grid() == [(1, {}, Resources(1, 1))]


class TestProfiler:
    def test_profile_runs_grid_and_records(self, cloud):
        spec = ProfileSpec(
            "TF_IDF", "Spark", counts=[1e3, 1e4], bytes_per_item=1e3,
            resources=[Resources(8, 16), Resources(16, 32)],
        )
        records = Profiler(cloud).profile(spec)
        assert len(records) == 4
        assert len(cloud.collector.for_operator("TF_IDF", "Spark")) == 4
        assert all(r.exec_time > 0 for r in records)

    def test_profile_max_runs_prefix(self, cloud):
        spec = ProfileSpec("TF_IDF", "Spark", counts=[1e3, 1e4, 1e5])
        records = Profiler(cloud).profile(spec, max_runs=2)
        assert len(records) == 2

    def test_failed_runs_skipped_not_returned(self, cloud):
        # Java pagerank OOMs at 1e8 edges on an 8 GB node.
        spec = ProfileSpec(
            "pagerank", "Java", counts=[1e4, 1e8], bytes_per_item=40,
            params={"iterations": [10]}, resources=[Resources(4, 8)],
        )
        records = Profiler(cloud).profile(spec)
        assert len(records) == 1
        assert len(cloud.collector.failures()) == 1

    def test_random_setups_uniform_sampling(self, cloud):
        spec = ProfileSpec(
            "TF_IDF", "Spark", counts=[1e3, 1e4, 1e5],
            resources=[Resources(4, 8), Resources(16, 32)],
        )
        records = Profiler(cloud).sample_random_setups(spec, n_runs=12, seed=1)
        assert len(records) == 12
        assert len({r.input_count for r in records}) > 1


class TestModeler:
    def test_too_few_samples_returns_none(self, cloud):
        modeler = Modeler(cloud.collector)
        assert modeler.train("TF_IDF", "Spark") is None
        assert modeler.estimate("TF_IDF", "Spark", {}) is None

    def test_train_and_estimate_accuracy(self, cloud):
        spec = ProfileSpec(
            "TF_IDF", "Spark",
            counts=[1e3, 5e3, 1e4, 5e4, 1e5, 5e5], bytes_per_item=1e3,
            resources=[Resources(c, 2 * c) for c in (4, 8, 16, 32)],
        )
        Profiler(cloud).profile(spec)
        modeler = Modeler(cloud.collector, zoo=fast_model_zoo())
        model = modeler.train("TF_IDF", "Spark")
        assert model is not None
        assert model.n_samples == 24
        # interpolation accuracy within the grid should be decent
        truth = cloud.engine("Spark").true_seconds(
            "TF_IDF", Workload.of_count(2e4, 1e3), Resources(8, 16)
        )
        est = modeler.estimate("TF_IDF", "Spark", {
            "input_size": 2e4 * 1e3, "input_count": 2e4,
            "cores": 8.0, "memory_gb": 16.0,
        })
        assert est == pytest.approx(truth, rel=0.5)

    def test_drop_model(self, cloud):
        Profiler(cloud).profile(ProfileSpec("TF_IDF", "Spark", counts=[1e3, 1e4]))
        modeler = Modeler(cloud.collector, zoo=fast_model_zoo())
        modeler.train("TF_IDF", "Spark")
        modeler.drop("TF_IDF", "Spark")
        assert modeler.get("TF_IDF", "Spark") is None


class TestRefinement:
    def test_refit_every_batches(self, cloud):
        modeler = Modeler(cloud.collector, zoo=fast_model_zoo())
        refiner = ModelRefiner(modeler, refit_every=3)
        profiler = Profiler(cloud)
        spec = ProfileSpec("TF_IDF", "Spark", counts=[1e3, 1e4, 1e5, 1e6])
        retrains = 0
        for record in profiler.profile(spec):
            if refiner.observe(record):
                retrains += 1
        assert retrains == 1  # 4 observations, refit at the 3rd
        assert refiner.flush() == 1  # one pending observation left

    def test_failed_records_ignored(self, cloud):
        modeler = Modeler(cloud.collector)
        refiner = ModelRefiner(modeler, refit_every=1)
        from repro.engines import MetricRecord

        bad = MetricRecord("x", "a", "E", float("inf"), 0.0, success=False)
        assert refiner.observe(bad) is False

    def test_bad_refit_every_rejected(self, cloud):
        with pytest.raises(ValueError):
            ModelRefiner(Modeler(cloud.collector), refit_every=0)

    def test_refinement_improves_accuracy(self, cloud):
        """More observations -> lower relative error (the Fig 16.a trend)."""
        modeler = Modeler(cloud.collector, zoo=fast_model_zoo())
        refiner = ModelRefiner(modeler, refit_every=5)
        profiler = Profiler(cloud)
        spec = ProfileSpec(
            "wordcount", "MapReduce",
            counts=[1e5, 5e5, 1e6, 5e6, 1e7], bytes_per_item=1e3,
            resources=[Resources(c, m) for c in (4, 16, 32) for m in (8, 32)],
        )
        rng = np.random.default_rng(5)
        engine = cloud.engine("MapReduce")
        errors = []
        for run in range(60):
            count = spec.counts[rng.integers(len(spec.counts))]
            res = spec.resources[rng.integers(len(spec.resources))]
            feats = {"input_size": count * 1e3, "input_count": count,
                     "cores": float(res.cores), "memory_gb": res.memory_gb}
            pred = modeler.estimate("wordcount", "MapReduce", feats)
            rec = profiler.profile_point(engine, spec, count, {}, res)
            if pred is not None and rec is not None:
                errors.append(abs(pred - rec.exec_time) / rec.exec_time)
            if rec is not None:
                refiner.observe(rec)
        late = float(np.mean(errors[-10:]))
        assert late < 0.30  # the paper's "below 30% after ~50 runs"


class TestEstimators:
    def test_workload_from_inputs_aggregates(self):
        op = spark_tfidf_op({"Execution.Param.iterations": 5})
        inputs = [
            Dataset("a", {"Optimization.size": 1e9, "Optimization.count": 10}),
            Dataset("b", {"Optimization.size": 2e9, "Optimization.count": 20}),
        ]
        w = workload_from_inputs(op, inputs)
        assert w.size_gb == pytest.approx(3.0)
        assert w.count == 30
        assert w.params == {"iterations": 5.0}

    def test_oracle_matches_ground_truth(self, cloud):
        est = OracleEstimator(cloud)
        op = spark_tfidf_op()
        inputs = [Dataset("docs", {"Optimization.count": 1e4,
                                   "Optimization.size": 1e7})]
        metrics = est.operator_metrics(op, inputs)
        truth = cloud.engine("Spark").true_seconds(
            "TF_IDF", Workload(count=1e4, size_gb=0.01),
            cloud.engine("Spark").default_resources(),
        )
        assert metrics["execTime"] == pytest.approx(truth)
        res = cloud.engine("Spark").default_resources()
        assert metrics["cost"] == pytest.approx(monetary_cost(res, truth))

    def test_oracle_infeasible_on_oom(self, cloud):
        est = OracleEstimator(cloud)
        op = MaterializedOperator("pr_java", {
            "Constraints.OpSpecification.Algorithm.name": "pagerank",
            "Constraints.Engine": "Java",
        })
        inputs = [Dataset("g", {"Optimization.count": 1e9,
                                "Optimization.size": 4e10})]
        metrics = est.operator_metrics(op, inputs)
        assert metrics["execTime"] == float("inf")

    def test_oracle_falls_back_to_metadata(self, cloud):
        est = OracleEstimator(cloud)
        op = MaterializedOperator("custom", {
            "Constraints.OpSpecification.Algorithm.name": "mystery",
            "Constraints.Engine": "Spark",
            "Optimization.execTime": 7.5,
            "Optimization.cost": 2.5,
        })
        metrics = est.operator_metrics(op, [])
        assert metrics == {"execTime": 7.5, "cost": 2.5}

    def test_model_backed_uses_learned_model(self, cloud):
        Profiler(cloud).profile(ProfileSpec(
            "TF_IDF", "Spark", counts=[1e3, 1e4, 1e5, 1e6], bytes_per_item=1e3,
            resources=[Resources(32, 64)],
        ))
        modeler = Modeler(cloud.collector, zoo=fast_model_zoo())
        modeler.train("TF_IDF", "Spark")
        est = ModelBackedEstimator(cloud, modeler)
        op = spark_tfidf_op({"Execution.Resources.cores": 32,
                             "Execution.Resources.memory_gb": 64})
        inputs = [Dataset("docs", {"Optimization.count": 5e4,
                                   "Optimization.size": 5e7})]
        metrics = est.operator_metrics(op, inputs)
        truth = cloud.engine("Spark").true_seconds(
            "TF_IDF", Workload(count=5e4, size_gb=0.05), Resources(32, 64))
        assert metrics["execTime"] == pytest.approx(truth, rel=0.6)

    def test_model_backed_fallback_to_metadata(self, cloud):
        modeler = Modeler(cloud.collector)
        est = ModelBackedEstimator(cloud, modeler)
        op = spark_tfidf_op({"Optimization.execTime": 3.0})
        assert est.operator_metrics(op, [])["execTime"] == 3.0
        est_strict = ModelBackedEstimator(cloud, modeler, fallback=False)
        assert est_strict.operator_metrics(op, [])["execTime"] == float("inf")

    def test_move_metrics_proportional_to_size(self, cloud):
        est = OracleEstimator(cloud)
        small = est.move_metrics(Dataset("d", {"Optimization.size": 1e8}), "A", "B")
        large = est.move_metrics(Dataset("d", {"Optimization.size": 1e9}), "A", "B")
        assert large["execTime"] > small["execTime"]
        same = est.move_metrics(Dataset("d", {"Optimization.size": 1e9}), "A", "A")
        assert same["execTime"] == 0.0

    def test_output_size_selectivity(self, cloud):
        est = OracleEstimator(cloud, output_selectivity=0.5)
        op = spark_tfidf_op()
        inputs = [Dataset("d", {"Optimization.size": 1e9})]
        assert est.output_size(op, inputs) == pytest.approx(5e8)
        op2 = spark_tfidf_op({"Optimization.outputSelectivity": 0.1})
        assert est.output_size(op2, inputs) == pytest.approx(1e8)


class TestModelerPersistence:
    def test_save_load_roundtrip(self, cloud, tmp_path):
        Profiler(cloud).profile(ProfileSpec(
            "TF_IDF", "Spark", counts=[1e3, 1e4, 1e5, 1e6], bytes_per_item=1e3,
            resources=[Resources(32, 64)]))
        modeler = Modeler(cloud.collector, zoo=fast_model_zoo())
        modeler.train("TF_IDF", "Spark")
        assert modeler.save(tmp_path / "models") == 1

        restored = Modeler(cloud.collector)
        assert restored.load(tmp_path / "models") == 1
        original = modeler.get("TF_IDF", "Spark")
        loaded = restored.get("TF_IDF", "Spark")
        assert loaded.model_name == original.model_name
        assert loaded.feature_names == original.feature_names
        features = {"input_size": 5e7, "input_count": 5e4,
                    "cores": 32.0, "memory_gb": 64.0}
        assert loaded.estimate(features) == pytest.approx(
            original.estimate(features), rel=1e-9)

    def test_load_empty_directory(self, cloud, tmp_path):
        modeler = Modeler(cloud.collector)
        (tmp_path / "empty").mkdir()
        assert modeler.load(tmp_path / "empty") == 0
