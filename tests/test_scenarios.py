"""Integration tests: the paper's evaluation scenarios plan as published."""

import pytest

from repro.core import IReS, OptimizationPolicy
from repro.scenarios import (
    HELLOWORLD_ENGINES,
    setup_graph_analytics,
    setup_helloworld,
    setup_relational_analytics,
    setup_text_analytics,
)


@pytest.fixture
def ires():
    return IReS()


class TestGraphAnalytics:
    """Figure 11: engine choice tracks input scale."""

    @pytest.mark.parametrize("edges,expected", [
        (1e4, "Java"),
        (1e6, "Java"),
        (2e7, "Hama"),
        (1e8, "Spark"),
    ])
    def test_engine_choice_by_scale(self, ires, edges, expected):
        make = setup_graph_analytics(ires)
        plan = ires.plan(make(edges))
        engines = plan.engines_used()
        assert engines == {expected}

    def test_ires_never_slower_than_best_single_engine(self, ires):
        make = setup_graph_analytics(ires)
        for edges in (1e4, 1e6, 1e7, 1e8):
            plan = ires.plan(make(edges))
            # oracle cost of every single-engine alternative
            single = []
            for engine in ("Java", "Hama", "Spark"):
                try:
                    p = ires.planner.plan(make(edges), available_engines={engine})
                    single.append(p.cost)
                except Exception:
                    continue
            assert plan.cost <= min(single) + 1e-9


class TestTextAnalytics:
    """Figure 12: scikit small, hybrid 10k-40k, Spark large; 30%-class wins."""

    def test_three_regimes(self, ires):
        make = setup_text_analytics(ires)
        small = ires.plan(make(5e3)).engines_used()
        hybrid = ires.plan(make(2.5e4)).engines_used()
        large = ires.plan(make(1e5)).engines_used()
        assert small == {"scikit"}
        assert hybrid == {"scikit", "Spark"}
        assert large == {"Spark"}

    def test_hybrid_beats_best_single_engine_meaningfully(self, ires):
        make = setup_text_analytics(ires)
        wf = make(2.5e4)
        hybrid = ires.plan(wf)
        scikit_only = ires.planner.plan(make(2.5e4), available_engines={"scikit"})
        spark_only = ires.planner.plan(make(2.5e4), available_engines={"Spark"})
        best_single = min(scikit_only.cost, spark_only.cost)
        speedup = (best_single - hybrid.cost) / best_single
        assert speedup > 0.10  # the paper reports gains up to 30%


class TestRelationalAnalytics:
    """Figure 13: each query runs where its tables reside at scale."""

    def test_query_placement_at_scale(self, ires):
        make = setup_relational_analytics(ires)
        plan = ires.plan(make(20))
        placement = {s.abstract_name: s.engine for s in plan.steps if not s.is_move}
        assert placement["tpch_q1"] == "PostgreSQL"
        assert placement["tpch_q2"] == "MemSQL"
        assert placement["tpch_q3"] == "SparkSQL"

    def test_memsql_single_engine_fails_large(self, ires):
        """MemSQL cannot run the whole workflow past ~2 GB (OOM on q3)."""
        from repro.core import PlanningError

        make = setup_relational_analytics(ires)
        with pytest.raises(PlanningError):
            ires.planner.plan(make(20), available_engines={"MemSQL"})

    def test_memsql_feasible_small(self, ires):
        make = setup_relational_analytics(ires)
        plan = ires.planner.plan(make(1), available_engines={"MemSQL"})
        assert plan.engines_used() == {"MemSQL"}

    def test_ires_beats_single_engine_at_scale(self, ires):
        make = setup_relational_analytics(ires)
        multi = ires.plan(make(50))
        for engine in ("PostgreSQL", "SparkSQL"):
            single = ires.planner.plan(make(50), available_engines={engine})
            assert multi.cost <= single.cost


class TestHelloWorld:
    def test_table1_engine_catalogue(self, ires):
        setup_helloworld(ires)
        for alg, engines in HELLOWORLD_ENGINES.items():
            names = {op.engine for op in ires.library
                     if op.algorithm == alg}
            assert names == set(engines)

    def test_chain_plans_all_four_operators(self, ires):
        make = setup_helloworld(ires)
        plan = ires.plan(make())
        materialized = [s for s in plan.steps if not s.is_move]
        assert [s.abstract_name for s in materialized] == [
            "HelloWorld", "HelloWorld1", "HelloWorld2", "HelloWorld3"]
        assert materialized[0].engine == "Python"  # only option (Table 1)


class TestPolicies:
    def test_cost_policy_changes_graph_plan(self, ires_factory=None):
        """Minimizing monetary cost prefers fewer resources than min-time."""
        time_ires = IReS(policy=OptimizationPolicy.min_exec_time())
        cost_ires = IReS(policy=OptimizationPolicy.min_cost())
        make_t = setup_graph_analytics(time_ires)
        make_c = setup_graph_analytics(cost_ires)
        # at 2e7 edges min-time picks Hama (distributed); min-cost should
        # prefer the centralized Java... which is infeasible here, so it still
        # picks a distributed engine but optimizes the cost metric.
        plan_t = time_ires.plan(make_t(2e7))
        plan_c = cost_ires.plan(make_c(2e7))
        assert plan_t.cost >= 0 and plan_c.cost >= 0

    def test_weighted_policy(self):
        ires = IReS(policy=OptimizationPolicy({"execTime": 1.0, "cost": 0.001}))
        make = setup_text_analytics(ires)
        plan = ires.plan(make(1e4))
        assert plan.cost > 0
