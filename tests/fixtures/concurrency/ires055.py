"""Seeded defect: IRES055 — thread-shared class that defines no lock."""


class HitCounter:  # thread-shared
    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
