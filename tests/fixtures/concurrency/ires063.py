"""Seeded defect: IRES063 — ``await`` while holding a lock."""

import asyncio
import threading


class Publisher:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    async def publish(self) -> None:
        with self._lock:
            await asyncio.sleep(0)
