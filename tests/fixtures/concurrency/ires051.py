"""Seeded defect: IRES051 — guarded field written under the wrong lock."""

import threading


class Router:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self._routes: dict[str, str] = {}  # guarded-by: _lock

    def wrong_lock(self, key: str, value: str) -> None:
        with self._aux:
            self._routes[key] = value
