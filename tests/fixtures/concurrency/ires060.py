"""Seeded defect: IRES060 — blocking call inside ``async def``.

Modeled on the ``ires top`` polling loop before it grew an
interruptible wait: render the screen, then sleep the interval —
except here the sleep is a synchronous ``time.sleep`` parked on the
event loop.
"""

import time


def render_screen(tick: int) -> str:
    return f"tick={tick}"


async def top_loop(interval: float) -> None:
    tick = 0
    while True:
        render_screen(tick)
        tick += 1
        time.sleep(interval)
