"""Seeded defect: IRES062 — ``asyncio.to_thread`` target touches guarded state."""

import asyncio
import threading


class Spool:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: list[str] = []  # guarded-by: _lock

    def _drain_locked(self) -> list[str]:
        drained = list(self._pending)
        self._pending.clear()
        return drained

    async def flush(self) -> list[str]:
        return await asyncio.to_thread(self._drain_locked)
