"""Seeded defect: IRES053 — inconsistent lock acquisition order."""

import threading


class Transfer:
    def __init__(self) -> None:
        self._debit = threading.Lock()
        self._credit = threading.Lock()

    def forward(self) -> None:
        with self._debit:
            with self._credit:
                pass

    def backward(self) -> None:
        with self._credit:
            with self._debit:
                pass
