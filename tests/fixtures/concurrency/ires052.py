"""Seeded defect: IRES052 — mutable class attribute on a thread-shared class."""

import threading


class Registry:  # thread-shared
    cache: dict[str, str] = {}

    def __init__(self) -> None:
        self._lock = threading.Lock()
