"""No seeded defects: the annotation convention applied correctly."""

import asyncio
import threading


class Store:  # thread-shared
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: list[str] = []  # guarded-by: _lock

    def add(self, item: str) -> None:
        with self._lock:
            self._items.append(item)

    def snapshot(self) -> list[str]:
        with self._lock:
            return list(self._items)


async def tick() -> None:
    await asyncio.sleep(0)


async def run_once() -> None:
    await tick()
