"""Seeded defect: IRES054 — guarded-by names a lock that does not exist."""


class Ledger:
    def __init__(self) -> None:
        self._entries: list[str] = []  # guarded-by: _missing
