"""Seeded defect: IRES050 — guarded field written outside its lock."""

import threading


class Buffer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: list[str] = []  # guarded-by: _lock

    def bad_append(self, item: str) -> None:
        self._items.append(item)
