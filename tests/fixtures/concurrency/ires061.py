"""Seeded defect: IRES061 — coroutine called but never awaited."""

import asyncio


async def refresh() -> None:
    await asyncio.sleep(0)


def kick_off() -> None:
    refresh()
