"""Tests for the write-ahead run journal and crash recovery."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IReS
from repro.execution.journal import (
    RUN_ADMITTED,
    RUN_FINISHED,
    STEP_FINISHED,
    JournalCorruptError,
    RunJournal,
    journal_path,
    list_journals,
    read_journal,
    recover,
)
from repro.scenarios import setup_helloworld


def _run_with_journal(tmp_path, **ires_kwargs):
    """Execute the helloworld chain with journaling; returns (ires, report)."""
    ires = IReS(journal_dir=tmp_path, **ires_kwargs)
    make = setup_helloworld(ires)
    workflow = make()
    ires.workflows[workflow.name] = workflow
    report = ires.execute(workflow)
    return ires, report


# -- record plumbing ---------------------------------------------------------

def test_append_and_read_round_trip(tmp_path):
    path = tmp_path / "r1.jsonl"
    with RunJournal(path, run_id="r1") as journal:
        journal.append(RUN_ADMITTED, workflow="wf", strategy="IResReplan")
        journal.append(STEP_FINISHED, index=0, success=True, outputs=[])
        journal.append(RUN_FINISHED, state="succeeded")
    records = read_journal(path)
    assert [r["kind"] for r in records] == [
        RUN_ADMITTED, STEP_FINISHED, RUN_FINISHED]
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert all(r["runId"] == "r1" for r in records)


def test_every_line_is_crc_stamped(tmp_path):
    path = tmp_path / "r2.jsonl"
    with RunJournal(path, run_id="r2") as journal:
        journal.append(RUN_ADMITTED, workflow="wf")
    line = path.read_text().strip()
    assert '"crc":' in line
    assert json.loads(line)["kind"] == RUN_ADMITTED


def test_torn_final_line_is_skipped(tmp_path):
    path = tmp_path / "r3.jsonl"
    with RunJournal(path, run_id="r3") as journal:
        journal.append(RUN_ADMITTED, workflow="wf")
        journal.append(STEP_FINISHED, index=0, success=True, outputs=[])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 2, "kind": "run_fin')  # the crash
    records = read_journal(path)
    assert len(records) == 2  # torn tail dropped, valid prefix kept


def test_tampered_record_is_detected_by_crc(tmp_path):
    path = tmp_path / "r4.jsonl"
    with RunJournal(path, run_id="r4") as journal:
        journal.append(RUN_ADMITTED, workflow="wf")
        journal.append(RUN_FINISHED, state="succeeded")
    lines = path.read_text().splitlines()
    lines[0] = lines[0].replace('"wf"', '"evil"')  # valid JSON, wrong crc
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalCorruptError):
        read_journal(path)


def test_resume_truncates_torn_tail_before_appending(tmp_path):
    path = tmp_path / "r5.jsonl"
    with RunJournal(path, run_id="r5") as journal:
        journal.append(RUN_ADMITTED, workflow="wf")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("garbage-not-json")
    with RunJournal(path) as journal:  # reopen = resume
        assert journal.run_id == "r5"  # recovered from the first record
        journal.append(RUN_FINISHED, state="succeeded")
    records = read_journal(path)  # appended after a valid prefix, no tears
    assert [r["kind"] for r in records] == [RUN_ADMITTED, RUN_FINISHED]
    assert [r["seq"] for r in records] == [0, 1]


def test_list_journals_and_path_helpers(tmp_path):
    assert list_journals(tmp_path / "nope") == []
    for run_id in ("a1", "b2"):
        with RunJournal(journal_path(tmp_path, run_id), run_id=run_id) as j:
            j.append(RUN_ADMITTED, workflow="wf")
    assert {p.stem for p in list_journals(tmp_path)} == {"a1", "b2"}


# -- enforcer integration ----------------------------------------------------

def test_successful_run_journals_full_lifecycle(tmp_path):
    ires, report = _run_with_journal(tmp_path)
    records = read_journal(journal_path(tmp_path, report.run_id))
    kinds = [r["kind"] for r in records]
    assert kinds[0] == RUN_ADMITTED
    assert kinds[1] == "plan_chosen"
    assert kinds[-1] == RUN_FINISHED
    finished = [r for r in records if r["kind"] == STEP_FINISHED]
    assert len(finished) == len(report.executions)
    assert all(r["success"] for r in finished)
    # step_finished carries the materialized outputs recovery rebuilds from
    assert all(r["outputs"] for r in finished if r.get("engine") != "move")
    assert records[-1]["state"] == "succeeded"
    assert records[-1]["steps"] == len(report.executions)


def test_recover_of_finished_run(tmp_path):
    _, report = _run_with_journal(tmp_path)
    run = recover(journal_path(tmp_path, report.run_id))
    assert run.terminal == "succeeded"
    assert not run.interrupted
    assert run.workflow == report.workflow
    assert len(run.finished_steps) == len(report.executions)
    assert "dd3" in run.completed  # the chain's target dataset
    assert all(ds.materialized for ds in run.completed.values())


def _truncate_after_steps(path, n_steps: int, garbage: str = "") -> None:
    """Cut a journal right after its n-th ``step_finished`` record."""
    lines = path.read_text().splitlines()
    kept, seen = [], 0
    for line in lines:
        kept.append(line)
        if json.loads(line).get("kind") == STEP_FINISHED:
            seen += 1
            if seen >= n_steps:
                break
    assert seen >= n_steps, f"journal has only {seen} finished steps"
    path.write_text("\n".join(kept) + "\n" + garbage)


def test_crash_recovery_resumes_without_reexecution(tmp_path):
    _, report = _run_with_journal(tmp_path)
    total_steps = len(report.executions)
    assert total_steps >= 3
    path = journal_path(tmp_path, report.run_id)
    _truncate_after_steps(path, 2, garbage='{"seq": 99, "torn')

    run = recover(path)
    assert run.interrupted and run.torn_tail
    assert len(run.finished_steps) == 2
    done_before = run.finished_step_keys()

    fresh = IReS(journal_dir=tmp_path)
    make = setup_helloworld(fresh)
    workflow = make()
    fresh.workflows[workflow.name] = workflow
    resumed = fresh.executor.resume(workflow, run)
    assert resumed.succeeded
    assert resumed.run_id == report.run_id
    assert resumed.recovered_steps == 2
    # zero re-execution: nothing journaled as finished ran again
    executed = {(e.step.abstract_name, e.step.operator.name)
                for e in resumed.executions}
    assert not executed & done_before
    assert len(resumed.executions) == total_steps - 2
    # the journal now tells the whole story, crash included
    records = read_journal(path)
    kinds = [r["kind"] for r in records]
    assert "run_resumed" in kinds
    assert records[-1]["kind"] == RUN_FINISHED
    assert records[-1]["state"] == "succeeded"
    assert recover(path).resumes == 1


def test_recover_run_platform_entry_point(tmp_path):
    _, report = _run_with_journal(tmp_path)
    path = journal_path(tmp_path, report.run_id)
    _truncate_after_steps(path, 1)
    fresh = IReS(journal_dir=tmp_path)
    make = setup_helloworld(fresh)
    workflow = make()
    fresh.workflows[workflow.name] = workflow
    resumed = fresh.recover_run(report.run_id)
    assert resumed.succeeded
    assert resumed.recovered_steps == 1


def test_recover_run_requires_journal_dir():
    ires = IReS()
    with pytest.raises(ValueError, match="journal_dir"):
        ires.recover_run("deadbeef")


def test_recover_run_unknown_workflow_lists_available(tmp_path):
    _, report = _run_with_journal(tmp_path)
    fresh = IReS(journal_dir=tmp_path)  # no workflows registered
    with pytest.raises(KeyError, match="available"):
        fresh.recover_run(report.run_id)


def test_journal_disabled_by_default(tmp_path):
    ires = IReS()
    make = setup_helloworld(ires)
    report = ires.execute(make())
    assert report.succeeded
    assert ires.executor.journal_dir is None
    assert list_journals(tmp_path) == []


def test_sigint_terminal_state_counts_as_interrupted(tmp_path):
    path = tmp_path / "s1.jsonl"
    with RunJournal(path, run_id="s1") as journal:
        journal.append(RUN_ADMITTED, workflow="wf", strategy="IResReplan")
        journal.append(RUN_FINISHED, state="interrupted", error="SIGINT")
    run = recover(path)
    assert run.terminal == "interrupted"
    assert run.interrupted  # resumable, unlike failed/cancelled


# -- replay-idempotence property (hypothesis) --------------------------------

_JOURNAL_CACHE: dict = {}


def _reference_run(tmp_path_factory):
    """One journaled helloworld run, executed once per test session."""
    if "run" not in _JOURNAL_CACHE:
        root = tmp_path_factory.mktemp("journal-prop")
        _, report = _run_with_journal(root)
        path = journal_path(root, report.run_id)
        steps = [(e.step.abstract_name, e.step.operator.name)
                 for e in report.executions]
        _JOURNAL_CACHE["run"] = (path.read_text().splitlines(),
                                 report.run_id, set(steps))
    return _JOURNAL_CACHE["run"]


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    return _reference_run(tmp_path_factory)


@settings(max_examples=12, deadline=None)
@given(prefix_seed=st.integers(min_value=1, max_value=10_000),
       torn=st.booleans())
def test_replaying_any_prefix_converges(reference_run, tmp_path_factory,
                                        prefix_seed, torn):
    """Resuming from any journal prefix reaches the same final step set,
    and never re-executes a step the prefix journaled as finished."""
    lines, run_id, full_steps = reference_run
    # every prefix must contain run_admitted (line 0) to name the workflow
    keep = 1 + prefix_seed % len(lines)
    root = tmp_path_factory.mktemp("prefix")
    path = journal_path(root, run_id)
    body = "\n".join(lines[:keep]) + "\n"
    if torn:
        body += '{"seq": 999, "kind": "step_fin'  # a torn tail on top
    path.write_text(body)

    run = recover(path)
    done_before = run.finished_step_keys()

    ires = IReS(journal_dir=root)
    make = setup_helloworld(ires)
    workflow = make()
    ires.workflows[workflow.name] = workflow
    if run.terminal == "succeeded":
        # the prefix includes the terminal record: nothing left to resume
        assert run.finished_step_keys() == full_steps
        return
    resumed = ires.executor.resume(workflow, run)
    assert resumed.succeeded
    executed = {(e.step.abstract_name, e.step.operator.name)
                for e in resumed.executions}
    # convergence: recovered prefix + resumed suffix == the full run
    assert done_before | executed == full_steps
    # idempotence: a journaled-finished step is never re-executed
    assert not executed & done_before
