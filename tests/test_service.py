"""Tests for the asyncio execution service and its REST/HTTP surfaces."""

import asyncio
import json
import threading
import types
import urllib.request

import pytest

from repro.api.rest import IResServer
from repro.api.service import (
    CANCELLED,
    DEADLINE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    SUCCEEDED,
    AdmissionError,
    IResService,
)
from repro.core import IReS
from repro.execution.journal import journal_path, read_journal
from repro.scenarios import setup_helloworld


def _factory(journal_dir=None):
    """A per-worker platform factory with the helloworld chain registered."""
    def build():
        ires = IReS(journal_dir=journal_dir)
        make = setup_helloworld(ires)
        workflow = make()
        ires.workflows[workflow.name] = workflow
        return ires
    return build


class _StubPlatform:
    """A controllable platform stand-in: runs block until released."""

    def __init__(self):
        self.workflows = {"slow": object()}
        self.executor = types.SimpleNamespace(journal_dir=None)
        self.release = threading.Event()
        self.started = threading.Event()

    def execute(self, workflow, control=None, run_id=None, resume_from=None):
        self.started.set()
        while not self.release.wait(timeout=0.01):
            if control is not None:
                control.check()
        return types.SimpleNamespace(
            sim_time=1.0, replans=0, retries=0, executions=[],
            recovered_steps=0, cached_plans=0)


# -- admission control -------------------------------------------------------

def test_queue_limit_rejects_with_retry_after():
    service = IResService(_factory(), queue_limit=2)
    service.submit("helloworld-chain")
    service.submit("helloworld-chain")
    with pytest.raises(AdmissionError) as err:
        service.submit("helloworld-chain")
    assert err.value.status == 429
    assert err.value.retry_after > 0


def test_tenant_quota_rejects_only_the_noisy_tenant():
    service = IResService(_factory(), queue_limit=16, tenant_quota=2)
    service.submit("helloworld-chain", tenant="noisy")
    service.submit("helloworld-chain", tenant="noisy")
    with pytest.raises(AdmissionError, match="quota"):
        service.submit("helloworld-chain", tenant="noisy")
    service.submit("helloworld-chain", tenant="polite")  # unaffected


def test_draining_service_rejects_with_503():
    service = IResService(_factory())
    queued = service.submit("helloworld-chain")
    asyncio.run(service.shutdown(drain=False))
    with pytest.raises(AdmissionError) as err:
        service.submit("helloworld-chain")
    assert err.value.status == 503
    assert queued.state == INTERRUPTED  # never started, surfaced as such


def test_cancel_queued_run_never_starts():
    service = IResService(_factory())
    rec = service.submit("helloworld-chain")
    assert rec.state == QUEUED
    assert service.cancel(rec.run_id).state == CANCELLED
    assert rec.done.is_set()
    with pytest.raises(KeyError):
        service.cancel("nonexistent")


# -- execution ---------------------------------------------------------------

def test_submitted_runs_execute_concurrently_and_succeed():
    async def main():
        service = IResService(_factory(), workers=4, queue_limit=16)
        await service.start()
        recs = [service.submit("helloworld-chain", tenant=f"t{i % 2}")
                for i in range(8)]
        for rec in recs:
            await service.wait(rec.run_id, timeout=120)
        await service.shutdown()
        return recs, service

    recs, service = asyncio.run(main())
    assert all(rec.state == SUCCEEDED for rec in recs)
    assert all(rec.summary["steps"] > 0 for rec in recs)
    assert service.peak_active > 1  # genuinely concurrent
    stats = service.stats()
    assert stats["runsByState"][SUCCEEDED] == 8
    assert not stats["accepting"]


def test_unknown_workflow_fails_the_run_not_the_worker():
    async def main():
        service = IResService(_factory(), workers=1)
        await service.start()
        bad = service.submit("no-such-workflow")
        good = service.submit("helloworld-chain")
        await service.wait(bad.run_id, timeout=60)
        await service.wait(good.run_id, timeout=120)
        await service.shutdown()
        return bad, good

    bad, good = asyncio.run(main())
    assert bad.state == FAILED and "unknown workflow" in bad.error
    assert good.state == SUCCEEDED  # the worker survived


def test_tenant_fair_round_robin_dequeue():
    async def main():
        service = IResService(_factory(), workers=1, queue_limit=16)
        # queue before starting the worker so dequeue order is deterministic
        recs = [service.submit("helloworld-chain", tenant=t)
                for t in ("a", "a", "a", "b")]
        await service.start()
        for rec in recs:
            await service.wait(rec.run_id, timeout=240)
        await service.shutdown()
        return recs

    recs = asyncio.run(main())
    order = [r.tenant for r in sorted(recs, key=lambda r: r.started_at)]
    # round-robin: b's single run interleaves instead of waiting out all of a
    assert order == ["a", "b", "a", "a"]


def test_cancel_running_run_cooperatively():
    stub = _StubPlatform()

    async def main():
        service = IResService(lambda: stub, workers=1)
        await service.start()
        rec = service.submit("slow")
        await asyncio.to_thread(stub.started.wait, 10)
        service.cancel(rec.run_id)
        await service.wait(rec.run_id, timeout=10)
        await service.shutdown(drain=False)
        return rec

    rec = asyncio.run(main())
    assert rec.state == CANCELLED
    assert "cancelled" in rec.error


def test_deadline_exceeded_marks_run_deadline():
    stub = _StubPlatform()

    async def main():
        service = IResService(lambda: stub, workers=1,
                              default_deadline_seconds=0.05)
        await service.start()
        rec = service.submit("slow")
        await service.wait(rec.run_id, timeout=10)
        await service.shutdown(drain=False)
        return rec

    rec = asyncio.run(main())
    assert rec.state == DEADLINE


def test_graceful_drain_finishes_inflight_work():
    async def main():
        service = IResService(_factory(), workers=2)
        await service.start()
        recs = [service.submit("helloworld-chain") for _ in range(3)]
        await service.shutdown(drain=True)  # no explicit waits: drain does it
        return recs

    recs = asyncio.run(main())
    assert all(rec.state == SUCCEEDED for rec in recs)


def test_forced_shutdown_cancels_running_and_interrupts_queued():
    stub = _StubPlatform()

    async def main():
        service = IResService(lambda: stub, workers=1)
        await service.start()
        running = service.submit("slow")
        queued = service.submit("slow")
        await asyncio.to_thread(stub.started.wait, 10)
        await service.shutdown(drain=True, timeout=0.1)  # drain times out
        return running, queued

    running, queued = asyncio.run(main())
    assert running.state == CANCELLED
    assert queued.state == INTERRUPTED


# -- durability --------------------------------------------------------------

def _interrupt_journal(journal_dir) -> str:
    """Journal one run, then cut it after its first finished step."""
    ires = _factory(journal_dir=journal_dir)()
    report = ires.execute(ires.workflows["helloworld-chain"])
    path = journal_path(journal_dir, report.run_id)
    lines = path.read_text().splitlines()
    kept, seen = [], 0
    for line in lines:
        kept.append(line)
        if json.loads(line).get("kind") == "step_finished":
            seen += 1
            if seen >= 1:
                break
    path.write_text("\n".join(kept) + "\n")
    return report.run_id


def test_startup_recovery_requeues_interrupted_runs(tmp_path):
    run_id = _interrupt_journal(tmp_path)

    async def main():
        service = IResService(_factory(), workers=1, journal_dir=tmp_path)
        recovered = await service.start()
        assert [r.run_id for r in recovered] == [run_id]
        rec = await service.wait(run_id, timeout=120)
        await service.shutdown()
        return rec

    rec = asyncio.run(main())
    assert rec.state == SUCCEEDED
    assert rec.resume is not None
    assert rec.summary["recoveredSteps"] == 1
    records = read_journal(journal_path(tmp_path, run_id))
    assert records[-1]["kind"] == "run_finished"
    assert records[-1]["state"] == "succeeded"


def test_service_runs_are_journaled(tmp_path):
    async def main():
        service = IResService(_factory(), workers=1, journal_dir=tmp_path)
        await service.start()
        rec = service.submit("helloworld-chain")
        await service.wait(rec.run_id, timeout=120)
        await service.shutdown()
        return rec

    rec = asyncio.run(main())
    records = read_journal(journal_path(tmp_path, rec.run_id))
    assert records[0]["kind"] == "run_admitted"
    assert records[-1]["state"] == "succeeded"


def test_recover_rejects_active_or_succeeded_runs(tmp_path):
    async def main():
        service = IResService(_factory(), workers=1, journal_dir=tmp_path)
        await service.start()
        rec = service.submit("helloworld-chain")
        await service.wait(rec.run_id, timeout=120)
        with pytest.raises(ValueError, match="succeeded"):
            service.recover(rec.run_id)
        await service.shutdown()

    asyncio.run(main())


# -- REST surface ------------------------------------------------------------

def test_rest_runs_routes_without_service_answer_503():
    server = IResServer(IReS())
    assert server.handle("GET", "/runs").status == 503
    assert server.handle("GET", "/service").status == 503


def test_rest_runs_lifecycle(tmp_path):
    async def main():
        service = IResService(_factory(), workers=2, journal_dir=tmp_path)
        await service.start()
        server = IResServer(IReS(), service=service)
        submitted = server.handle("POST", "/runs",
                                  {"workflow": "helloworld-chain"})
        assert submitted.status == 202
        run_id = submitted.body["runId"]
        await service.wait(run_id, timeout=120)
        listing = server.handle("GET", "/runs")
        status = server.handle("GET", f"/runs/{run_id}")
        stats = server.handle("GET", "/service")
        missing = server.handle("GET", "/runs/nope")
        bad = server.handle("POST", "/runs", {})
        await service.shutdown()
        return listing, status, stats, missing, bad

    listing, status, stats, missing, bad = asyncio.run(main())
    assert listing.status == 200 and len(listing.body["runs"]) == 1
    assert status.body["state"] == SUCCEEDED
    assert stats.body["workers"] == 2
    assert missing.status == 404
    assert bad.status == 400


def test_rest_backpressure_maps_to_429():
    service = IResService(_factory(), queue_limit=1)
    server = IResServer(IReS(), service=service)
    assert server.handle("POST", "/runs",
                         {"workflow": "helloworld-chain"}).status == 202
    rejected = server.handle("POST", "/runs",
                             {"workflow": "helloworld-chain"})
    assert rejected.status == 429
    assert rejected.body["retryAfter"] > 0


def test_rest_cancel_and_recover_routes(tmp_path):
    run_id = _interrupt_journal(tmp_path)
    assert run_id
    # cancel (queued) works against a not-yet-started service
    service = IResService(_factory(), workers=1)
    server = IResServer(IReS(), service=service)
    rec = service.submit("helloworld-chain")
    cancelled = server.handle("POST", f"/runs/{rec.run_id}/cancel")
    assert cancelled.status == 200
    assert cancelled.body["state"] == CANCELLED
    assert server.handle("POST", "/runs/nope/cancel").status == 404

    async def recover_main():
        svc = IResService(_factory(), workers=1, journal_dir=tmp_path)
        srv = IResServer(IReS(), service=svc)
        # consume the startup auto-recovery first, then re-interrupt
        svc_recovered = await svc.start()
        for r in svc_recovered:
            await svc.wait(r.run_id, timeout=120)
        fresh_id = _interrupt_journal(tmp_path)
        response = srv.handle("POST", f"/runs/{fresh_id}/recover")
        assert response.status == 202
        await svc.wait(fresh_id, timeout=120)
        missing = srv.handle("POST", "/runs/nope/recover")
        await svc.shutdown()
        return response, missing, svc.status(fresh_id)

    response, missing, resumed = asyncio.run(recover_main())
    assert missing.status == 404
    assert resumed.state == SUCCEEDED
    assert resumed.summary["recoveredSteps"] == 1


# -- HTTP transport ----------------------------------------------------------

def test_http_transport_end_to_end():
    from repro.api.httpd import make_http_server

    async def main():
        service = IResService(_factory(), workers=1)
        await service.start()
        server = IResServer(IReS(), service=service)
        httpd = make_http_server(server, "127.0.0.1", 0)
        port = httpd.server_address[1]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            def post(path, body):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}{path}",
                    data=json.dumps(body).encode(), method="POST",
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request) as resp:
                    return resp.status, json.loads(resp.read())

            def get(path):
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}{path}") as resp:
                    return resp.status, resp.read()

            status, body = await asyncio.to_thread(
                post, "/runs", {"workflow": "helloworld-chain"})
            assert status == 202
            await service.wait(body["runId"], timeout=120)
            status, payload = await asyncio.to_thread(
                get, f"/runs/{body['runId']}")
            assert status == 200
            assert json.loads(payload)["state"] == SUCCEEDED
            status, payload = await asyncio.to_thread(get, "/metrics")
            assert status == 200
            assert b"ires_service_runs_total" in payload
            assert b"ires_service_queue_wait_seconds" in payload
        finally:
            httpd.shutdown()
            await service.shutdown()

    asyncio.run(main())


def test_http_telemetry_surfaces_and_cli_top():
    from repro.api.httpd import make_http_server
    from repro.cli import _render_top

    async def main():
        service = IResService(_factory(), workers=1)
        await service.start()
        server = IResServer(_factory()(), service=service)
        httpd = make_http_server(server, "127.0.0.1", 0)
        port = httpd.server_address[1]
        base = f"http://127.0.0.1:{port}"
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            rec = service.submit("helloworld-chain", tenant="http-t")
            await service.wait(rec.run_id, timeout=120)

            def get(path, method="GET"):
                request = urllib.request.Request(base + path, method=method)
                with urllib.request.urlopen(request) as resp:
                    return (resp.status, resp.read(),
                            dict(resp.headers.items()))

            status, payload, _ = await asyncio.to_thread(get, "/tenants")
            assert status == 200
            assert json.loads(payload)["tenants"][0]["tenant"] == "http-t"
            status, payload, _ = await asyncio.to_thread(get, "/slo")
            assert status == 200
            assert json.loads(payload)["activeAlarms"] == []
            status, payload, headers = await asyncio.to_thread(
                get, "/dashboard")
            assert status == 200
            assert headers["Content-Type"].startswith("text/html")
            assert headers["Cache-Control"] == "no-store"
            assert b"dashboard-data" in payload
            # HEAD routes like GET but elides the body
            status, payload, headers = await asyncio.to_thread(
                get, "/dashboard", "HEAD")
            assert status == 200 and payload == b""
            assert int(headers["Content-Length"]) > 0
            status, payload, _ = await asyncio.to_thread(
                get, f"/runs/{rec.run_id}/timeline")
            assert status == 200
            assert json.loads(payload)["runId"] == rec.run_id
            frame = await asyncio.to_thread(_render_top, base)
            assert "queue=" in frame and "tenant http-t" in frame
            return base
        finally:
            httpd.shutdown()
            await service.shutdown()

    asyncio.run(main())


def test_cli_tenants_and_top_unreachable_server_exit():
    from repro.cli import main as cli_main

    with pytest.raises(SystemExit, match="cannot reach"):
        cli_main(["tenants", "--server", "http://127.0.0.1:1"])
    with pytest.raises(SystemExit, match="cannot reach"):
        cli_main(["top", "--server", "http://127.0.0.1:1", "--once"])


def test_queue_wait_metrics_and_tenant_label():
    from repro.obs.metrics import REGISTRY

    service = IResService(_factory(), workers=1)

    async def main():
        await service.start()
        rec = service.submit("helloworld-chain", tenant="metrics-tenant")
        await service.wait(rec.run_id, timeout=120)

    asyncio.run(main())
    hist = REGISTRY.get("ires_service_queue_wait_seconds")
    assert hist is not None and hist.value() >= 1
    runs = REGISTRY.get("ires_service_runs_total")
    assert runs.value(status=SUCCEEDED, tenant="metrics-tenant") >= 1
    telemetry = REGISTRY.get("ires_service_telemetry_seconds")
    assert telemetry is not None and telemetry.value() >= 1


def test_retry_after_uses_measured_queue_wait_ewma():
    service = IResService(_factory(), workers=2, queue_limit=4)
    # cold start: no completed runs, only the latency-model fallback
    with service._lock:
        cold = service._retry_after_locked()
    assert 1.0 <= cold <= 60.0
    # warm: a measured queue-wait EWMA anchors the estimate and the
    # execution EWMA projects the backlog in front of a new submission
    service._queue_wait_ewma = 3.0
    service._exec_seconds_ewma = 10.0
    service._pending["t"] = __import__("collections").deque(
        [object(), object(), object(), object()])
    with service._lock:
        warm = service._retry_after_locked()
    assert warm == pytest.approx(3.0 + 10.0 * 4 / 2)
    service._queue_wait_ewma = 0.0
    with service._lock:
        floored = service._retry_after_locked()
    assert floored >= 1.0  # clamped to the [1, 60] hint range


def test_run_record_to_dict_is_json_able():
    service = IResService(_factory())
    rec = service.submit("helloworld-chain", tenant="t1",
                         deadline_seconds=5.0)
    payload = json.loads(json.dumps(rec.to_dict()))
    assert payload["workflow"] == "helloworld-chain"
    assert payload["tenant"] == "t1"
    assert payload["state"] == QUEUED
    assert payload["deadlineSeconds"] == 5.0
    assert payload["runId"] == rec.run_id
