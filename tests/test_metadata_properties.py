"""Property-based tests for meta-data tree matching (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import MetadataTree, WILDCARD

label = st.sampled_from(["Engine", "type", "FS", "number", "Algorithm",
                         "name", "Input0", "Output0"])
value = st.sampled_from(["Spark", "Hadoop", "HDFS", "text", "arff", "1", "2"])


@st.composite
def properties(draw, max_depth=3, max_keys=6):
    n = draw(st.integers(0, max_keys))
    props = {}
    for _ in range(n):
        depth = draw(st.integers(1, max_depth))
        key = ".".join(draw(label) for _ in range(depth))
        # avoid prefix conflicts (internal node vs leaf) by skipping keys
        # that are prefixes of / prefixed by existing ones
        if any(k == key or k.startswith(key + ".") or key.startswith(k + ".")
               for k in props):
            continue
        props[key] = draw(value)
    return props


@given(properties())
@settings(max_examples=80, deadline=None)
def test_roundtrip(props):
    tree = MetadataTree.from_properties(props)
    assert tree.to_properties() == props


@given(properties())
@settings(max_examples=80, deadline=None)
def test_matching_reflexive(props):
    tree = MetadataTree.from_properties(props)
    assert tree.matches(tree)
    assert tree.consistent_with(tree)


@given(properties(), properties())
@settings(max_examples=80, deadline=None)
def test_subset_always_matches_superset(a, b):
    """A tree built from a subset of another's leaves matches it."""
    merged = dict(b)
    safe_a = {
        k: v for k, v in a.items()
        if not any(k != m and (k.startswith(m + ".") or m.startswith(k + "."))
                   for m in merged)
    }
    merged.update(safe_a)
    subset = MetadataTree.from_properties(safe_a)
    superset = MetadataTree.from_properties(merged)
    assert subset.matches(superset)
    assert subset.consistent_with(superset)
    assert superset.consistent_with(subset)


@given(properties())
@settings(max_examples=60, deadline=None)
def test_wildcard_version_matches_anything_matching_shape(props):
    """Replacing every value with * keeps the match against the original."""
    tree = MetadataTree.from_properties(props)
    wild = MetadataTree.from_properties({k: WILDCARD for k in props})
    assert wild.matches(tree)
    assert wild.consistent_with(tree)
    assert tree.consistent_with(wild)


@given(properties())
@settings(max_examples=60, deadline=None)
def test_empty_tree_matches_everything(props):
    tree = MetadataTree.from_properties(props)
    empty = MetadataTree()
    assert empty.matches(tree)
    assert empty.consistent_with(tree)
    assert tree.consistent_with(empty)


@given(properties())
@settings(max_examples=60, deadline=None)
def test_single_changed_leaf_breaks_match(props):
    if not props:
        return
    tree = MetadataTree.from_properties(props)
    key = sorted(props)[0]
    mutated = dict(props)
    mutated[key] = props[key] + "_DIFFERENT"
    other = MetadataTree.from_properties(mutated)
    assert not tree.matches(other)
    assert not tree.consistent_with(other)


@given(properties())
@settings(max_examples=60, deadline=None)
def test_copy_equals_original(props):
    tree = MetadataTree.from_properties(props)
    clone = tree.copy()
    assert clone == tree
    assert clone.size() == tree.size()
