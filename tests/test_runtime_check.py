"""Unit tests for the dynamic concurrency checker (TSan-lite + lock graph).

Every test that wants violations builds its *own*
:class:`ConcurrencyChecker` — the process-wide ``CHECKER`` is gated by
the suite conftest and must stay clean.
"""

import json
import threading
import time

import pytest

from repro.analysis.runtime_check import (
    CHECKER,
    ConcurrencyChecker,
    InstrumentedLock,
    InstrumentedRLock,
    make_lock,
    make_rlock,
)


def _locks(checker, *names, rlock=False):
    cls = InstrumentedRLock if rlock else InstrumentedLock
    return tuple(cls(name, checker) for name in names)


# -- lock-order graph ---------------------------------------------------------

def test_consistent_nesting_builds_edges_but_no_cycle():
    checker = ConcurrencyChecker(enabled=True)
    a, b = _locks(checker, "a", "b")
    with a:
        with b:
            pass
    report = checker.report()
    assert report["lockOrderEdges"] == [{"from": "a", "to": "b"}]
    assert checker.violations() == []
    checker.assert_clean()


def test_inverted_nesting_records_one_cycle_violation():
    checker = ConcurrencyChecker(enabled=True)
    a, b = _locks(checker, "a", "b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    with b:  # closing the same cycle again must not duplicate the report
        with a:
            pass
    (violation,) = checker.violations()
    assert violation.kind == "lock_order_cycle"
    assert "a" in violation.detail and "->" in violation.detail
    with pytest.raises(AssertionError, match="1 violation"):
        checker.assert_clean()


def test_rlock_reentrancy_adds_no_self_edges():
    checker = ConcurrencyChecker(enabled=True)
    (r,) = _locks(checker, "r", rlock=True)
    with r:
        with r:
            assert r.held_by_current_thread()
    assert not r.held_by_current_thread()
    assert checker.report()["lockOrderEdges"] == []
    checker.assert_clean()


def test_held_stack_is_per_thread():
    checker = ConcurrencyChecker(enabled=True)
    (lock,) = _locks(checker, "l")
    seen_in_thread = []
    with lock:
        worker = threading.Thread(
            target=lambda: seen_in_thread.append(
                checker.held_by_current_thread(lock)))
        worker.start()
        worker.join()
        assert checker.held_by_current_thread(lock)
    assert seen_in_thread == [False]


# -- hold-time tracking -------------------------------------------------------

def test_long_holds_become_outliers_not_violations():
    checker = ConcurrencyChecker(enabled=True, hold_time_threshold=0.01)
    (slow,) = _locks(checker, "slow")
    with slow:
        time.sleep(0.05)
    report = checker.report()
    (outlier,) = report["holdTimeOutliers"]
    assert outlier["lock"] == "slow"
    assert outlier["heldSeconds"] >= 0.01
    assert report["maxHoldSeconds"]["slow"] >= 0.04
    checker.assert_clean()  # a smell, not a bug


# -- shared-object tracking ---------------------------------------------------

def test_cross_thread_unguarded_access_is_a_violation():
    checker = ConcurrencyChecker(enabled=True)
    (guard,) = _locks(checker, "guard")
    shared = {"hits": 0}
    checker.register_shared(shared, "test:shared", guard)

    def touch():
        checker.note_access(shared, "write")

    touch()  # main thread, no guard
    worker = threading.Thread(target=touch)
    worker.start()
    worker.join()
    (record,) = checker.unguarded_shared_accesses()
    assert record["object"] == "test:shared"
    assert record["threads"] == 2
    assert record["unguardedAccesses"] == 2
    kinds = {v.kind for v in checker.violations()}
    assert kinds == {"unguarded_access"}


def test_guarded_access_and_single_thread_use_are_clean():
    checker = ConcurrencyChecker(enabled=True)
    (guard,) = _locks(checker, "guard")
    disciplined = {"hits": 0}
    checker.register_shared(disciplined, "test:disciplined", guard)

    def touch():
        with guard:
            checker.note_access(disciplined, "write")

    touch()
    worker = threading.Thread(target=touch)
    worker.start()
    worker.join()
    solo = {"hits": 0}
    checker.register_shared(solo, "test:solo", guard)
    checker.note_access(solo, "write")  # unguarded but single-threaded
    assert checker.unguarded_shared_accesses() == []
    checker.assert_clean()


def test_disabled_checker_records_nothing():
    checker = ConcurrencyChecker(enabled=False)
    obj = {"hits": 0}
    checker.register_shared(obj, "test:off")
    checker.note_access(obj)
    assert checker.report()["sharedObjects"] == []
    checker.assert_clean()


def test_reset_drops_all_recorded_state():
    checker = ConcurrencyChecker(enabled=True)
    a, b = _locks(checker, "a", "b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert checker.violations()
    checker.reset()
    assert checker.violations() == []
    assert checker.report()["lockOrderEdges"] == []


# -- factories and the process-wide checker -----------------------------------

def test_make_lock_matches_global_checker_state(monkeypatch):
    monkeypatch.setattr(CHECKER, "enabled", True)
    instrumented = make_lock("test:on")
    reentrant = make_rlock("test:on-r")
    assert isinstance(instrumented, InstrumentedLock)
    assert isinstance(reentrant, InstrumentedRLock)
    assert reentrant.reentrant and not instrumented.reentrant
    monkeypatch.setattr(CHECKER, "enabled", False)
    plain = make_lock("test:off")
    plain_r = make_rlock("test:off-r")
    assert not isinstance(plain, InstrumentedLock)
    assert not isinstance(plain_r, InstrumentedLock)
    assert plain.acquire(blocking=False) and plain.release() is None


def test_instrumented_lock_mirrors_threading_api():
    checker = ConcurrencyChecker(enabled=True)
    lock = InstrumentedLock("api", checker)
    assert lock.acquire(blocking=False)
    assert lock.locked()
    contender = []
    worker = threading.Thread(
        target=lambda: contender.append(lock.acquire(blocking=False)))
    worker.start()
    worker.join()
    assert contender == [False]
    lock.release()
    assert not lock.locked()
    assert repr(lock) == "InstrumentedLock('api')"
    assert repr(InstrumentedRLock("r", checker)) == "InstrumentedRLock('r')"


# -- report export ------------------------------------------------------------

def test_export_json_writes_the_lock_graph_artifact(tmp_path):
    checker = ConcurrencyChecker(enabled=True)
    a, b = _locks(checker, "a", "b")
    with a:
        with b:
            pass
    target = tmp_path / "artifacts" / "lock-graph.json"
    written = checker.export_json(target)
    assert written == target
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert payload["enabled"] is True
    assert payload["lockOrderEdges"] == [{"from": "a", "to": "b"}]
    assert payload["violations"] == []
    assert "maxHoldSeconds" in payload and "sharedObjects" in payload
