"""Tests for the prediction-accuracy ledger and the drift detector."""

import json

import pytest

from repro.core import IReS
from repro.engines.profiles import Infrastructure, Workload
from repro.obs import REGISTRY, recent_logs
from repro.obs.accuracy import NULL_LEDGER, AccuracyLedger, LedgerEntry, PairStats
from repro.obs.drift import DriftDetector
from repro.obs.logging import clear as clear_logs
from repro.scenarios import (
    BYTES_PER_EDGE,
    PAGERANK_ITERATIONS,
    setup_graph_analytics,
    setup_helloworld,
)


def _entry(pred, actual, operator="pagerank", engine="Spark", **kw):
    fields = dict(
        run_id="r1", workflow="wf", step="pagerank_spark",
        operator=operator, engine=engine,
        predicted={"execTime": pred}, actual={"execTime": actual}, at=0.0,
    )
    fields.update(kw)
    return LedgerEntry(**fields)


class TestLedgerEntry:
    def test_relative_error_is_signed(self):
        assert _entry(12.0, 10.0).relative_error() == pytest.approx(0.2)
        assert _entry(8.0, 10.0).relative_error() == pytest.approx(-0.2)

    def test_relative_error_missing_metric(self):
        entry = _entry(1.0, 1.0)
        assert entry.relative_error("cost") is None
        entry.actual = {}
        assert entry.relative_error() is None

    def test_zero_actual_stays_finite(self):
        err = _entry(1.0, 0.0).relative_error()
        assert err is not None and err > 0

    def test_dict_roundtrip(self):
        entry = _entry(3.0, 4.0, index=2, attempt=3, success=False)
        clone = LedgerEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone == entry


class TestPairStats:
    def test_mape_bias_count(self):
        stats = PairStats("op", "E")
        for err in (0.2, -0.4):
            stats.observe(err)
        assert stats.count == 2
        assert stats.mape == pytest.approx(0.3)
        assert stats.bias == pytest.approx(-0.1)

    def test_ewma_folds_absolute_error(self):
        stats = PairStats("op", "E", alpha=0.5)
        stats.observe(0.4)
        assert stats.ewma_error == pytest.approx(0.4)
        stats.observe(-0.2)
        assert stats.ewma_error == pytest.approx(0.5 * 0.2 + 0.5 * 0.4)

    def test_recent_mape_windows(self):
        stats = PairStats("op", "E", recent_window=2)
        for err in (0.9, 0.1, 0.3):
            stats.observe(err)
        assert stats.recent_mape == pytest.approx(0.2)
        assert stats.mape == pytest.approx((0.9 + 0.1 + 0.3) / 3)

    def test_empty_stats_are_zero(self):
        stats = PairStats("op", "E")
        assert stats.mape == 0.0
        assert stats.bias == 0.0
        assert stats.ewma_error == 0.0
        assert stats.recent_mape == 0.0


class TestAccuracyLedger:
    def test_record_updates_stats_and_gauges(self):
        REGISTRY.reset()
        ledger = AccuracyLedger()
        ledger.record(_entry(12.0, 10.0))
        ledger.record(_entry(9.0, 10.0))
        stats = ledger.stats_for("pagerank", "Spark")
        assert stats is not None and stats.count == 2
        assert stats.mape == pytest.approx(0.15)
        mape = REGISTRY.get("ires_accuracy_mape")
        assert mape.value(operator="pagerank", engine="Spark") == \
            pytest.approx(0.15)
        samples = REGISTRY.get("ires_accuracy_samples")
        assert samples.value(operator="pagerank", engine="Spark") == 2

    def test_disabled_ledger_is_a_noop(self):
        assert NULL_LEDGER.record(_entry(1.0, 2.0)) is None
        assert len(NULL_LEDGER) == 0
        assert NULL_LEDGER.record_step(
            run_id="r", workflow="w", step="s", operator="o", engine="e",
            predicted={}, actual={}, at=0.0) is None

    def test_failures_kept_but_not_folded(self):
        ledger = AccuracyLedger()
        ledger.record(_entry(50.0, 1.0, success=False))
        assert len(ledger) == 1
        stats = ledger.stats_for("pagerank", "Spark")
        assert stats is not None and stats.count == 0

    def test_listeners_see_entry_and_stats(self):
        ledger = AccuracyLedger()
        seen = []
        ledger.listeners.append(lambda e, s: seen.append((e, s)))
        entry = _entry(2.0, 1.0)
        ledger.record(entry)
        assert seen and seen[0][0] is entry
        assert seen[0][1].count == 1

    def test_jsonl_path_appends(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = AccuracyLedger(path=path)
        ledger.record(_entry(1.0, 1.0))
        ledger.record(_entry(2.0, 1.0))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["predicted"]["execTime"] == 2.0

    def test_save_load_roundtrip_rebuilds_stats(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = AccuracyLedger()
        ledger.record(_entry(12.0, 10.0))
        ledger.record(_entry(9.0, 10.0, operator="move", engine="move"))
        assert ledger.save(path) == 2
        loaded = AccuracyLedger()
        assert loaded.load(path) == 2
        assert loaded.entries == ledger.entries
        assert loaded.pairs() == [("move", "move"), ("pagerank", "Spark")]
        assert loaded.stats_for("pagerank", "Spark").mape == \
            pytest.approx(0.2)

    def test_load_does_not_notify_listeners(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        AccuracyLedger(path=path).record(_entry(1.0, 1.0))
        loaded = AccuracyLedger()
        seen = []
        loaded.listeners.append(lambda e, s: seen.append(e))
        loaded.load(path)
        assert seen == []

    def test_load_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(_entry(1.0, 1.0).to_dict())
                        + "\n{truncat")
        with pytest.raises(ValueError, match="line 2"):
            AccuracyLedger().load(path)

    def test_load_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="line 1"):
            AccuracyLedger().load(path)

    def test_report_shape_and_trend(self):
        ledger = AccuracyLedger()
        ledger.record(_entry(12.0, 10.0, at=5.0))
        ledger.record(_entry(11.0, 10.0, at=9.0))
        report = ledger.report()
        assert report["enabled"] and report["entries"] == 2
        (pair,) = report["pairs"]
        assert pair["operator"] == "pagerank"
        assert [p["at"] for p in pair["trend"]] == [5.0, 9.0]
        assert pair["trend"][0]["error"] == pytest.approx(0.2)

    def test_max_entries_trims_but_keeps_stats(self):
        ledger = AccuracyLedger(max_entries=4)
        for i in range(5):
            ledger.record(_entry(float(i + 2), 1.0))
        assert len(ledger) < 5
        assert ledger.stats_for("pagerank", "Spark").count == 5

    def test_clear_drops_everything(self):
        ledger = AccuracyLedger()
        ledger.record(_entry(1.0, 1.0))
        ledger.clear()
        assert len(ledger) == 0
        assert ledger.pairs() == []


class TestDriftDetector:
    def _wired(self, **kw):
        ledger = AccuracyLedger(alpha=1.0)  # EWMA == newest |error|
        detector = DriftDetector(**kw).attach(ledger)
        return ledger, detector

    def test_no_alarm_below_min_samples(self):
        ledger, detector = self._wired(threshold=0.5, min_samples=2)
        ledger.record(_entry(10.0, 1.0))
        assert detector.alarms == []

    def test_alarm_on_threshold_crossing(self):
        clear_logs()
        REGISTRY.reset()
        ledger, detector = self._wired(threshold=0.5, min_samples=2)
        ledger.record(_entry(1.05, 1.0))
        ledger.record(_entry(1.9, 1.0))
        (alarm,) = detector.alarms
        assert alarm.operator == "pagerank" and alarm.engine == "Spark"
        assert alarm.ewma_error > 0.5 and alarm.threshold == 0.5
        assert alarm.samples == 2 and not alarm.refit_triggered
        counter = REGISTRY.get("ires_model_drift_alarms_total")
        assert counter.value(operator="pagerank", engine="Spark") == 1
        lines = [ln for ln in recent_logs(logger="drift")
                 if ln["event"] == "drift_alarm"]
        assert lines and lines[0]["operator"] == "pagerank"
        assert lines[0]["level"] == "warning"

    def test_cooldown_suppresses_then_rearms(self):
        ledger, detector = self._wired(
            threshold=0.5, min_samples=1, cooldown=2)
        for _ in range(4):
            ledger.record(_entry(2.0, 1.0))
        # alarm on #1, cooldown eats #2 and #3, alarm again on #4
        assert len(detector.alarms) == 2

    def test_failed_steps_do_not_alarm(self):
        ledger, detector = self._wired(threshold=0.1, min_samples=1)
        ledger.record(_entry(5.0, 1.0, success=False))
        assert detector.alarms == []

    def test_replan_hint_consumed_once(self):
        ledger, detector = self._wired(
            threshold=0.1, min_samples=1, replan_hint=True)
        assert not detector.take_replan_hint()
        ledger.record(_entry(2.0, 1.0))
        assert detector.take_replan_hint()
        assert not detector.take_replan_hint()

    def test_alarm_triggers_windowed_refit(self):
        REGISTRY.reset()

        class FakeRefiner:
            def __init__(self):
                self.calls = []

            def refit_now(self, algorithm, engine, window=None):
                self.calls.append((algorithm, engine, window))
                return True

        ledger, detector = self._wired(
            threshold=0.1, min_samples=1, refit_window=8)
        refiner = FakeRefiner()
        detector.refiner = refiner
        ledger.record(_entry(2.0, 1.0))
        assert refiner.calls == [("pagerank", "Spark", 8)]
        assert detector.alarms[0].refit_triggered
        refits = REGISTRY.get("ires_model_drift_refits_total")
        assert refits.value(operator="pagerank", engine="Spark") == 1

    def test_hooks_and_alarms_for(self):
        ledger, detector = self._wired(threshold=0.1, min_samples=1,
                                       cooldown=0)
        got = []
        detector.hooks.append(got.append)
        ledger.record(_entry(2.0, 1.0))
        ledger.record(_entry(3.0, 1.0, operator="kmeans", engine="scikit"))
        assert len(got) == 2
        assert len(detector.alarms_for("pagerank", "Spark")) == 1
        assert detector.alarms_for("kmeans", "scikit")[0].to_dict()[
            "ewmaError"] == pytest.approx(2.0)


class TestExecutorWiring:
    def test_enforcer_records_predictions_vs_actuals(self):
        ledger = AccuracyLedger()
        ires = IReS(ledger=ledger)
        make = setup_helloworld(ires)
        report = ires.execute(make())
        assert report.succeeded
        assert len(ledger) == len(report.executions)
        for entry in ledger:
            assert entry.run_id == report.run_id
            assert entry.predicted.get("execTime", 0.0) > 0.0
            assert entry.actual["execTime"] > 0.0
            # oracle predictions differ from actuals only by engine noise
            assert abs(entry.relative_error()) < 0.3
        non_moves = [e for e in ledger if e.engine != "move"]
        assert non_moves and all(e.actual["cost"] > 0 for e in non_moves)

    def test_drift_alarm_can_force_a_replan(self):
        ledger = AccuracyLedger()
        drift = DriftDetector(threshold=1e-9, min_samples=1, cooldown=0,
                              refit=False, replan_hint=True)
        ires = IReS(ledger=ledger, drift=drift)
        make = setup_helloworld(ires)
        report = ires.execute(make())
        assert report.succeeded
        assert drift.alarms
        assert report.replans >= 1


class TestDriftEndToEnd:
    """ISSUE acceptance: drift -> rising MAPE -> alarm -> refit -> recovery.

    pagerank@Spark is bootstrapped from direct profiling runs, the platform
    then executes against the trained model, the Spark infrastructure
    silently degrades 4x (the inverse Fig 16.b experiment), and the drift
    detector's windowed refits must pull prediction error back under the
    alarm threshold.
    """

    def test_drift_alarm_refit_recovers_accuracy(self):
        clear_logs()
        REGISTRY.reset()
        ledger = AccuracyLedger(alpha=0.5, recent_window=6)
        drift = DriftDetector(threshold=0.35, min_samples=3, cooldown=2,
                              refit_window=6)
        # refit_every high: only drift alarms may retrain mid-stream
        ires = IReS(estimator="models", refit_every=1000,
                    ledger=ledger, drift=drift)
        make = setup_graph_analytics(ires)
        spark = ires.cloud.engines["Spark"]
        counts = (2e4, 5e4, 1e5, 2e5)

        # offline profiling: bootstrap the pagerank@Spark model (the other
        # engines stay model-less, so ModelBackedEstimator pins the plan)
        for n in (1e4, *counts, 5e5):
            spark.execute("pagerank", Workload.of_count(
                n, BYTES_PER_EDGE, iterations=PAGERANK_ITERATIONS))
        assert ires.modeler.train("pagerank", "Spark") is not None

        # healthy phase: predictions track actuals
        for n in counts[:3]:
            assert ires.execute(make(n)).succeeded
        healthy = ledger.stats_for("pagerank", "Spark")
        assert healthy is not None and healthy.ewma_error < drift.threshold
        assert drift.alarms == []

        # the infrastructure degrades under the trained model
        spark.infra = Infrastructure(io_factor=4.0, cpu_factor=4.0)
        for i in range(9):
            assert ires.execute(make(counts[i % len(counts)])).succeeded
        assert drift.alarms_for("pagerank", "Spark"), "no drift alarm raised"
        first = drift.alarms[0]
        assert first.ewma_error > drift.threshold
        counter = REGISTRY.get("ires_model_drift_alarms_total")
        assert counter.value(operator="pagerank", engine="Spark") >= 1
        events = [ln for ln in recent_logs(logger="drift")
                  if ln["event"] == "drift_alarm"]
        assert events and events[0]["engine"] == "Spark"
        assert ires.refiner.refits >= 1, "alarm did not trigger a refit"

        # recovery phase: the windowed refits learned post-drift reality
        for i in range(6):
            assert ires.execute(make(counts[i % len(counts)])).succeeded
        stats = ledger.stats_for("pagerank", "Spark")
        assert stats.ewma_error < drift.threshold, stats.to_dict()
        assert stats.recent_mape < drift.threshold, stats.to_dict()
