"""Unit tests for the mini SQL substrate (repro.sqlengine)."""

import numpy as np
import pytest

from repro.sqlengine import (
    SQLSyntaxError,
    Table,
    execute_query,
    generate_tpch,
    parse_query,
)
from repro.sqlengine.executor import ExecutionError, apply_filters, hash_join
from repro.sqlengine.parser import Filter
from repro.sqlengine.tpch import schemas


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(2.0, seed=7)


@pytest.fixture(scope="module")
def tpch_schemas(tpch):
    return schemas(tpch)


class TestTable:
    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", {"a": np.arange(3), "b": np.arange(4)})

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            Table("t", {})

    def test_select_rows_and_project(self):
        t = Table("t", {"a": np.array([1, 2, 3]), "b": np.array([4, 5, 6])})
        sub = t.select_rows(np.array([True, False, True]))
        assert sub.n_rows == 2
        proj = sub.project(["b"])
        assert proj.column_names == ["b"]
        assert proj.column("b").tolist() == [4, 6]

    def test_unknown_column_raises(self):
        t = Table("t", {"a": np.array([1])})
        with pytest.raises(KeyError):
            t.column("zzz")

    def test_stats(self):
        t = Table("t", {"a": np.array([1, 1, 2, 5])})
        stats = t.stats()
        assert stats.n_rows == 4
        assert stats.column("a").n_distinct == 3
        assert stats.column("a").min_value == 1.0
        assert stats.column("a").max_value == 5.0
        assert stats.size_bytes == 4 * 1 * 8.0


class TestParser:
    def test_parse_join_filter_query(self, tpch_schemas):
        q = parse_query(
            "SELECT c_custkey FROM customer, nation "
            "WHERE c_nationkey = n_nationkey AND n_name = 'FRANCE'",
            tpch_schemas,
        )
        assert q.tables == ("customer", "nation")
        assert len(q.joins) == 1
        assert q.filters[0].value == "FRANCE"

    def test_select_star(self, tpch_schemas):
        q = parse_query("SELECT * FROM region", tpch_schemas)
        assert q.select == ("*",)

    def test_qualified_columns(self, tpch_schemas):
        q = parse_query(
            "SELECT customer.c_custkey FROM customer, orders "
            "WHERE customer.c_custkey = orders.o_custkey",
            tpch_schemas,
        )
        assert q.joins[0].left_table == "customer"

    def test_numeric_filters(self, tpch_schemas):
        q = parse_query(
            "SELECT p_partkey FROM part WHERE p_retailprice > 2090 "
            "AND p_size <= 10",
            tpch_schemas,
        )
        ops = {f.op for f in q.filters}
        assert ops == {">", "<="}
        assert all(isinstance(f.value, (int, float)) for f in q.filters)

    def test_unknown_table_rejected(self, tpch_schemas):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT x FROM nonexistent", tpch_schemas)

    def test_unknown_column_rejected(self, tpch_schemas):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT bogus FROM region", tpch_schemas)

    def test_ambiguous_column_rejected(self):
        sch = {"a": ["x"], "b": ["x"]}
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT x FROM a, b", sch)

    def test_non_select_rejected(self, tpch_schemas):
        with pytest.raises(SQLSyntaxError):
            parse_query("DELETE FROM region", tpch_schemas)

    def test_non_equi_join_rejected(self, tpch_schemas):
        with pytest.raises(SQLSyntaxError):
            parse_query(
                "SELECT c_custkey FROM customer, orders "
                "WHERE c_custkey < o_custkey", tpch_schemas)


class TestExecutor:
    def test_apply_filters(self):
        t = Table("t", {"a": np.array([1, 2, 3, 4])})
        out = apply_filters(t, [Filter("t", "a", ">", 1), Filter("t", "a", "<", 4)])
        assert out.column("a").tolist() == [2, 3]

    def test_hash_join_inner_semantics(self):
        left = Table("l", {"k": np.array([1, 2, 2]), "v": np.array([10, 20, 21])})
        right = Table("r", {"k2": np.array([2, 3]), "w": np.array([200, 300])})
        out = hash_join(left, "k", right, "k2")
        assert out.n_rows == 2
        assert sorted(out.column("v").tolist()) == [20, 21]
        assert set(out.column("w").tolist()) == {200}

    def test_hash_join_empty_result(self):
        left = Table("l", {"k": np.array([1])})
        right = Table("r", {"k2": np.array([9])})
        assert hash_join(left, "k", right, "k2").n_rows == 0

    def test_execute_matches_bruteforce(self, tpch, tpch_schemas):
        q = parse_query(
            "SELECT c_custkey, o_orderkey FROM customer, orders, nation "
            "WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey "
            "AND n_name = 'GERMANY'", tpch_schemas)
        result = execute_query(q, tpch)
        # brute-force verification
        nation = tpch["nation"]
        german = int(nation.column("n_nationkey")[
            nation.column("n_name") == "GERMANY"][0])
        customer = tpch["customer"]
        german_custs = set(customer.column("c_custkey")[
            customer.column("c_nationkey") == german].tolist())
        orders = tpch["orders"]
        expected = sum(int(c) in german_custs
                       for c in orders.column("o_custkey").tolist())
        assert result.n_rows == expected

    def test_execute_residual_join_predicate(self, tpch, tpch_schemas):
        """Cycle in the join graph: the third predicate becomes residual."""
        q = parse_query(
            "SELECT s_suppkey FROM supplier, nation, customer "
            "WHERE s_nationkey = n_nationkey AND c_nationkey = n_nationkey "
            "AND s_nationkey = c_nationkey", tpch_schemas)
        result = execute_query(q, tpch)
        assert result.n_rows > 0

    def test_missing_table_raises(self, tpch_schemas):
        q = parse_query("SELECT r_name FROM region", tpch_schemas)
        with pytest.raises(ExecutionError):
            execute_query(q, {})

    def test_projection_applied(self, tpch, tpch_schemas):
        q = parse_query("SELECT r_name FROM region", tpch_schemas)
        result = execute_query(q, tpch)
        assert result.table.column_names == ["r_name"]
        assert result.n_rows == 5


class TestTPCH:
    def test_row_proportions(self, tpch):
        assert tpch["lineitem"].n_rows == 4 * tpch["orders"].n_rows
        assert tpch["region"].n_rows == 5
        assert tpch["nation"].n_rows == 25

    def test_scale_grows_rows(self):
        small = generate_tpch(1.0)
        large = generate_tpch(10.0)
        assert large["lineitem"].n_rows == 10 * small["lineitem"].n_rows

    def test_foreign_keys_valid(self, tpch):
        assert tpch["orders"].column("o_custkey").max() < tpch["customer"].n_rows
        assert tpch["lineitem"].column("l_orderkey").max() < tpch["orders"].n_rows
        assert tpch["nation"].column("n_regionkey").max() < 5

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_tpch(0)

    def test_deterministic(self):
        a = generate_tpch(1.0, seed=3)
        b = generate_tpch(1.0, seed=3)
        np.testing.assert_array_equal(a["orders"].column("o_custkey"),
                                      b["orders"].column("o_custkey"))


class TestAggregation:
    def test_count_star_no_group(self, tpch, tpch_schemas):
        q = parse_query("SELECT count(*) AS n FROM orders", tpch_schemas)
        result = execute_query(q, tpch)
        assert result.n_rows == 1
        assert result.table.column("n")[0] == tpch["orders"].n_rows

    def test_group_by_with_count(self, tpch, tpch_schemas):
        q = parse_query(
            "SELECT n_regionkey, count(*) AS nations FROM nation "
            "GROUP BY n_regionkey", tpch_schemas)
        result = execute_query(q, tpch)
        assert result.table.column("nations").sum() == 25
        assert result.table.column_names == ["n_regionkey", "nations"]

    def test_sum_avg_min_max_match_numpy(self, tpch, tpch_schemas):
        import numpy as np
        q = parse_query(
            "SELECT sum(o_totalprice) AS s, avg(o_totalprice) AS a, "
            "min(o_totalprice) AS lo, max(o_totalprice) AS hi FROM orders",
            tpch_schemas)
        result = execute_query(q, tpch)
        col = tpch["orders"].column("o_totalprice")
        assert result.table.column("s")[0] == pytest.approx(col.sum())
        assert result.table.column("a")[0] == pytest.approx(col.mean())
        assert result.table.column("lo")[0] == pytest.approx(col.min())
        assert result.table.column("hi")[0] == pytest.approx(col.max())

    def test_aggregate_over_join_and_filter(self, tpch, tpch_schemas):
        """A TPC-H-style revenue-per-nation query."""
        q = parse_query(
            "SELECT n_name, count(*) AS cnt, sum(o_totalprice) AS revenue "
            "FROM customer, orders, nation "
            "WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey "
            "AND o_totalprice > 100000 GROUP BY n_name", tpch_schemas)
        result = execute_query(q, tpch)
        assert result.n_rows <= 25
        assert (result.table.column("cnt") > 0).all()
        # total count equals the unaggregated filtered join size
        q_flat = parse_query(
            "SELECT n_name FROM customer, orders, nation "
            "WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey "
            "AND o_totalprice > 100000", tpch_schemas)
        flat = execute_query(q_flat, tpch)
        assert result.table.column("cnt").sum() == flat.n_rows

    def test_default_alias(self, tpch_schemas, tpch):
        q = parse_query("SELECT count(*) FROM region", tpch_schemas)
        assert q.aggregates[0].alias == "count_all"
        result = execute_query(q, tpch)
        assert result.table.column("count_all")[0] == 5

    def test_group_by_without_aggregate_rejected(self, tpch_schemas):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT n_name FROM nation GROUP BY n_name",
                        tpch_schemas)

    def test_non_grouped_plain_column_rejected(self, tpch_schemas):
        with pytest.raises(SQLSyntaxError):
            parse_query(
                "SELECT n_name, count(*) AS c FROM nation GROUP BY n_regionkey",
                tpch_schemas)

    def test_sum_star_rejected(self, tpch_schemas):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT sum(*) FROM nation", tpch_schemas)

    def test_group_keys_sorted(self, tpch, tpch_schemas):
        q = parse_query(
            "SELECT c_nationkey, count(*) AS c FROM customer "
            "GROUP BY c_nationkey", tpch_schemas)
        result = execute_query(q, tpch)
        keys = result.table.column("c_nationkey").tolist()
        assert keys == sorted(keys)
