"""Tests for the plan cache (repro.core.plancache) and its wiring."""

import json

import pytest

from repro.api import IResServer
from repro.api.rest import _plan_json
from repro.core import (
    AbstractOperator,
    AbstractWorkflow,
    Dataset,
    IReS,
    MaterializedOperator,
    OperatorLibrary,
    OptimizationPolicy,
    PlanCache,
    Planner,
)
from repro.core.plancache import workflow_digest
from repro.scenarios import setup_helloworld


def make_op(name, alg, engine, fs, exec_time, cost=None):
    return MaterializedOperator(name, {
        "Constraints.OpSpecification.Algorithm.name": alg,
        "Constraints.Engine": engine,
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
        "Constraints.Input0.Engine.FS": fs,
        "Constraints.Output0.Engine.FS": fs,
        "Optimization.execTime": exec_time,
        "Optimization.cost": cost if cost is not None else exec_time,
    })


def make_library():
    lib = OperatorLibrary()
    lib.add(make_op("job_a", "job", "EngineA", "storeA", 5.0, cost=50.0))
    lib.add(make_op("job_b", "job", "EngineB", "storeB", 40.0, cost=1.0))
    return lib


def make_workflow(name="wf", size=1e6):
    wf = AbstractWorkflow(name)
    wf.add_dataset(Dataset("src", {
        "Constraints.Engine.FS": "storeA",
        "Optimization.size": size,
    }, materialized=True))
    wf.add_dataset(Dataset("out"))
    wf.add_operator(AbstractOperator("job", {
        "Constraints.OpSpecification.Algorithm.name": "job"}))
    wf.connect("src", "job")
    wf.connect("job", "out")
    wf.set_target("out")
    return wf


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestPlanCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_hit_and_miss_counters(self):
        cache = PlanCache()
        planner = Planner(make_library(), plan_cache=cache)
        wf = make_workflow()
        first = planner.plan(wf)
        assert not planner.last_plan_cached
        second = planner.plan(wf)
        assert planner.last_plan_cached
        assert second is first
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert len(cache) == 1

    def test_equal_workflow_rebuilt_per_submission_still_hits(self):
        """Recurring submissions rebuild the workflow object; the digest
        keys on structure, so the cache must still hit."""
        cache = PlanCache()
        planner = Planner(make_library(), plan_cache=cache)
        planner.plan(make_workflow())
        planner.plan(make_workflow())
        assert planner.last_plan_cached
        assert cache.hits == 1

    def test_ttl_expiry_counts_eviction_then_miss(self):
        clock = FakeClock()
        cache = PlanCache(ttl_seconds=10.0, clock=clock)
        planner = Planner(make_library(), plan_cache=cache)
        wf = make_workflow()
        planner.plan(wf)
        clock.advance(5.0)
        planner.plan(wf)
        assert planner.last_plan_cached  # still fresh
        clock.advance(6.0)
        planner.plan(wf)
        assert not planner.last_plan_cached  # expired: full DP again
        assert cache.evictions == 1
        assert cache.stats()["evictions"] == 1

    def test_lru_eviction_at_capacity(self):
        cache = PlanCache(capacity=2)
        planner = Planner(make_library(), plan_cache=cache)
        wf_a, wf_b, wf_c = (make_workflow(n) for n in ("a", "b", "c"))
        planner.plan(wf_a)
        planner.plan(wf_b)
        planner.plan(wf_a)  # touch a: b becomes least-recently-used
        assert planner.last_plan_cached
        planner.plan(wf_c)  # evicts b
        assert cache.evictions == 1
        planner.plan(wf_a)
        assert planner.last_plan_cached
        planner.plan(wf_b)
        assert not planner.last_plan_cached  # b was the one dropped

    def test_invalidate_counts_only_real_drops(self):
        cache = PlanCache()
        assert cache.invalidate() == 0
        assert cache.invalidations == 0  # empty no-op: not an event
        assert cache.invalidate(force=True) == 0
        assert cache.invalidations == 1  # explicit API paths always count
        planner = Planner(make_library(), plan_cache=cache)
        planner.plan(make_workflow())
        assert cache.invalidate() == 1
        assert cache.invalidations == 2
        assert len(cache) == 0

    def test_library_change_invalidates_via_listener(self):
        library = make_library()
        cache = PlanCache().attach_library(library)
        planner = Planner(library, plan_cache=cache)
        wf = make_workflow()
        planner.plan(wf)
        assert len(cache) == 1
        library.add(make_op("job_c", "job", "EngineC", "storeA", 0.5))
        assert len(cache) == 0
        plan = planner.plan(wf)
        assert not planner.last_plan_cached  # new epoch: full DP
        assert "job_c" in {s.operator.name for s in plan.steps}
        planner.plan(wf)
        assert planner.last_plan_cached  # warm again under the new epoch

    def test_model_epoch_bump_makes_old_keys_unreachable(self):
        cache = PlanCache()
        wf = make_workflow()
        old_key = cache.key(wf, library_epoch=7)
        cache.bump_model_epoch()
        assert cache.model_epoch == 1
        assert cache.key(wf, library_epoch=7) != old_key

    def test_cross_policy_isolation(self):
        """Two planners with different policies share one cache safely."""
        library = make_library()
        cache = PlanCache()
        fast = Planner(library, policy=OptimizationPolicy.min_exec_time(),
                       plan_cache=cache)
        cheap = Planner(library, policy=OptimizationPolicy.min_cost(),
                        plan_cache=cache)
        wf = make_workflow()
        plan_fast = fast.plan(wf)
        plan_cheap = cheap.plan(wf)
        assert not cheap.last_plan_cached  # distinct policy, distinct key
        assert plan_fast.steps[-1].operator.name == "job_a"
        assert plan_cheap.steps[-1].operator.name == "job_b"
        assert fast.plan(wf) is plan_fast
        assert cheap.plan(wf) is plan_cheap

    def test_cached_plan_serializes_identically(self):
        """A cache hit is byte-identical to an uncached recomputation."""
        cache = PlanCache()
        cached = Planner(make_library(), plan_cache=cache)
        uncached = Planner(make_library())
        wf = make_workflow()
        cached.plan(wf)
        warm = json.dumps(_plan_json(cached.plan(wf)), sort_keys=True)
        cold = json.dumps(_plan_json(uncached.plan(wf)), sort_keys=True)
        assert warm == cold

    def test_record_provenance_bypasses_cache(self):
        """Provenance runs must re-run the DP (a hit would leave
        last_provenance describing some earlier pass)."""
        cache = PlanCache()
        planner = Planner(make_library(), record_provenance=True,
                          plan_cache=cache)
        wf = make_workflow()
        planner.plan(wf)
        planner.plan(wf)
        assert not planner.last_plan_cached
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0
        assert planner.last_provenance is not None

    def test_workflow_digest_tracks_structure(self):
        assert workflow_digest(make_workflow()) == workflow_digest(make_workflow())
        bigger = make_workflow(size=2e6)
        assert workflow_digest(bigger) != workflow_digest(make_workflow())
        renamed = make_workflow()
        renamed.datasets["src"].metadata.set("Constraints.Engine.FS", "storeB")
        assert workflow_digest(renamed) != workflow_digest(make_workflow())


class TestPlatformWiring:
    def test_repeated_execute_serves_plan_from_cache(self):
        ires = IReS()
        make = setup_helloworld(ires)
        first = ires.execute(make())
        second = ires.execute(make())
        assert first.succeeded and second.succeeded
        assert first.cached_plans == 0
        assert second.cached_plans == 1
        assert ires.plan_cache.hits >= 1

    def test_chaos_replan_served_warm_on_repeat(self):
        """The same failure twice: the second run's initial plan AND its
        replan (restricted engine set) both come out of the cache."""
        ires = IReS()
        make = setup_helloworld(ires)
        victim = ires.plan(make()).step_for_operator("HelloWorld2").engine
        ires.fault_injector.kill_engine_at(victim, trigger_operator="HelloWorld2")
        first = ires.execute(make())
        assert first.succeeded and first.replans == 1
        ires.cloud.restart_engine(victim)
        ires.fault_injector.kill_engine_at(victim, trigger_operator="HelloWorld2")
        hits_before = ires.plan_cache.hits
        second = ires.execute(make())
        assert second.succeeded and second.replans == 1
        assert second.cached_plans == 2  # initial plan + warm replan
        assert ires.plan_cache.hits == hits_before + 2

    def test_platform_cache_can_be_disabled(self):
        ires = IReS(plan_cache=False)
        make = setup_helloworld(ires)
        assert ires.plan_cache is None
        report = ires.execute(make())
        assert report.succeeded
        assert report.cached_plans == 0

    def test_refiner_hook_attached_only_for_models_estimator(self):
        """Oracle predictions ignore trained models, so refits must not
        bust the cache there; under estimator='models' they must."""
        oracle = IReS()
        assert oracle.plan_cache._on_refit not in oracle.refiner.listeners
        models = IReS(estimator="models")
        assert models.plan_cache._on_refit in models.refiner.listeners

    def test_models_estimator_refit_busts_cache(self):
        """A real retrain bumps the model epoch and drops cached plans."""
        from repro.engines.profiles import Workload
        from repro.scenarios import (
            BYTES_PER_EDGE,
            PAGERANK_ITERATIONS,
            setup_graph_analytics,
        )

        ires = IReS(estimator="models", refit_every=1000)
        make = setup_graph_analytics(ires)
        spark = ires.cloud.engines["Spark"]
        for n in (1e4, 5e4, 1e5, 5e5):  # offline profiling for pagerank@Spark
            spark.execute("pagerank", Workload.of_count(
                n, BYTES_PER_EDGE, iterations=PAGERANK_ITERATIONS))
        assert ires.modeler.train("pagerank", "Spark") is not None
        ires.plan(make(1e5))
        ires.plan(make(1e5))
        assert ires.planner.last_plan_cached
        epoch = ires.plan_cache.model_epoch
        assert ires.refiner.refit_now("pagerank", "Spark")
        assert ires.plan_cache.model_epoch == epoch + 1
        assert len(ires.plan_cache) == 0
        ires.plan(make(1e5))
        assert not ires.planner.last_plan_cached  # stale plan unreachable


class TestRestEndpoint:
    def test_get_stats(self):
        ires = IReS()
        make = setup_helloworld(ires)
        ires.plan(make())
        ires.plan(make())
        response = IResServer(ires).handle("GET", "/plancache")
        assert response.status == 200
        assert response.body["hits"] == 1
        assert response.body["size"] == 1

    def test_delete_invalidates(self):
        ires = IReS()
        make = setup_helloworld(ires)
        ires.plan(make())
        server = IResServer(ires)
        response = server.handle("DELETE", "/plancache")
        assert response.status == 200
        assert response.body["invalidated"] == 1
        assert response.body["size"] == 0
        ires.plan(make())
        assert not ires.planner.last_plan_cached

    def test_disabled_cache_404(self):
        response = IResServer(IReS(plan_cache=False)).handle("GET", "/plancache")
        assert response.status == 404

    def test_subpath_and_bad_method(self):
        server = IResServer(IReS())
        assert server.handle("GET", "/plancache/xyz").status == 404
        assert server.handle("POST", "/plancache").status == 405
