"""Suite-wide concurrency plugins (DESIGN.md §13).

Two gates, both cheap when idle:

- Uncaught exceptions on worker threads — which ``threading.excepthook``
  normally just prints to stderr — are promoted to a failure of the test
  that was running when they fired.  During a test's run phase pytest's
  own ``threadexception`` plugin owns the hook and reports a warning, so
  that warning is escalated to an error; outside the run phase (import
  time, session teardown) our replacement hook records the crash and the
  autouse fixture fails the next test to observe it.
- When ``IRES_CONCURRENCY_CHECK=1`` the process-wide dynamic checker
  (:data:`repro.analysis.runtime_check.CHECKER`) records every
  instrumented lock acquisition and shared-object access across the whole
  suite; at session end any lock-order cycle or unguarded cross-thread
  access fails the run.  The lock-order-graph report is exported to
  ``$IRES_LOCK_GRAPH_OUT`` when set (CI uploads it as an artifact).
"""

import os
import threading

import pytest

from repro.analysis.runtime_check import CHECKER

_thread_errors: list[str] = []
_original_excepthook = threading.excepthook


def _recording_excepthook(args):
    thread = args.thread.name if args.thread is not None else "<unknown>"
    _thread_errors.append(
        f"{args.exc_type.__name__} in thread {thread!r}: {args.exc_value}")
    _original_excepthook(args)


threading.excepthook = _recording_excepthook


def pytest_configure(config):
    """Escalate pytest's unhandled-thread-exception warning to a failure."""
    config.addinivalue_line(
        "filterwarnings",
        "error::pytest.PytestUnhandledThreadExceptionWarning")


@pytest.fixture(autouse=True)
def _promote_thread_exceptions():
    """Fail the current test if a thread died with an uncaught exception."""
    before = len(_thread_errors)
    yield
    fresh = _thread_errors[before:]
    if fresh:
        pytest.fail("uncaught exception(s) on worker thread(s):\n"
                    + "\n".join(f"  {line}" for line in fresh))


def pytest_sessionfinish(session, exitstatus):
    """Gate the run on the dynamic checker and export the lock graph."""
    if not CHECKER.enabled:
        return
    out = os.environ.get("IRES_LOCK_GRAPH_OUT")
    if out:
        CHECKER.export_json(out)
    found = CHECKER.violations()
    if found:
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        lines = [f"  {v.kind}: {v.detail}" for v in found]
        message = (f"concurrency checker found {len(found)} violation(s):\n"
                   + "\n".join(lines))
        if reporter is not None:
            reporter.write_line(message, red=True)
        session.exitstatus = 1
