"""Tests for pickle-free model persistence (repro.models.serialize)."""

import numpy as np
import pytest

from repro.models import (
    Bagging,
    GaussianProcess,
    LeastMedianSquares,
    LinearRegression,
    MultilayerPerceptron,
    RBFNetwork,
    RandomSubspace,
    RegressionByDiscretization,
    RegressionTree,
)
from repro.models.serialize import SerializationError, load_model, save_model

ALL = [
    LinearRegression,
    LeastMedianSquares,
    GaussianProcess,
    lambda: MultilayerPerceptron(epochs=60),
    RBFNetwork,
    RegressionTree,
    Bagging,
    RandomSubspace,
    RegressionByDiscretization,
]


def data(seed=0, n=60):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3, 3, (n, 3))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] - X[:, 2] ** 2
    return X, y


@pytest.mark.parametrize("factory", ALL)
def test_roundtrip_predictions_identical(factory, tmp_path):
    X, y = data()
    model = factory().fit(X, y)
    path = tmp_path / "model.npz"
    save_model(model, path)
    loaded = load_model(path)
    assert type(loaded) is type(model)
    X_test = np.random.default_rng(1).uniform(-3, 3, (25, 3))
    np.testing.assert_allclose(loaded.predict(X_test), model.predict(X_test),
                               rtol=1e-10, atol=1e-12)


def test_unfitted_model_rejected(tmp_path):
    with pytest.raises(SerializationError):
        save_model(LinearRegression(), tmp_path / "m.npz")


def test_loaded_model_validates_feature_count(tmp_path):
    X, y = data()
    model = LinearRegression().fit(X, y)
    path = tmp_path / "m.npz"
    save_model(model, path)
    loaded = load_model(path)
    with pytest.raises(ValueError):
        loaded.predict(np.ones((2, 7)))


def test_gp_std_survives_roundtrip(tmp_path):
    X, y = data(n=30)
    gp = GaussianProcess().fit(X, y)
    path = tmp_path / "gp.npz"
    save_model(gp, path)
    loaded = load_model(path)
    probe = np.random.default_rng(2).uniform(-3, 3, (10, 3))
    np.testing.assert_allclose(loaded.predict_std(probe), gp.predict_std(probe),
                               rtol=1e-10)


def test_no_pickle_in_file(tmp_path):
    """The archive must load with allow_pickle=False (enforced by loader)."""
    X, y = data()
    save_model(Bagging(n_estimators=3).fit(X, y), tmp_path / "m.npz")
    with np.load(tmp_path / "m.npz", allow_pickle=False) as archive:
        assert "__class__" in archive.files
