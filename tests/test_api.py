"""Tests for the External API surface (repro.api.rest, §3.5)."""

import json

import pytest

from repro.api import IResServer
from repro.core import IReS
from repro.scenarios import setup_text_analytics


@pytest.fixture
def server():
    ires = IReS()
    setup_text_analytics(ires)
    srv = IResServer(ires)
    created = srv.handle("POST", "/datasets/webContent", {"properties": {
        "Constraints.Engine.FS": "*",
        "Constraints.type": "text",
        "Optimization.count": 25_000,
        "Optimization.size": 25_000_000,
    }})
    assert created.status == 201
    response = srv.handle("POST", "/abstractWorkflows/text", {
        "graph": ["webContent,tf_idf,0", "tf_idf,v,0",
                  "v,kmeans,0", "kmeans,c,0", "c,$$target"],
    })
    assert response.status == 201
    return srv


class TestRoot:
    def test_root_reports_up(self):
        response = IResServer().handle("GET", "/")
        assert response.status == 200
        assert response.body["service"] == "IReS"

    def test_unknown_resource_404(self):
        assert IResServer().handle("GET", "/nonsense").status == 404

    def test_response_json_serializable(self, server):
        response = server.handle("GET", "/engines")
        assert json.loads(response.json())


class TestWorkflows:
    def test_list_and_get(self, server):
        listing = server.handle("GET", "/abstractWorkflows")
        assert listing.body["workflows"] == ["text"]
        detail = server.handle("GET", "/abstractWorkflows/text")
        assert detail.status == 200
        assert detail.body["target"] == "c"
        assert "tf_idf" in detail.body["operators"]

    def test_get_missing_404(self, server):
        assert server.handle("GET", "/abstractWorkflows/none").status == 404

    def test_materialize_returns_plan(self, server):
        response = server.handle("POST", "/abstractWorkflows/text/materialize")
        assert response.status == 200
        plan = response.body["plan"]
        assert plan["cost"] > 0
        engines = {s["engine"] for s in plan["steps"] if not s["isMove"]}
        assert engines == {"scikit", "Spark"}  # the 25k-doc hybrid

    def test_execute_returns_report(self, server):
        response = server.handle("POST", "/abstractWorkflows/text/execute")
        assert response.status == 200
        report = response.body["report"]
        assert report["succeeded"] is True
        assert report["simTime"] > 0

    def test_post_requires_graph(self, server):
        response = server.handle("POST", "/abstractWorkflows/bad", {})
        assert response.status == 400

    def test_unknown_action_404(self, server):
        assert server.handle("POST", "/abstractWorkflows/text/fly").status == 404


class TestOperatorsAndDatasets:
    def test_operator_crud(self, server):
        created = server.handle("POST", "/operators/myop", {"properties": {
            "Constraints.OpSpecification.Algorithm.name": "myalg",
            "Constraints.Engine": "Spark",
        }})
        assert created.status == 201
        got = server.handle("GET", "/operators/myop")
        assert got.body["properties"]["Constraints.Engine"] == "Spark"
        listing = server.handle("GET", "/operators")
        assert "myop" in listing.body["operators"]
        deleted = server.handle("DELETE", "/operators/myop")
        assert deleted.status == 200
        assert server.handle("GET", "/operators/myop").status == 404

    def test_duplicate_operator_400(self, server):
        body = {"properties": {"Constraints.Engine": "Spark"}}
        assert server.handle("POST", "/operators/dup", body).status == 201
        assert server.handle("POST", "/operators/dup", body).status == 400

    def test_abstract_operator_listing(self, server):
        listing = server.handle("GET", "/abstractOperators")
        assert "tf_idf" in listing.body["abstractOperators"]

    def test_dataset_get(self, server):
        got = server.handle("GET", "/datasets/webContent")
        assert got.status == 200
        assert got.body["properties"]["Constraints.type"] == "text"
        assert server.handle("GET", "/datasets/none").status == 404


class TestEngines:
    def test_listing_and_health(self, server):
        listing = server.handle("GET", "/engines")
        assert listing.body["engines"]["Spark"]["status"] == "ON"
        health = server.handle("GET", "/engines/health")
        assert set(health.body["nodes"].values()) == {"HEALTHY"}
        assert "Spark" in health.body["availableEngines"]

    def test_stop_start_cycle(self, server):
        stop = server.handle("POST", "/engines/Spark/stop")
        assert stop.body["status"] == "OFF"
        health = server.handle("GET", "/engines/health")
        assert "Spark" not in health.body["availableEngines"]
        # planning now avoids Spark (conflict only if nothing remains)
        plan = server.handle("POST", "/abstractWorkflows/text/materialize")
        engines = {s["engine"] for s in plan.body["plan"]["steps"]
                   if not s["isMove"]}
        assert "Spark" not in engines
        start = server.handle("POST", "/engines/Spark/start")
        assert start.body["status"] == "ON"

    def test_unknown_engine_404(self, server):
        assert server.handle("POST", "/engines/Nope/stop").status == 404


class TestModels:
    def test_missing_model_404(self, server):
        assert server.handle("GET", "/models/TF_IDF/Spark").status == 404

    def test_model_info_after_execution(self, server):
        server.handle("POST", "/abstractWorkflows/text/execute")
        server.handle("POST", "/abstractWorkflows/text/execute")
        response = server.handle("GET", "/models/TF_IDF/scikit")
        assert response.status == 200
        assert response.body["samples"] >= 2


class TestErrorPaths:
    def test_materialize_with_no_engines_conflicts(self, server):
        for engine in list(server.ires.cloud.engines):
            server.ires.cloud.kill_engine(engine)
        try:
            response = server.handle(
                "POST", "/abstractWorkflows/text/materialize")
            assert response.status == 409
            assert "error" in response.body
        finally:
            for engine in list(server.ires.cloud.engines):
                server.ires.cloud.restart_engine(engine)

    def test_wrong_method_405(self, server):
        assert server.handle("DELETE", "/abstractWorkflows").status == 405
        assert server.handle("PUT", "/datasets/webContent").status == 405

    def test_models_requires_two_segments(self, server):
        assert server.handle("GET", "/models/onlyone").status == 400

    def test_bad_graph_line_400(self, server):
        response = server.handle("POST", "/abstractWorkflows/broken", {
            "graph": ["not-an-edge"]})
        assert response.status == 400


class TestResilience:
    def test_status_route(self, server):
        response = server.handle("GET", "/resilience")
        assert response.status == 200
        assert response.body["retryPolicy"]["maxAttempts"] >= 1
        assert "counters" in response.body
        assert json.loads(response.json())

    def test_status_reflects_chaos_execution(self, server):
        server.ires.fault_injector.make_flaky("Spark", 1.0)
        server.handle("POST", "/abstractWorkflows/text/execute")
        response = server.handle("GET", "/resilience")
        breakers = response.body["breakers"]
        assert breakers.get("Spark", {}).get("state") == "open"
        assert response.body["counters"]["retries"] >= 1

    def test_breaker_reset_route(self, server):
        server.ires.fault_injector.make_flaky("Spark", 1.0)
        server.handle("POST", "/abstractWorkflows/text/execute")
        response = server.handle("POST", "/resilience/breakers/Spark/reset")
        assert response.status == 200
        assert response.body["breaker"]["state"] == "closed"

    def test_reset_unknown_engine_404(self, server):
        assert server.handle(
            "POST", "/resilience/breakers/NoSuch/reset").status == 404

    def test_report_includes_retries(self, server):
        response = server.handle("POST", "/abstractWorkflows/text/execute")
        assert response.status == 200
        assert response.body["report"]["retries"] == 0


class TestObservabilityEndpoints:
    def test_metrics_prometheus_text(self, server):
        name = "obs_metrics_wf"
        server.handle("POST", f"/abstractWorkflows/{name}", {
            "graph": ["webContent,tf_idf,0", "tf_idf,v,0",
                      "v,kmeans,0", "kmeans,c,0", "c,$$target"],
        })
        executed = server.handle("POST", f"/abstractWorkflows/{name}/execute")
        assert executed.status == 200
        response = server.handle("GET", "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        assert response.text is not None
        assert "# TYPE ires_executor_steps_total counter" in response.text
        assert "ires_planner_plans_total" in response.text
        assert "ires_library_lookups_total" in response.text
        assert response.payload() == response.text

    def test_traces_listing_and_chrome_export(self, server):
        name = "obs_traces_wf"
        server.handle("POST", f"/abstractWorkflows/{name}", {
            "graph": ["webContent,tf_idf,0", "tf_idf,v,0",
                      "v,kmeans,0", "kmeans,c,0", "c,$$target"],
        })
        executed = server.handle("POST", f"/abstractWorkflows/{name}/execute")
        run_id = executed.body["report"]["runId"]
        listing = server.handle("GET", "/traces")
        assert listing.status == 200
        assert run_id in [r["runId"] for r in listing.body["runs"]]
        trace = server.handle("GET", f"/traces/{run_id}")
        assert trace.status == 200
        events = trace.body["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        assert complete
        assert all(e["args"]["run_id"] == run_id for e in complete)
        assert json.loads(trace.json())  # body survives serialization

    def test_unknown_trace_404(self, server):
        response = server.handle("GET", "/traces/deadbeef0000")
        assert response.status == 404

    def test_metrics_rejects_post(self, server):
        assert server.handle("POST", "/metrics").status == 405


class TestLint:
    def test_lint_clean_platform(self, server):
        response = server.handle("POST", "/lint")
        assert response.status == 200
        assert response.body["ok"] is True
        assert response.body["counts"]["error"] == 0
        assert json.loads(response.json())

    def test_lint_reports_unimplemented_operator(self, server):
        # register a workflow whose operator nothing implements
        created = server.handle("POST", "/abstractOperators/ghost", {
            "properties": {
                "Constraints.OpSpecification.Algorithm.name": "Ghost",
                "Constraints.Input.number": 1,
                "Constraints.Output.number": 1,
            }})
        assert created.status == 201
        response = server.handle("POST", "/lint")
        assert response.status == 200
        assert response.body["ok"] is False
        assert "IRES010" in response.body["codes"]

    def test_lint_strict_flag(self, server):
        response = server.handle("POST", "/lint", {"strict": True})
        assert response.status == 200
        assert response.body["strict"] is True

    def test_lint_scoped_to_workflow(self, server):
        response = server.handle("POST", "/lint", {"workflow": "text"})
        assert response.status == 200
        assert response.body["ok"] is True

    def test_lint_unknown_workflow_404(self, server):
        assert server.handle(
            "POST", "/lint", {"workflow": "nope"}).status == 404

    def test_lint_requires_post(self, server):
        assert server.handle("GET", "/lint").status == 405


class TestAccuracyEndpoint:
    @pytest.fixture
    def obs_server(self):
        from repro.obs.accuracy import AccuracyLedger
        from repro.obs.drift import DriftDetector

        ires = IReS(ledger=AccuracyLedger(),
                    drift=DriftDetector(threshold=1e-9, min_samples=1,
                                        cooldown=0, refit=False),
                    record_provenance=True)
        setup_text_analytics(ires)
        srv = IResServer(ires)
        assert srv.handle("POST", "/datasets/webContent", {"properties": {
            "Constraints.Engine.FS": "*",
            "Constraints.type": "text",
            "Optimization.count": 25_000,
            "Optimization.size": 25_000_000,
        }}).status == 201
        assert srv.handle("POST", "/abstractWorkflows/text", {
            "graph": ["webContent,tf_idf,0", "tf_idf,v,0",
                      "v,kmeans,0", "kmeans,c,0", "c,$$target"],
        }).status == 201
        return srv

    def test_disabled_ledger_404(self, server):
        response = server.handle("GET", "/accuracy")
        assert response.status == 404
        assert "accuracy ledger disabled" in response.body["error"]

    def test_rejects_post(self, obs_server):
        assert obs_server.handle("POST", "/accuracy").status == 405

    def test_report_after_execution(self, obs_server):
        assert obs_server.handle(
            "POST", "/abstractWorkflows/text/execute").status == 200
        response = obs_server.handle("GET", "/accuracy")
        assert response.status == 200
        assert response.body["entries"] > 0
        pairs = {(p["operator"], p["engine"]): p
                 for p in response.body["pairs"]}
        assert any(op == "TF_IDF" for op, _ in pairs)
        for pair in pairs.values():
            assert pair["samples"] >= 1 and pair["mape"] >= 0.0
        # threshold 1e-9 with cooldown 0: every step raised a drift alarm
        assert len(response.body["alarms"]) > 0
        assert response.body["alarms"][0]["ewmaError"] > 0.0
        assert json.loads(response.json())


class TestExplainEndpoint:
    def test_runs_listing_empty_without_provenance(self, server):
        server.handle("POST", "/abstractWorkflows/text/execute")
        response = server.handle("GET", "/explain")
        assert response.status == 200
        assert response.body == {"runs": []}

    def test_explain_report_for_run(self, server):
        server.ires.planner.record_provenance = True
        report = server.handle(
            "POST", "/abstractWorkflows/text/execute").body["report"]
        run_id = report["runId"]
        listing = server.handle("GET", "/explain")
        assert run_id in listing.body["runs"]
        response = server.handle("GET", f"/explain/{run_id}")
        assert response.status == 200
        assert response.body["run_id"] == run_id
        (plan,) = response.body["plans"]
        chosen = [s["chosen"] for s in plan["steps"] if s["chosen"]]
        assert chosen and all(c["chosen"] is True for c in chosen)
        assert json.loads(response.json())

    def test_unknown_run_404(self, server):
        response = server.handle("GET", "/explain/nope")
        assert response.status == 404
        assert "no provenance" in response.body["error"]

    def test_rejects_post(self, server):
        assert server.handle("POST", "/explain").status == 405
