"""Tests for the transient-fault resilience layer (repro.execution.resilience)."""

import pytest

from repro.core import IReS
from repro.engines.errors import (
    EngineError,
    StepTimeoutError,
    TransientEngineError,
)
from repro.execution import ResilienceManager, RetryPolicy
from repro.execution.enforcer import ExecutionFailed
from repro.execution.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.scenarios import setup_graph_analytics, setup_helloworld


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff=2.0, backoff_factor=2.0, jitter=0.0)
        assert policy.backoff_seconds(1) == 2.0
        assert policy.backoff_seconds(2) == 4.0
        assert policy.backoff_seconds(3) == 8.0

    def test_backoff_capped(self):
        policy = RetryPolicy(base_backoff=10.0, backoff_factor=10.0,
                             max_backoff=25.0, jitter=0.0)
        assert policy.backoff_seconds(5) == 25.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff=10.0, jitter=0.25)
        a = policy.backoff_seconds(1, salt="op@Spark")
        b = policy.backoff_seconds(1, salt="op@Spark")
        assert a == b  # same (attempt, salt) -> same jitter
        assert a != policy.backoff_seconds(1, salt="op@Hive")
        assert 7.5 <= a <= 12.5

    def test_single_attempt_disables_retries(self):
        assert not RetryPolicy(max_attempts=1).retries_enabled
        assert RetryPolicy(max_attempts=2).retries_enabled


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("Spark", failure_threshold=3)
        for _ in range(2):
            breaker.record_failure(now=0.0)
        assert breaker.state == CLOSED
        breaker.record_failure(now=1.0)
        assert breaker.state == OPEN
        assert not breaker.allow(now=1.5)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("Spark", failure_threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success(now=0.5)
        breaker.record_failure(now=1.0)
        assert breaker.state == CLOSED

    def test_half_opens_after_recovery_timeout(self):
        breaker = CircuitBreaker("Spark", failure_threshold=1,
                                 recovery_timeout=100.0)
        breaker.record_failure(now=0.0)
        assert not breaker.allow(now=50.0)
        assert breaker.allow(now=100.0)  # probe admitted
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker("Spark", failure_threshold=1,
                                 recovery_timeout=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=20.0)
        breaker.record_success(now=21.0)
        assert breaker.state == CLOSED

    def test_probe_failure_reopens_and_restarts_recovery(self):
        breaker = CircuitBreaker("Spark", failure_threshold=1,
                                 recovery_timeout=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=20.0)
        breaker.record_failure(now=21.0)
        assert breaker.state == OPEN
        assert not breaker.allow(now=25.0)  # recovery clock restarted at 21
        assert breaker.allow(now=31.0)

    def test_transitions_are_recorded(self):
        breaker = CircuitBreaker("Hive", failure_threshold=1,
                                 recovery_timeout=5.0)
        breaker.record_failure(now=0.0)
        breaker.allow(now=6.0)
        breaker.record_success(now=7.0)
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]


class TestExecutorRetries:
    def test_transient_faults_absorbed_without_replanning(self):
        """A flaky engine is retried in place; no replan, clock charged."""
        ires = IReS()
        make = setup_helloworld(ires)
        ires.fault_injector.seed = 3
        ires.fault_injector.make_all_flaky(0.3)
        report = ires.execute(make())
        assert report.succeeded
        assert report.retries >= 1
        assert report.replans == 0
        # the failed attempts and their backoffs are on the simulated clock
        failed = [e for e in report.executions if not e.success]
        assert failed and all(e.sim_seconds > 0 for e in failed)
        assert ires.cloud.collector.resilience_events("retry")

    def test_retries_charge_more_sim_time_than_fault_free(self):
        def run(rate):
            ires = IReS()
            make = setup_helloworld(ires)
            ires.fault_injector.seed = 3
            if rate:
                ires.fault_injector.make_all_flaky(rate)
            return ires.execute(make())

        assert run(0.3).sim_time > run(0.0).sim_time

    def test_chaos_runs_are_reproducible(self):
        def run():
            ires = IReS()
            make = setup_helloworld(ires)
            ires.fault_injector.seed = 7
            ires.fault_injector.make_all_flaky(0.25)
            return ires.execute(make())

        a, b = run(), run()
        assert a.sim_time == b.sim_time
        assert a.retries == b.retries

    def test_permanently_sick_engine_opens_breaker_and_replans(self):
        """fail_rate=1: bounded retries, breaker opens, plan routes around."""
        ires = IReS()
        make = setup_helloworld(ires)
        victim = ires.plan(make()).step_for_operator("HelloWorld2").engine
        ires.fault_injector.make_flaky(victim, 1.0)
        report = ires.execute(make())
        assert report.succeeded
        assert report.retries == ires.resilience.retry_policy.max_attempts - 1
        assert report.replans == 1
        assert ires.resilience.breaker(victim).state == OPEN
        assert victim not in report.engines_used()
        assert ires.cloud.collector.resilience_events("breaker_open")

    def test_killed_engine_not_retried(self):
        """Permanent kills keep the pre-resilience semantics exactly."""
        ires = IReS()
        make = setup_helloworld(ires)
        victim = ires.plan(make()).step_for_operator("HelloWorld2").engine
        ires.fault_injector.kill_engine_at(victim, trigger_operator="HelloWorld2")
        report = ires.execute(make())
        assert report.succeeded
        assert report.retries == 0
        assert report.replans == 1

    def test_baseline_manager_disables_retries(self):
        ires = IReS(resilience=ResilienceManager.baseline())
        make = setup_helloworld(ires)
        ires.fault_injector.seed = 3
        ires.fault_injector.make_all_flaky(0.3)
        report = ires.execute(make())
        assert report.retries == 0
        assert report.replans >= 1

    def test_resilient_fewer_replans_than_baseline(self):
        """The acceptance shape: retries convert replans into local retries."""
        def total_replans(resilience):
            replans = 0
            for seed in range(3):
                ires = IReS(resilience=resilience() if resilience else None)
                make = setup_helloworld(ires)
                ires.fault_injector.seed = seed
                ires.fault_injector.make_all_flaky(0.3)
                replans += ires.execute(make()).replans
            return replans

        assert total_replans(None) < total_replans(ResilienceManager.baseline)

    def test_replanning_exhaustion_under_chaos(self):
        """max_replans=0 with no retries -> first failure is fatal."""
        ires = IReS(resilience=ResilienceManager.baseline())
        ires.executor.max_replans = 0
        make = setup_helloworld(ires)
        ires.fault_injector.seed = 3
        ires.fault_injector.make_all_flaky(0.9)
        with pytest.raises(ExecutionFailed):
            ires.execute(make())


class TestTimeouts:
    def test_straggler_hits_step_timeout_and_recovers(self):
        """A 10× straggler breaches timeout_factor; retries still finish."""
        ires = IReS(resilience=ResilienceManager(timeout_factor=3.0))
        make = setup_helloworld(ires)
        victim = ires.plan(make()).step_for_operator("HelloWorld2").engine
        ires.fault_injector.make_straggler(victim, slowdown=10.0,
                                           straggler_rate=1.0)
        report = ires.execute(make())
        assert report.succeeded
        timeouts = [e for e in report.executions
                    if not e.success and "deadline" in (e.error or "")]
        assert timeouts
        # the timed-out attempts were charged at the deadline, not for free
        assert all(e.sim_seconds > 0 for e in timeouts)

    def test_timeout_for_combines_absolute_and_relative(self):
        manager = ResilienceManager(step_timeout=50.0, timeout_factor=3.0)
        assert manager.timeout_for(10.0) == 30.0  # relative binds
        assert manager.timeout_for(100.0) == 50.0  # absolute binds
        assert ResilienceManager().timeout_for(10.0) is None

    def test_step_timeout_error_is_transient(self):
        assert issubclass(StepTimeoutError, TransientEngineError)
        assert issubclass(TransientEngineError, EngineError)


class TestFaultInjector:
    def test_outcomes_are_seeded_per_engine(self):
        ires = IReS()
        ires.fault_injector.seed = 5
        ires.fault_injector.make_flaky("Spark", 0.5)
        draws = [ires.fault_injector.transient_outcome("Spark").fails
                 for _ in range(20)]
        ires2 = IReS()
        ires2.fault_injector.seed = 5
        ires2.fault_injector.make_flaky("Spark", 0.5)
        assert draws == [ires2.fault_injector.transient_outcome("Spark").fails
                         for _ in range(20)]
        assert any(draws) and not all(draws)

    def test_unconfigured_engine_is_nominal(self):
        ires = IReS()
        outcome = ires.fault_injector.transient_outcome("Spark")
        assert outcome.nominal

    def test_profile_validation(self):
        ires = IReS()
        with pytest.raises(ValueError):
            ires.fault_injector.make_flaky("Spark", 1.5)
        with pytest.raises(ValueError):
            ires.fault_injector.make_straggler("Spark", 0.5)

    def test_clear_transients(self):
        ires = IReS()
        ires.fault_injector.make_flaky("Spark", 1.0)
        ires.fault_injector.clear_transients("Spark")
        assert ires.fault_injector.transient_outcome("Spark").nominal

    def test_reset_round_trip_restores_original_plan(self):
        """kill -> replan -> reset -> the original optimal plan comes back."""
        ires = IReS()
        make = setup_helloworld(ires)
        original = [s.engine for s in ires.plan(make()).steps]
        victim = ires.plan(make()).step_for_operator("HelloWorld2").engine
        ires.fault_injector.kill_engine_at(victim, trigger_operator="HelloWorld2")
        report = ires.execute(make())
        assert report.replans == 1
        degraded = [s.engine for s in ires.plan(make()).steps]
        assert victim not in degraded
        ires.fault_injector.reset()
        assert victim in ires.cloud.available_engines()
        assert [s.engine for s in ires.plan(make()).steps] == original


class TestBreakerRecovery:
    def test_half_open_probe_rediscovers_recovered_engine(self):
        """After recovery_timeout of sim time, the engine is probed again."""
        manager = ResilienceManager(recovery_timeout=10.0)
        ires = IReS(resilience=manager)
        make = setup_graph_analytics(ires)
        ires.fault_injector.make_flaky("Java", 1.0)  # Java: fastest pagerank
        report = ires.execute(make(1e6))
        assert report.succeeded
        assert manager.breaker("Java").state == OPEN
        # the engine recovers; enough simulated time passes for a probe
        ires.fault_injector.clear_transients("Java")
        ires.cloud.clock.advance(manager.recovery_timeout)
        report2 = ires.execute(make(1e6))
        assert report2.succeeded
        assert "Java" in report2.engines_used()
        assert manager.breaker("Java").state == CLOSED

    def test_breaker_override_when_no_alternative_exists(self):
        """All capable engines sick: planning forces half-open probes."""
        manager = ResilienceManager()
        ires = IReS(resilience=manager)
        make = setup_graph_analytics(ires)
        for engine in ("Java", "Hama", "Spark"):
            ires.fault_injector.make_flaky(engine, 1.0)
        with pytest.raises(ExecutionFailed):
            ires.execute(make(1e6))
        assert manager.breaker_overrides >= 1

    def test_reset_breaker_closes_it(self):
        manager = ResilienceManager()
        breaker = manager.breaker("Hive")
        for _ in range(manager.failure_threshold):
            breaker.record_failure(now=1.0)
        assert breaker.state == OPEN
        manager.reset_breaker("Hive", now=2.0)
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0


class TestStatus:
    def test_status_is_json_serializable(self):
        import json

        ires = IReS()
        make = setup_helloworld(ires)
        ires.fault_injector.make_flaky("Spark", 1.0)
        ires.execute(make())
        status = ires.resilience.status()
        parsed = json.loads(json.dumps(status))
        assert parsed["counters"]["retries"] == ires.resilience.retries
        assert "Spark" in parsed["breakers"]
