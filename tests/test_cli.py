"""Tests for the ires command-line interface (repro.cli)."""

import pytest

from repro.cli import main


@pytest.fixture
def library_dir(tmp_path):
    root = tmp_path / "asapLibrary"
    (root / "datasets").mkdir(parents=True)
    (root / "datasets" / "logs").write_text(
        "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
        "Optimization.size=5E09\n")
    for engine, t, c in (("Spark", 6.0, 20.0), ("Python", 12.0, 4.0)):
        op_dir = root / "operators" / f"count_{engine.lower()}"
        op_dir.mkdir(parents=True)
        (op_dir / "description").write_text(
            f"Constraints.Engine={engine}\n"
            "Constraints.Input.number=1\n"
            "Constraints.Output.number=1\n"
            "Constraints.Input0.Engine.FS=HDFS\n"
            "Constraints.Input0.type=text\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n"
        )
    (root / "abstractOperators").mkdir()
    (root / "abstractOperators" / "LineCount").write_text(
        "Constraints.Input.number=1\nConstraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n")
    wf = root / "abstractWorkflows" / "CountWorkflow"
    wf.mkdir(parents=True)
    (wf / "graph").write_text("logs,LineCount,0\nLineCount,d1,0\nd1,$$target\n")
    return str(root)


def test_validate(library_dir, capsys):
    assert main(["validate", library_dir]) == 0
    out = capsys.readouterr().out
    assert "library OK" in out
    assert "CountWorkflow" in out


def test_engines(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "Spark" in out and "PostgreSQL" in out


def test_plan(library_dir, capsys):
    assert main(["plan", library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "optimal plan" in out
    assert "count_" in out


def test_execute(library_dir, capsys):
    assert main(["execute", library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "succeeded=True" in out


def test_frontier(library_dir, capsys):
    assert main(["frontier", library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "Pareto-optimal plans" in out
    # both implementations are trade-offs -> two frontier points
    assert out.count("time=") == 2


def test_unknown_workflow_exits(library_dir):
    with pytest.raises(SystemExit):
        main(["plan", library_dir, "NoSuchWorkflow"])


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_sql_optimize_and_execute(capsys):
    query = ("SELECT * FROM customer, orders "
             "WHERE c_custkey = o_custkey AND o_totalprice > 400000")
    assert main(["sql", query, "--execute"]) == 0
    out = capsys.readouterr().out
    assert "optimized in" in out
    assert "result:" in out


def test_sql_plan_only(capsys):
    assert main(["sql", "SELECT * FROM region, nation "
                 "WHERE r_regionkey = n_regionkey"]) == 0
    out = capsys.readouterr().out
    assert "SQL@" in out
    assert "result:" not in out


def test_report_aggregates_results(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig1.txt").write_text("== Figure 1 ==\n 1 2 3\n")
    out = tmp_path / "RESULTS.md"
    assert main(["report", "--results", str(results), "--out", str(out)]) == 0
    text = out.read_text()
    assert "## fig1" in text and "Figure 1" in text


def test_report_without_results_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", "--results", str(tmp_path / "none"),
              "--out", str(tmp_path / "r.md")])


def test_execute_with_chaos_flags(library_dir, capsys):
    assert main(["execute", library_dir, "CountWorkflow",
                 "--fail-rate", "0.3", "--chaos-seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "chaos: fail_rate=0.3" in out
    assert "resilience:" in out


def test_execute_without_resilience(library_dir, capsys):
    assert main(["execute", library_dir, "CountWorkflow",
                 "--no-resilience"]) == 0
    out = capsys.readouterr().out
    assert "retries=0" in out


def test_execute_with_trace(library_dir, tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.json"
    assert main(["execute", library_dir, "CountWorkflow",
                 "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "trace: wrote" in out
    payload = json.loads(trace_path.read_text())
    events = payload["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    # planner + executor spans all stamped with one run id
    categories = {e["cat"] for e in complete}
    assert {"planner", "executor"} <= categories
    run_ids = {e["args"]["run_id"] for e in complete
               if e["args"].get("run_id")}
    assert len(run_ids) == 1


def test_trace_summarize(library_dir, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    main(["execute", library_dir, "CountWorkflow", "--trace", str(trace_path)])
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "planner" in out and "executor" in out
    assert "critical path" in out


def test_trace_summarize_missing_file_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "summarize", str(tmp_path / "nope.json")])


@pytest.fixture
def broken_library_dir(library_dir, tmp_path):
    """The library fixture with one unparseable dataset added."""
    from pathlib import Path

    (Path(library_dir) / "datasets" / "broken").write_text("no equals sign\n")
    return library_dir


def test_validate_reports_invalid_library(broken_library_dir, capsys):
    assert main(["validate", broken_library_dir]) == 1
    out = capsys.readouterr().out
    assert "IRES001" in out
    assert "library INVALID" in out


def test_plan_warns_on_skipped_artifacts(broken_library_dir, capsys):
    assert main(["plan", broken_library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "skipped 1 malformed artefact(s)" in out
    assert "optimal plan" in out  # planning proceeds on the healthy rest


def test_lint_clean_library(library_dir, capsys):
    assert main(["lint", library_dir]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s), 0 info" in out
    assert "lint OK" in out


def test_lint_broken_library_text_and_json(broken_library_dir, capsys):
    import json

    assert main(["lint", broken_library_dir]) == 1
    text = capsys.readouterr().out
    assert "IRES001" in text and "lint FAILED" in text
    assert main(["lint", broken_library_dir, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert "IRES001" in payload["codes"]


def test_lint_strict_flag(library_dir, capsys):
    from pathlib import Path

    # a duplicate key is only a warning: default passes, --strict fails
    (Path(library_dir) / "datasets" / "logs").write_text(
        "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
        "Constraints.type=text\nOptimization.size=5E09\n")
    assert main(["lint", library_dir]) == 0
    capsys.readouterr()
    assert main(["lint", library_dir, "--strict"]) == 1


def test_lint_unknown_workflow_exits(library_dir):
    with pytest.raises(SystemExit):
        main(["lint", library_dir, "--workflow", "NoSuchWorkflow"])


def test_trace_summarize_empty_file_one_line_error(tmp_path, capsys):
    trace_path = tmp_path / "empty.json"
    trace_path.write_text("")
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "summarize", str(trace_path)])
    message = str(excinfo.value)
    assert "cannot load trace" in message and "empty" in message
    assert "\n" not in message  # a single line, not a traceback dump


def test_trace_summarize_truncated_file_one_line_error(
        library_dir, tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    from repro.obs.tracing import Tracer

    tracer = Tracer()
    with tracer.span("a"):
        pass
    tracer.export_jsonl(trace_path)
    trace_path.write_text(trace_path.read_text() + '{"name": "b", "start')
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "summarize", str(trace_path)])
    message = str(excinfo.value)
    assert "cannot load trace" in message
    assert "line 2" in message and "truncated" in message
    assert "\n" not in message


@pytest.fixture
def ledger_file(library_dir, tmp_path, capsys):
    """A ledger JSONL written by ``ires execute --ledger``."""
    path = tmp_path / "ledger.jsonl"
    assert main(["execute", library_dir, "CountWorkflow",
                 "--ledger", str(path)]) == 0
    capsys.readouterr()
    return str(path)


def test_execute_with_ledger(library_dir, tmp_path, capsys):
    import json

    path = tmp_path / "ledger.jsonl"
    assert main(["execute", library_dir, "CountWorkflow",
                 "--ledger", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"ledger: 1 entries -> {path}" in out
    assert "driftAlarms=0" in out
    (line,) = path.read_text().splitlines()
    entry = json.loads(line)
    assert entry["operator"] == "LineCount"
    assert entry["predicted"]["execTime"] > 0
    assert entry["actual"]["execTime"] > 0


def test_accuracy_report_text(ledger_file, capsys):
    assert main(["accuracy", "report", ledger_file]) == 0
    out = capsys.readouterr().out
    assert "1 ledger entries" in out
    assert "MAPE" in out and "LineCount" in out


def test_accuracy_report_json(ledger_file, capsys):
    import json

    assert main(["accuracy", "report", ledger_file,
                 "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["enabled"] is True and report["entries"] == 1
    (pair,) = report["pairs"]
    assert pair["operator"] == "LineCount" and pair["samples"] == 1
    assert pair["trend"]


def test_accuracy_report_html(ledger_file, tmp_path, capsys):
    html_path = tmp_path / "report.html"
    assert main(["accuracy", "report", ledger_file,
                 "--html", str(html_path)]) == 0
    assert f"wrote {html_path}" in capsys.readouterr().out
    html = html_path.read_text()
    assert "<svg" in html and "LineCount" in html


def test_accuracy_report_missing_ledger_exits(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["accuracy", "report", str(tmp_path / "nope.jsonl")])
    assert "cannot load ledger" in str(excinfo.value)


def test_accuracy_report_corrupt_ledger_exits(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"run_id": "r", "workflow":\n')
    with pytest.raises(SystemExit) as excinfo:
        main(["accuracy", "report", str(path)])
    message = str(excinfo.value)
    assert "cannot load ledger" in message and "line 1" in message


def test_explain_text(library_dir, capsys):
    assert main(["explain", library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "workflow CountWorkflow" in out
    assert "chosen" in out and "rejected" in out
    assert "count_spark" in out and "count_python" in out


def test_explain_json(library_dir, capsys):
    import json

    assert main(["explain", library_dir, "CountWorkflow",
                 "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["workflow"] == "CountWorkflow"
    steps = [s for s in report["steps"] if s["abstract"] == "LineCount"]
    assert steps and steps[0]["chosen"]["chosen"] is True
    best = steps[0]["bestRejected"]
    assert best is not None
    assert steps[0]["costDelta"] == pytest.approx(
        best["totalCost"] - steps[0]["chosen"]["totalCost"])


def test_explain_with_ledger_annotation(library_dir, ledger_file, capsys):
    import json

    assert main(["explain", library_dir, "CountWorkflow",
                 "--format", "json", "--ledger", ledger_file]) == 0
    report = json.loads(capsys.readouterr().out)
    (step,) = [s for s in report["steps"] if s["abstract"] == "LineCount"]
    error = step["chosen"]["modelError"]
    assert error is not None and error["samples"] == 1


def test_explain_bad_ledger_exits(library_dir, tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(SystemExit) as excinfo:
        main(["explain", library_dir, "CountWorkflow", "--ledger", str(path)])
    assert "cannot load ledger" in str(excinfo.value)


def test_explain_unknown_workflow_exits(library_dir):
    with pytest.raises(SystemExit):
        main(["explain", library_dir, "NoSuchWorkflow"])


# -- journaling, crash recovery and the runs commands ------------------------

def _journaled_run_id(library_dir, journal_dir, capsys) -> str:
    assert main(["execute", library_dir, "CountWorkflow",
                 "--journal-dir", str(journal_dir)]) == 0
    out = capsys.readouterr().out
    (run_id,) = [token.split("runId=")[1] for token in out.splitlines()
                 if "runId=" in token]
    return run_id


def test_execute_journal_dir_writes_journal(library_dir, tmp_path, capsys):
    journal_dir = tmp_path / "journals"
    run_id = _journaled_run_id(library_dir, journal_dir, capsys)
    assert (journal_dir / f"{run_id}.jsonl").exists()


def test_runs_list_and_status_from_journals(library_dir, tmp_path, capsys):
    import json

    journal_dir = tmp_path / "journals"
    run_id = _journaled_run_id(library_dir, journal_dir, capsys)
    assert main(["runs", "list", "--journal-dir", str(journal_dir)]) == 0
    out = capsys.readouterr().out
    assert run_id in out and "succeeded" in out
    assert main(["runs", "status", run_id,
                 "--journal-dir", str(journal_dir)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["state"] == "succeeded"
    assert payload["workflow"] == "CountWorkflow"


def test_runs_list_without_source_exits():
    with pytest.raises(SystemExit, match="journal-dir"):
        main(["runs", "list"])


def test_runs_status_unknown_run_exits(tmp_path):
    (tmp_path / "journals").mkdir()
    with pytest.raises(SystemExit, match="no journal"):
        main(["runs", "status", "deadbeef",
              "--journal-dir", str(tmp_path / "journals")])


def test_runs_recover_resumes_interrupted_run(library_dir, tmp_path, capsys):
    import json

    journal_dir = tmp_path / "journals"
    run_id = _journaled_run_id(library_dir, journal_dir, capsys)
    # cut the journal after its first finished step: an interrupted run
    path = journal_dir / f"{run_id}.jsonl"
    kept = []
    for line in path.read_text().splitlines():
        kept.append(line)
        if json.loads(line).get("kind") == "step_finished":
            break
    path.write_text("\n".join(kept) + "\n")
    assert main(["runs", "list", "--journal-dir", str(journal_dir)]) == 0
    assert "interrupted" in capsys.readouterr().out
    assert main(["runs", "recover", library_dir, run_id,
                 "--journal-dir", str(journal_dir)]) == 0
    out = capsys.readouterr().out
    assert "recoveredSteps=1" in out
    assert "executedSteps=0" in out  # nothing journaled-finished ran again


def test_runs_recover_missing_journal_exits(library_dir, tmp_path):
    with pytest.raises(SystemExit, match="no journal"):
        main(["runs", "recover", library_dir, "deadbeef",
              "--journal-dir", str(tmp_path)])


def test_execute_crash_after_step_requires_journal_dir(library_dir):
    with pytest.raises(SystemExit, match="journal-dir"):
        main(["execute", library_dir, "CountWorkflow",
              "--crash-after-step", "1"])


def test_execute_sigint_prints_recover_hint(library_dir, tmp_path, capsys,
                                            monkeypatch):
    from repro.core.platform import IReS

    def interrupt(self, workflow, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(IReS, "execute", interrupt)
    journal_dir = tmp_path / "journals"
    code = main(["execute", library_dir, "CountWorkflow",
                 "--journal-dir", str(journal_dir)])
    assert code == 130
    out = capsys.readouterr().out
    assert "interrupted: run" in out
    assert "ires runs recover" in out
    assert str(journal_dir) in out


def test_execute_failed_run_exits_nonzero(library_dir, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["execute", library_dir, "CountWorkflow",
              "--fail-rate", "1.0", "--chaos-seed", "3"])
    assert excinfo.value.code != 0


def test_timeline_from_journal(library_dir, tmp_path, capsys):
    journal_dir = tmp_path / "journals"
    run_id = _journaled_run_id(library_dir, journal_dir, capsys)
    assert main(["timeline", run_id, "--journal-dir", str(journal_dir)]) == 0
    out = capsys.readouterr().out
    assert f"run {run_id}:" in out
    assert "journal" in out
    assert "run_finished" in out or "run_admitted" in out


def test_timeline_json_from_journal(library_dir, tmp_path, capsys):
    import json

    journal_dir = tmp_path / "journals"
    run_id = _journaled_run_id(library_dir, journal_dir, capsys)
    assert main(["timeline", run_id, "--journal-dir", str(journal_dir),
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runId"] == run_id
    assert payload["sources"] == ["journal"]
    assert payload["events"]


def test_timeline_without_source_exits():
    with pytest.raises(SystemExit, match="journal-dir"):
        main(["timeline", "deadbeef"])


def test_timeline_unknown_run_exits(tmp_path):
    with pytest.raises(SystemExit, match="no journal"):
        main(["timeline", "deadbeef", "--journal-dir", str(tmp_path)])


def test_serve_rejects_bad_slo_config(library_dir, tmp_path):
    bad = tmp_path / "slo.json"
    bad.write_text("{\"slos\": []}")
    with pytest.raises(SystemExit, match="SLO config"):
        main(["serve", library_dir, "--port", "0",
              "--slo-config", str(bad)])
