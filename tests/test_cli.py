"""Tests for the ires command-line interface (repro.cli)."""

import pytest

from repro.cli import main


@pytest.fixture
def library_dir(tmp_path):
    root = tmp_path / "asapLibrary"
    (root / "datasets").mkdir(parents=True)
    (root / "datasets" / "logs").write_text(
        "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
        "Optimization.size=5E09\n")
    for engine, t, c in (("Spark", 6.0, 20.0), ("Python", 12.0, 4.0)):
        op_dir = root / "operators" / f"count_{engine.lower()}"
        op_dir.mkdir(parents=True)
        (op_dir / "description").write_text(
            f"Constraints.Engine={engine}\n"
            "Constraints.Input.number=1\n"
            "Constraints.Output.number=1\n"
            "Constraints.Input0.Engine.FS=HDFS\n"
            "Constraints.Input0.type=text\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n"
        )
    (root / "abstractOperators").mkdir()
    (root / "abstractOperators" / "LineCount").write_text(
        "Constraints.Input.number=1\nConstraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n")
    wf = root / "abstractWorkflows" / "CountWorkflow"
    wf.mkdir(parents=True)
    (wf / "graph").write_text("logs,LineCount,0\nLineCount,d1,0\nd1,$$target\n")
    return str(root)


def test_validate(library_dir, capsys):
    assert main(["validate", library_dir]) == 0
    out = capsys.readouterr().out
    assert "library OK" in out
    assert "CountWorkflow" in out


def test_engines(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "Spark" in out and "PostgreSQL" in out


def test_plan(library_dir, capsys):
    assert main(["plan", library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "optimal plan" in out
    assert "count_" in out


def test_execute(library_dir, capsys):
    assert main(["execute", library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "succeeded=True" in out


def test_frontier(library_dir, capsys):
    assert main(["frontier", library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "Pareto-optimal plans" in out
    # both implementations are trade-offs -> two frontier points
    assert out.count("time=") == 2


def test_unknown_workflow_exits(library_dir):
    with pytest.raises(SystemExit):
        main(["plan", library_dir, "NoSuchWorkflow"])


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_sql_optimize_and_execute(capsys):
    query = ("SELECT * FROM customer, orders "
             "WHERE c_custkey = o_custkey AND o_totalprice > 400000")
    assert main(["sql", query, "--execute"]) == 0
    out = capsys.readouterr().out
    assert "optimized in" in out
    assert "result:" in out


def test_sql_plan_only(capsys):
    assert main(["sql", "SELECT * FROM region, nation "
                 "WHERE r_regionkey = n_regionkey"]) == 0
    out = capsys.readouterr().out
    assert "SQL@" in out
    assert "result:" not in out


def test_report_aggregates_results(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig1.txt").write_text("== Figure 1 ==\n 1 2 3\n")
    out = tmp_path / "RESULTS.md"
    assert main(["report", "--results", str(results), "--out", str(out)]) == 0
    text = out.read_text()
    assert "## fig1" in text and "Figure 1" in text


def test_report_without_results_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", "--results", str(tmp_path / "none"),
              "--out", str(tmp_path / "r.md")])


def test_execute_with_chaos_flags(library_dir, capsys):
    assert main(["execute", library_dir, "CountWorkflow",
                 "--fail-rate", "0.3", "--chaos-seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "chaos: fail_rate=0.3" in out
    assert "resilience:" in out


def test_execute_without_resilience(library_dir, capsys):
    assert main(["execute", library_dir, "CountWorkflow",
                 "--no-resilience"]) == 0
    out = capsys.readouterr().out
    assert "retries=0" in out


def test_execute_with_trace(library_dir, tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.json"
    assert main(["execute", library_dir, "CountWorkflow",
                 "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "trace: wrote" in out
    payload = json.loads(trace_path.read_text())
    events = payload["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    # planner + executor spans all stamped with one run id
    categories = {e["cat"] for e in complete}
    assert {"planner", "executor"} <= categories
    run_ids = {e["args"]["run_id"] for e in complete
               if e["args"].get("run_id")}
    assert len(run_ids) == 1


def test_trace_summarize(library_dir, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    main(["execute", library_dir, "CountWorkflow", "--trace", str(trace_path)])
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "planner" in out and "executor" in out
    assert "critical path" in out


def test_trace_summarize_missing_file_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "summarize", str(tmp_path / "nope.json")])


@pytest.fixture
def broken_library_dir(library_dir, tmp_path):
    """The library fixture with one unparseable dataset added."""
    from pathlib import Path

    (Path(library_dir) / "datasets" / "broken").write_text("no equals sign\n")
    return library_dir


def test_validate_reports_invalid_library(broken_library_dir, capsys):
    assert main(["validate", broken_library_dir]) == 1
    out = capsys.readouterr().out
    assert "IRES001" in out
    assert "library INVALID" in out


def test_plan_warns_on_skipped_artifacts(broken_library_dir, capsys):
    assert main(["plan", broken_library_dir, "CountWorkflow"]) == 0
    out = capsys.readouterr().out
    assert "skipped 1 malformed artefact(s)" in out
    assert "optimal plan" in out  # planning proceeds on the healthy rest


def test_lint_clean_library(library_dir, capsys):
    assert main(["lint", library_dir]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s), 0 info" in out
    assert "lint OK" in out


def test_lint_broken_library_text_and_json(broken_library_dir, capsys):
    import json

    assert main(["lint", broken_library_dir]) == 1
    text = capsys.readouterr().out
    assert "IRES001" in text and "lint FAILED" in text
    assert main(["lint", broken_library_dir, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert "IRES001" in payload["codes"]


def test_lint_strict_flag(library_dir, capsys):
    from pathlib import Path

    # a duplicate key is only a warning: default passes, --strict fails
    (Path(library_dir) / "datasets" / "logs").write_text(
        "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
        "Constraints.type=text\nOptimization.size=5E09\n")
    assert main(["lint", library_dir]) == 0
    capsys.readouterr()
    assert main(["lint", library_dir, "--strict"]) == 1


def test_lint_unknown_workflow_exits(library_dir):
    with pytest.raises(SystemExit):
        main(["lint", library_dir, "--workflow", "NoSuchWorkflow"])
