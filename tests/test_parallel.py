"""Tests for the discrete-event parallel plan simulator (repro.execution.parallel)."""

import pytest

from repro.core import IReS
from repro.execution.parallel import ParallelSimulator, SchedulingError
from repro.scenarios import setup_helloworld, setup_relational_analytics


@pytest.fixture
def relational():
    ires = IReS()
    make = setup_relational_analytics(ires)
    return ires, ires.plan(make(10))


def test_chain_has_no_parallelism():
    ires = IReS()
    make = setup_helloworld(ires)
    plan = ires.plan(make())
    report = ParallelSimulator(ires.cloud, seed=1, charge_clock=False).simulate(plan)
    assert report.makespan == pytest.approx(report.serial_time)
    assert report.max_concurrency == 1


def test_parallel_branches_overlap(relational):
    """q1@PostgreSQL and q2@MemSQL are independent -> they overlap."""
    ires, plan = relational
    report = ParallelSimulator(ires.cloud, seed=1, charge_clock=False).simulate(plan)
    assert report.makespan < report.serial_time
    assert report.speedup > 1.0
    assert report.max_concurrency >= 2


def test_dependencies_respected(relational):
    ires, plan = relational
    report = ParallelSimulator(ires.cloud, seed=2, charge_clock=False).simulate(plan)
    finish_of = {}
    for scheduled in report.schedule:
        for out in scheduled.step.outputs:
            finish_of[id(out)] = scheduled.finish
    for scheduled in report.schedule:
        for inp in scheduled.step.inputs:
            if id(inp) in finish_of and finish_of[id(inp)] != scheduled.finish:
                # a producing step must have finished before this one starts
                # (equal ids only occur for the step's own outputs)
                if finish_of[id(inp)] > scheduled.start + 1e-9:
                    raise AssertionError("started before its input was ready")


def test_makespan_not_below_critical_path(relational):
    ires, plan = relational
    report = ParallelSimulator(ires.cloud, seed=3, charge_clock=False).simulate(plan)
    # the longest chain of dependent steps bounds the makespan from below
    longest_single = max(s.duration for s in report.schedule)
    assert report.makespan >= longest_single


def test_capacity_constraints_serialize_steps():
    """On a tiny cluster the parallel branches cannot co-run."""
    from repro.engines import ContainerRequest
    from repro.engines.registry import build_default_cloud

    big = IReS()
    make = setup_relational_analytics(big)
    plan = big.plan(make(10))
    wide = ParallelSimulator(big.cloud, seed=4, charge_clock=False).simulate(plan)

    # shrink the cluster below two concurrent default requests
    small_cloud = build_default_cloud(n_nodes=2)
    small = IReS(cloud=small_cloud)
    make2 = setup_relational_analytics(small)
    plan2 = small.plan(make2(10))
    for engine in small_cloud.engines.values():
        if not engine.centralized:  # centralized engines keep 1 container
            engine.default_request = ContainerRequest(cores=4, memory_gb=8.0,
                                                      instances=2)
    narrow = ParallelSimulator(small_cloud, seed=4, charge_clock=False).simulate(plan2)
    assert narrow.max_concurrency <= wide.max_concurrency


def test_oversized_step_raises():
    from repro.engines import ContainerRequest, build_default_cloud

    cloud = build_default_cloud(n_nodes=2)
    ires = IReS(cloud=cloud)
    make = setup_helloworld(ires)
    plan = ires.plan(make())
    for engine in cloud.engines.values():
        engine.default_request = ContainerRequest(cores=4, memory_gb=8.0,
                                                  instances=50)
    with pytest.raises(SchedulingError):
        ParallelSimulator(cloud, seed=5, charge_clock=False).simulate(plan)


def test_oversized_step_fails_but_other_branches_complete():
    """Regression: one unplaceable step is a fault, not a simulation abort.

    Only q1's PostgreSQL request is blown up past cluster capacity; q2 on
    MemSQL still fits, so the report must carry the oversized step (plus
    its downstream cascade) as failures while the healthy branch runs.
    """
    from repro.engines import ContainerRequest

    ires = IReS()
    make = setup_relational_analytics(ires)
    plan = ires.plan(make(10))
    engines = {s.engine for s in plan.steps if not s.is_move}
    assert len(engines) >= 2  # the plan genuinely spans engines
    victim = next(s.engine for s in plan.steps if not s.is_move)
    ires.cloud.engines[victim].default_request = ContainerRequest(
        cores=4, memory_gb=8.0, instances=500)
    report = ParallelSimulator(ires.cloud, seed=5,
                               charge_clock=False).simulate(plan)
    assert not report.succeeded
    direct = [f for f in report.failures if not f.cascaded]
    assert direct and all("exceeds" in f.error for f in direct)
    assert any(f.cascaded for f in report.failures)  # downstream skipped
    assert report.schedule  # the other branch still completed
    assert report.makespan > 0


def test_speculation_events_stamped_at_step_finish():
    """Regression: resilience events carry the step's simulated finish
    time, not the run's start time (all events used to pile up at t0)."""
    ires = IReS()
    make = setup_helloworld(ires)
    plan = ires.plan(make())
    victim = plan.step_for_operator("HelloWorld2").engine
    ires.fault_injector.make_straggler(victim, slowdown=10.0)
    start = ires.cloud.clock.now
    report = ParallelSimulator(
        ires.cloud, seed=2, charge_clock=False,
        fault_injector=ires.fault_injector).simulate(plan)
    assert report.speculations
    events = ires.cloud.collector.resilience_events("speculation")
    assert len(events) == len(report.speculations) == 1
    (event,), (spec,) = events, report.speculations
    finish = next(s.finish for s in report.schedule
                  if s.step.operator.name == spec.operator)
    assert event.started_at == pytest.approx(start + finish)
    assert event.started_at > start  # NOT stamped at run start


def test_concurrency_counts_zero_duration_steps():
    """Regression: instantaneous steps (free co-located moves) vanished
    from concurrency_at and max_concurrency."""
    from repro.execution.parallel import ParallelReport, ScheduledStep

    report = ParallelReport(
        makespan=3.0, serial_time=3.0,
        schedule=[
            ScheduledStep(None, 0.0, 2.0),
            ScheduledStep(None, 1.0, 3.0),
            ScheduledStep(None, 1.0, 1.0),  # zero-duration at t=1
            ScheduledStep(None, 2.0, 2.0),  # zero-duration at a boundary
        ])
    assert report.concurrency_at(0.0) == 1
    assert report.concurrency_at(1.0) == 3  # two running + one instant
    # at t=2 the first step has finished, the boundary instant counts
    assert report.concurrency_at(2.0) == 2
    assert report.concurrency_at(3.0) == 0
    assert report.max_concurrency == 3


def test_max_concurrency_sweep_matches_pointwise_scan():
    """The O(n log n) event sweep agrees with brute-force sampling."""
    ires = IReS()
    make = setup_relational_analytics(ires)
    plan = ires.plan(make(10))
    report = ParallelSimulator(ires.cloud, seed=9,
                               charge_clock=False).simulate(plan)
    probes = {s.start for s in report.schedule}
    assert report.max_concurrency == max(
        report.concurrency_at(t) for t in probes)


def test_clock_charged_with_makespan(relational):
    ires, plan = relational
    before = ires.cloud.clock.now
    report = ParallelSimulator(ires.cloud, seed=6).simulate(plan)
    assert ires.cloud.clock.now == pytest.approx(before + report.makespan)


def test_deterministic_given_seed(relational):
    ires, plan = relational
    a = ParallelSimulator(ires.cloud, seed=7, charge_clock=False).simulate(plan)
    b = ParallelSimulator(ires.cloud, seed=7, charge_clock=False).simulate(plan)
    assert a.makespan == b.makespan


class TestFaultAwareSimulation:
    def test_transient_failure_surfaced_not_fatal(self):
        """A failing step lands in report.failures; the rest still runs."""
        ires = IReS()
        make = setup_relational_analytics(ires)
        plan = ires.plan(make(10))
        victim = next(s.engine for s in plan.steps if not s.is_move)
        ires.fault_injector.make_flaky(victim, 1.0)
        report = ParallelSimulator(
            ires.cloud, seed=1, charge_clock=False,
            fault_injector=ires.fault_injector).simulate(plan)
        assert not report.succeeded
        direct = [f for f in report.failures if not f.cascaded]
        assert direct and all(victim in f.error or f.step.engine == victim
                              for f in direct)
        # independent branches still completed
        assert report.schedule
        assert report.makespan > 0

    def test_failures_cascade_to_downstream_consumers(self):
        ires = IReS()
        make = setup_helloworld(ires)
        plan = ires.plan(make())
        first = next(s for s in plan.steps if not s.is_move)
        ires.fault_injector.make_flaky(first.engine, 1.0)
        report = ParallelSimulator(
            ires.cloud, seed=1, charge_clock=False,
            fault_injector=ires.fault_injector).simulate(plan)
        # a chain: everything downstream of the first step is cascaded
        assert any(f.cascaded for f in report.failures)
        assert len(report.failures) >= 2

    def test_killed_engine_surfaces_as_failure(self):
        ires = IReS()
        make = setup_relational_analytics(ires)
        plan = ires.plan(make(10))
        victim = next(s.engine for s in plan.steps if not s.is_move)
        ires.cloud.kill_engine(victim)
        report = ParallelSimulator(
            ires.cloud, seed=1, charge_clock=False).simulate(plan)
        assert not report.succeeded
        assert any("OFF" in f.error for f in report.failures)

    def test_straggler_speculation_bounds_makespan(self):
        ires = IReS()
        make = setup_helloworld(ires)
        plan = ires.plan(make())
        # HelloWorld2 has four candidate engines, so a backup exists
        victim = plan.step_for_operator("HelloWorld2").engine

        def simulate(speculation):
            ires.fault_injector.clear_transients()
            ires.fault_injector.make_straggler(victim, slowdown=10.0)
            return ParallelSimulator(
                ires.cloud, seed=2, charge_clock=False,
                fault_injector=ires.fault_injector,
                speculation=speculation).simulate(plan)

        slow = simulate(False)
        fast = simulate(True)
        assert fast.speculations
        assert all(s.won for s in fast.speculations)
        assert fast.makespan < slow.makespan
        record = fast.speculations[0]
        assert record.engine == victim
        assert record.backup_engine != victim
        assert record.saved_seconds > 0

    def test_no_faults_reports_success(self):
        ires = IReS()
        make = setup_helloworld(ires)
        plan = ires.plan(make())
        report = ParallelSimulator(ires.cloud, seed=1,
                                   charge_clock=False).simulate(plan)
        assert report.succeeded
        assert report.failures == []
        assert report.speculations == []
