"""Property-based tests for the SQL substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.musqle.cardinality import estimate_filtered, estimate_join
from repro.sqlengine import Table, execute_query, parse_query
from repro.sqlengine.executor import apply_filters, hash_join
from repro.sqlengine.parser import Filter, JoinCondition
from repro.sqlengine.schema import ColumnStats, TableStats

keys = st.integers(min_value=0, max_value=20)


@st.composite
def keyed_table(draw, name, key_col):
    n = draw(st.integers(1, 30))
    key_values = draw(st.lists(keys, min_size=n, max_size=n))
    payload = draw(st.lists(st.integers(-100, 100), min_size=n, max_size=n))
    return Table(name, {
        key_col: np.array(key_values),
        f"{name}_payload": np.array(payload),
    })


@given(keyed_table("l", "lk"), keyed_table("r", "rk"))
@settings(max_examples=60, deadline=None)
def test_hash_join_matches_nested_loop(left, right):
    """The hash join returns exactly the nested-loop result multiset."""
    joined = hash_join(left, "lk", right, "rk")
    expected = sum(
        1
        for lv in left.column("lk").tolist()
        for rv in right.column("rk").tolist()
        if lv == rv
    )
    assert joined.n_rows == expected


@given(keyed_table("l", "lk"), keyed_table("r", "rk"))
@settings(max_examples=40, deadline=None)
def test_hash_join_commutative_in_cardinality(left, right):
    a = hash_join(left, "lk", right, "rk").n_rows
    b = hash_join(right, "rk", left, "lk").n_rows
    assert a == b


@given(keyed_table("t", "k"), st.integers(-5, 25))
@settings(max_examples=60, deadline=None)
def test_filters_partition_rows(table, threshold):
    """<= and > filters on the same threshold partition the table."""
    low = apply_filters(table, [Filter("t", "k", "<=", threshold)])
    high = apply_filters(table, [Filter("t", "k", ">", threshold)])
    assert low.n_rows + high.n_rows == table.n_rows


@given(keyed_table("t", "k"), st.integers(0, 20))
@settings(max_examples=60, deadline=None)
def test_equality_filter_via_query_matches_numpy(table, value):
    q = parse_query(
        f"SELECT * FROM t WHERE k = {value}", {"t": table.column_names})
    result = execute_query(q, {"t": table})
    assert result.n_rows == int((table.column("k") == value).sum())


@given(keyed_table("t", "k"))
@settings(max_examples=40, deadline=None)
def test_stats_invariants(table):
    stats = table.stats()
    assert stats.n_rows == table.n_rows
    col = stats.column("k")
    assert 1 <= col.n_distinct <= table.n_rows
    assert col.min_value <= col.max_value


# -- cardinality estimation invariants -------------------------------------


def make_stats(n_rows, distinct, lo=0.0, hi=100.0):
    distinct = max(1, min(distinct, max(n_rows, 1)))
    return TableStats(n_rows, 1, {"k": ColumnStats(distinct, lo, hi)})


@given(st.integers(0, 10_000), st.integers(1, 500),
       st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
       st.floats(-50, 150, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_filter_estimate_bounded_by_table(n_rows, distinct, op, value):
    stats = make_stats(n_rows, distinct)
    out = estimate_filtered(stats, [Filter("t", "k", op, value)])
    assert 0 <= out.n_rows <= max(n_rows, 1)


@given(st.integers(1, 10_000), st.integers(1, 500),
       st.integers(1, 10_000), st.integers(1, 500))
@settings(max_examples=80, deadline=None)
def test_join_estimate_bounded_by_cross_product(nl, dl, nr, dr):
    left = make_stats(nl, dl)
    right = TableStats(nr, 1, {"j": ColumnStats(min(dr, nr), 0.0, 100.0)})
    out = estimate_join(left, right, [JoinCondition("l", "k", "r", "j")])
    assert 0 <= out.n_rows <= nl * nr


@given(st.integers(1, 1000), st.integers(1, 1000))
@settings(max_examples=40, deadline=None)
def test_join_estimate_symmetric(nl, nr):
    left = make_stats(nl, nl)
    right = TableStats(nr, 1, {"j": ColumnStats(nr, 0.0, 100.0)})
    jc = JoinCondition("l", "k", "r", "j")
    a = estimate_join(left, right, [jc]).n_rows
    b = estimate_join(right, left, [JoinCondition("r", "j", "l", "k")]).n_rows
    assert a == b


# -- equi-depth histograms -------------------------------------------------


@given(st.lists(st.floats(-1000, 1000, allow_nan=False),
                min_size=40, max_size=200),
       st.floats(-1200, 1200, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_histogram_selectivity_close_to_truth(values, threshold):
    """Histogram range estimates land within ~1.5 bins of the exact fraction."""
    table = Table("t", {"v": np.asarray(values)})
    stats = table.stats(histogram_bins=16)
    col = stats.column("v")
    estimated = col.range_selectivity_above(threshold)
    if estimated is None:
        return
    actual = float(np.mean(np.asarray(values) > threshold))
    assert abs(estimated - actual) <= 1.5 / 16 + 0.02


@given(st.lists(st.floats(-100, 100, allow_nan=False),
                min_size=40, max_size=120))
@settings(max_examples=40, deadline=None)
def test_histogram_monotone_in_threshold(values):
    table = Table("t", {"v": np.asarray(values)})
    col = table.stats(histogram_bins=8).column("v")
    thresholds = np.linspace(-120, 120, 12)
    estimates = [col.range_selectivity_above(t) for t in thresholds]
    estimates = [e for e in estimates if e is not None]
    assert all(a >= b - 1e-9 for a, b in zip(estimates, estimates[1:]))


def test_histogram_beats_minmax_on_skewed_data():
    """The motivating case: skewed values wreck min/max interpolation."""
    from repro.musqle.cardinality import filter_selectivity
    from repro.sqlengine.parser import Filter

    rng = np.random.default_rng(5)
    values = rng.pareto(1.5, 5000) * 10  # heavy right tail
    table = Table("t", {"v": values})
    threshold = float(np.percentile(values, 90))
    actual = 0.10
    with_hist = filter_selectivity(
        table.stats(histogram_bins=16), Filter("t", "v", ">", threshold))
    without = filter_selectivity(
        table.stats(histogram_bins=0), Filter("t", "v", ">", threshold))
    assert abs(with_hist - actual) < abs(without - actual)
    assert abs(with_hist - actual) < 0.05
