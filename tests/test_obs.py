"""Tests for the observability layer (repro.obs) and its wiring."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IReS
from repro.obs import (
    REGISTRY,
    Tracer,
    bind_run_id,
    critical_path,
    current_run_id,
    get_logger,
    load_trace,
    new_run_id,
    recent_logs,
    summarize_spans,
)
from repro.obs.logging import clear as clear_logs
from repro.obs.metrics import MetricsRegistry, parse_exposition
from repro.scenarios import setup_helloworld


class TestRunContext:
    def test_default_is_none(self):
        assert current_run_id() is None

    def test_bind_and_restore(self):
        rid = new_run_id()
        with bind_run_id(rid):
            assert current_run_id() == rid
            with bind_run_id("nested"):
                assert current_run_id() == "nested"
            assert current_run_id() == rid
        assert current_run_id() is None

    def test_run_ids_are_distinct(self):
        assert new_run_id() != new_run_id()


class TestMetricsRegistry:
    def test_counter_inc_and_render(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs", labels=("status",))
        c.inc(status="ok")
        c.inc(2, status="failed")
        text = reg.render()
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{status="ok"} 1' in text
        assert 'jobs_total{status="failed"} 2' in text

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c_total", "c").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "queue depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        text = reg.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="10"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text
        assert "lat_seconds_sum 55.55" in text

    def test_histogram_filters_non_finite_bounds(self):
        import math

        reg = MetricsRegistry()
        # an explicit +Inf bound must not yield a second le="+Inf" line:
        # the implicit one (== _count) is always appended by render
        h = reg.histogram("inf_seconds", "lat", buckets=(1.0, math.inf))
        h.observe(0.5)
        h.observe(99.0)
        text = reg.render()
        assert text.count('inf_seconds_bucket{le="+Inf"}') == 1
        assert 'inf_seconds_bucket{le="+Inf"} 2' in text
        with pytest.raises(ValueError, match="finite"):
            reg.histogram("bad_seconds", "bad", buckets=(math.inf,))

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x")
        assert reg.counter("x_total", "x") is a

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("y_total", "y")
        with pytest.raises(ValueError):
            reg.gauge("y_total", "y")

    def test_unknown_label_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("z_total", "z", labels=("a",))
        with pytest.raises(ValueError):
            c.inc(b="nope")

    def test_reset_keeps_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("r_total", "r")
        c.inc(3)
        reg.reset()
        assert c.value() == 0
        c.inc()  # the module-level handle stays usable
        assert c.value() == 1

    def test_label_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("esc_total", "esc", labels=("msg",))
        c.inc(msg='quote " backslash \\ newline \n')
        line = [ln for ln in reg.render().splitlines()
                if ln.startswith("esc_total{")][0]
        assert '\\"' in line and "\\\\" in line and "\\n" in line


class TestTracer:
    def test_parent_child_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert all(s.status == "ok" for s in spans)

    def test_error_status_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        span = tracer.spans()[0]
        assert span.status == "error"
        assert "nope" in span.error

    def test_disabled_tracer_collects_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            span.set_attribute("a", 1)
            span.add_event("e")
        assert tracer.spans() == []

    def test_run_id_stamped(self):
        tracer = Tracer()
        with bind_run_id("runA"):
            with tracer.span("a"):
                pass
        assert tracer.spans()[0].run_id == "runA"
        assert tracer.run_ids() == ["runA"]

    def test_add_event_stamps_wall_time(self):
        import time

        tracer = Tracer()
        before = time.perf_counter()
        with tracer.span("a") as span:
            span.add_event("retry", attempt=1)
            span.add_event("pinned", wall=123.0)
        events = tracer.spans()[0].events
        # default stamp: taken at call time, so timelines can interleave it
        assert before <= events[0]["wall"] <= time.perf_counter()
        assert events[1]["wall"] == 123.0

    def test_record_span_retro(self):
        tracer = Tracer()
        span = tracer.record_span("sim", "simulator", 10.0, 25.0,
                                  attributes={"engine": "Spark"})
        assert span.sim_seconds == 15.0
        assert tracer.spans()[0].attributes["engine"] == "Spark"

    def test_max_spans_trims_oldest(self):
        tracer = Tracer(max_spans=4)
        for i in range(6):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.spans()]
        assert len(names) <= 4
        assert "s5" in names and "s0" not in names


class TestTraceExport:
    def _tracer_with_steps(self):
        tracer = Tracer()
        with bind_run_id("runX"):
            with tracer.span("execute:wf", category="executor"):
                pass
            a = tracer.record_span("step:a", "executor", 0.0, 10.0,
                                   {"engine": "E1", "inputs": ["in"],
                                    "outputs": ["mid"]})
            assert a is not None
            tracer.record_span("step:b", "executor", 10.0, 14.0,
                               {"engine": "E2", "inputs": ["mid"],
                                "outputs": ["out"]})
            tracer.record_span("step:c", "executor", 0.0, 6.0,
                               {"engine": "E3", "inputs": ["in"],
                                "outputs": ["side"]})
        return tracer

    def test_chrome_trace_shape(self):
        tracer = self._tracer_with_steps()
        trace = tracer.chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete, "no complete events"
        for event in complete:
            assert {"name", "pid", "tid", "ts", "dur", "args"} <= set(event)
            assert event["args"]["run_id"] == "runX"
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_export_roundtrip_chrome_and_jsonl(self, tmp_path):
        tracer = self._tracer_with_steps()
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        assert tracer.export_chrome(chrome) == 4
        assert tracer.export_jsonl(jsonl) == 4
        from_chrome = load_trace(chrome)
        from_jsonl = load_trace(jsonl)
        assert {s["name"] for s in from_chrome} == \
               {s["name"] for s in from_jsonl}
        assert all(s["run_id"] == "runX" for s in from_chrome)

    def test_critical_path_follows_dataflow(self, tmp_path):
        tracer = self._tracer_with_steps()
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path)
        makespan, chain = critical_path(load_trace(path))
        # a(10) -> b(4) = 14 beats c(6)
        assert makespan == 14.0
        assert [s["name"] for s in chain] == ["step:a", "step:b"]

    def test_summarize_spans(self, tmp_path):
        tracer = self._tracer_with_steps()
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path)
        summary = summarize_spans(load_trace(path))
        (run,) = summary["runs"]
        assert run["run_id"] == "runX"
        assert run["phases"]["executor"]["spans"] == 4
        assert run["critical_path_seconds"] == 14.0


class TestStructuredLogging:
    def test_log_lines_are_json_with_run_id(self):
        import io

        from repro.obs.logging import configure

        clear_logs()
        stream = io.StringIO()
        configure(stream=stream)
        try:
            log = get_logger("test")
            with bind_run_id("logrun"):
                log.info("something_happened", count=3)
        finally:
            configure(stream=None)
        line = json.loads(stream.getvalue().strip().splitlines()[-1])
        assert line["event"] == "something_happened"
        assert line["logger"] == "test"
        assert line["run_id"] == "logrun"
        assert line["count"] == 3

    def test_ring_buffer_filters(self):
        clear_logs()
        log = get_logger("ringtest")
        with bind_run_id("r1"):
            log.info("a")
        with bind_run_id("r2"):
            log.warning("b")
        assert len(recent_logs(logger="ringtest")) == 2
        assert [e["event"] for e in recent_logs(run_id="r2")] == ["b"]


class TestPlatformWiring:
    @pytest.fixture
    def run(self):
        REGISTRY.reset()
        ires = IReS()
        make = setup_helloworld(ires)
        report = ires.execute(make())
        return ires, report

    def test_report_carries_run_id(self, run):
        _, report = run
        assert report.run_id
        assert len(report.run_id) == 12

    def test_all_layers_share_the_run_id(self, run):
        ires, report = run
        spans = ires.tracer.spans(report.run_id)
        categories = {s.category for s in spans}
        assert {"planner", "executor"} <= categories
        root = [s for s in spans
                if s.parent_id is None and s.category == "executor"]
        assert [s.name for s in root] == [f"execute:{report.workflow}"]

    def test_step_spans_carry_dataflow(self, run):
        ires, report = run
        steps = [s for s in ires.tracer.spans(report.run_id)
                 if s.name.startswith("step:")]
        assert len(steps) == len(report.executions)
        for span in steps:
            assert isinstance(span.attributes["outputs"], list)
        makespan, chain = critical_path(
            [s.to_dict() for s in ires.tracer.spans(report.run_id)])
        assert makespan == pytest.approx(report.critical_path_seconds)

    def test_metrics_populated(self, run):
        _, report = run
        text = REGISTRY.render()
        assert f'ires_executor_runs_total{{status="ok",run_id="{report.run_id}"}} 1' in text
        assert "ires_planner_plans_total" in text
        assert "ires_library_lookups_total" in text
        assert "ires_executor_step_sim_seconds_bucket" in text

    def test_resilience_events_counted(self):
        REGISTRY.reset()
        ires = IReS()
        make = setup_helloworld(ires)
        ires.fault_injector.seed = 2
        ires.fault_injector.make_all_flaky(0.3)
        report = ires.execute(make())
        if report.retries:
            counter = REGISTRY.get("ires_resilience_events_total")
            total = sum(counter.series().values())
            assert total >= report.retries
            retry_spans = [
                e for s in ires.tracer.spans(report.run_id)
                for e in s.events if e["name"] == "retry"
            ]
            assert len(retry_spans) == report.retries

    def test_simulator_records_spans(self):
        from repro.execution.parallel import ParallelSimulator

        ires = IReS()
        make = setup_helloworld(ires)
        workflow = make()
        plan = ires.plan(workflow)
        sim = ParallelSimulator(ires.cloud, tracer=ires.tracer)
        with bind_run_id("simrun"):
            sim_report = sim.simulate(plan)
        spans = ires.tracer.spans("simrun")
        root = [s for s in spans if s.name.startswith("simulate:")]
        assert len(root) == 1
        step_spans = [s for s in spans if s.name.startswith("step:")]
        assert len(step_spans) == len(sim_report.schedule)
        assert all(s.parent_id == root[0].span_id for s in step_spans)

    def test_modeler_training_traced(self):
        REGISTRY.reset()
        from repro.core import ProfileSpec
        from repro.engines import build_default_cloud

        ires = IReS(cloud=build_default_cloud(seed=5))
        ires.profile_operator(ProfileSpec("TF_IDF", "Spark",
                                          counts=[1e3, 1e4, 1e5, 1e6]))
        trains = [s for s in ires.tracer.spans()
                  if s.name == "train:TF_IDF@Spark"]
        assert trains
        assert trains[-1].attributes["samples"] >= 4
        counter = REGISTRY.get("ires_modeler_trainings_total")
        assert counter.value(algorithm="TF_IDF", engine="Spark") >= 1


#: anything goes in a label value except the raw line separators the
#: text format cannot carry (the spec escapes only \n, not \r etc.)
_label_values = st.text(
    alphabet=st.characters(
        blacklist_characters="\r\v\f\x1c\x1d\x1e\x85  "),
    max_size=24,
)


class TestExpositionRoundTrip:
    @given(value=_label_values)
    @settings(max_examples=60, deadline=None)
    def test_label_values_roundtrip(self, value):
        reg = MetricsRegistry()
        counter = reg.counter("rt_total", "round trip", labels=("msg",))
        counter.inc(msg=value)
        parsed = parse_exposition(reg.render())
        samples = [s for s in parsed["samples"] if s[0] == "rt_total"]
        assert samples == [("rt_total", {"msg": value}, 1.0)]

    @given(values=st.lists(_label_values, min_size=1, max_size=4,
                           unique=True))
    @settings(max_examples=30, deadline=None)
    def test_many_series_stay_distinct(self, values):
        reg = MetricsRegistry()
        gauge = reg.gauge("rt_gauge", "round trip", labels=("msg",))
        for i, value in enumerate(values):
            gauge.set(float(i), msg=value)
        parsed = parse_exposition(reg.render())
        got = {labels["msg"]: v for name, labels, v in parsed["samples"]
               if name == "rt_gauge"}
        assert got == {value: float(i) for i, value in enumerate(values)}

    def test_backslash_n_literal_vs_newline(self):
        # "a\\nb" (backslash + n) and "a\nb" (newline) must stay distinct
        reg = MetricsRegistry()
        counter = reg.counter("amb_total", "amb", labels=("msg",))
        counter.inc(msg="a\\nb")
        counter.inc(2, msg="a\nb")
        parsed = parse_exposition(reg.render())
        got = {labels["msg"]: v for name, labels, v in parsed["samples"]}
        assert got == {"a\\nb": 1.0, "a\nb": 2.0}

    def test_help_text_escaped_and_restored(self):
        reg = MetricsRegistry()
        reg.counter("h_total", "first line\nsecond \\ line")
        text = reg.render()
        assert "# HELP h_total first line\\nsecond \\\\ line" in text
        parsed = parse_exposition(text)
        assert parsed["help"]["h_total"] == "first line\nsecond \\ line"
        assert parsed["type"]["h_total"] == "counter"

    def test_infinite_values_roundtrip(self):
        import math

        reg = MetricsRegistry()
        gauge = reg.gauge("inf_gauge", "inf")
        gauge.set(math.inf)
        ((name, labels, value),) = parse_exposition(reg.render())["samples"]
        assert name == "inf_gauge" and value == math.inf

    def test_histogram_le_labels_roundtrip(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "lat", buckets=(0.1, 1.0))
        hist.observe(0.5)
        parsed = parse_exposition(reg.render())
        buckets = {labels["le"]: v for name, labels, v in parsed["samples"]
                   if name == "lat_seconds_bucket"}
        assert buckets == {"0.1": 0.0, "1": 1.0, "+Inf": 1.0}

    @given(bounds=st.lists(st.floats(0.001, 1e6), min_size=1, max_size=6,
                           unique=True),
           with_inf=st.booleans(),
           values=st.lists(st.floats(0.0, 2e6), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_histogram_inf_bucket_roundtrip(self, bounds, with_inf, values):
        import math

        reg = MetricsRegistry()
        buckets = tuple(bounds) + ((math.inf,) if with_inf else ())
        hist = reg.histogram("rt_seconds", "round trip", buckets=buckets)
        for value in values:
            hist.observe(value)
        parsed = parse_exposition(reg.render())
        series = {}
        for name, labels, value in parsed["samples"]:
            if name == "rt_seconds_bucket":
                series[labels["le"]] = value
        # exactly one +Inf bucket, always equal to the total count
        assert list(series).count("+Inf") == 1
        assert series["+Inf"] == float(len(values))
        # cumulative counts are monotone in bound order (render order)
        assert list(series.values()) == sorted(series.values())

    def test_malformed_label_block_raises(self):
        with pytest.raises(ValueError, match="label value must be quoted"):
            parse_exposition('x_total{msg=oops} 1\n')
        with pytest.raises(ValueError, match="unterminated"):
            parse_exposition('x_total{msg="oops} 1\n')


class TestTraceLoadValidation:
    def test_empty_file_one_line_error(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("   \n")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_truncated_jsonl_names_the_line(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path)
        path.write_text(path.read_text() + '{"name": "b", "start_wa')
        with pytest.raises(ValueError, match="line 2: invalid JSON"):
            load_trace(path)

    def test_non_span_object_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a"}\n')
        with pytest.raises(ValueError, match="missing"):
            load_trace(path)

    def test_non_dict_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1, 2, 3]\n')
        with pytest.raises(ValueError, match="line 1: not a span object"):
            load_trace(path)

    def test_empty_object_payload_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="line 1"):
            load_trace(path)
