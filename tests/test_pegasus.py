"""Tests for the Pegasus-style workflow generators (repro.workflows)."""

import pytest

from repro.core import Planner
from repro.core.planner import MetadataCostEstimator
from repro.workflows import CATEGORIES, generate, synthetic_library


@pytest.mark.parametrize("category", sorted(CATEGORIES))
@pytest.mark.parametrize("n_tasks", [30, 100])
def test_generated_workflows_validate(category, n_tasks):
    wf = generate(category, n_tasks)
    wf.validate()  # DAG, single producers, reachable target
    assert wf.target is not None
    ops = len(wf.operators)
    assert 0.5 * n_tasks <= ops <= 2.0 * n_tasks  # size roughly on target


@pytest.mark.parametrize("category", sorted(CATEGORIES))
def test_generated_workflows_plannable(category):
    wf = generate(category, 30)
    lib = synthetic_library(wf, 3)
    plan = Planner(lib, MetadataCostEstimator()).plan(wf)
    assert plan.cost > 0
    planned_ops = {s.abstract_name for s in plan.steps if not s.is_move}
    assert planned_ops == set(wf.operators)


def test_unknown_category_rejected():
    with pytest.raises(ValueError):
        generate("NotAWorkflow", 30)


def test_montage_has_high_degree_nodes():
    """Montage is 'more connected, having multiple nodes with high in- and
    out-degrees' — the property that doubles its planning time (Fig 14)."""
    wf = generate("Montage", 100, seed=1)
    max_fan_in = max(len(v) for v in wf.op_inputs.values())
    assert max_fan_in >= 10  # mConcatFit/mImgTbl aggregate many diffs
    # projections feed several consumers
    consumers = {}
    for op, inputs in wf.op_inputs.items():
        for ds in inputs:
            consumers[ds] = consumers.get(ds, 0) + 1
    assert max(consumers.values()) >= 3


def test_epigenomics_is_pipelined():
    """Epigenomics is parallel chains: all operators have fan-in 1 except
    the merge."""
    wf = generate("Epigenomics", 60)
    fan_ins = sorted(len(v) for v in wf.op_inputs.values())
    assert fan_ins[-2] == 1  # only one aggregation node
    assert fan_ins[-1] > 1


def test_generators_deterministic():
    a = generate("Montage", 50, seed=3)
    b = generate("Montage", 50, seed=3)
    assert sorted(a.operators) == sorted(b.operators)
    assert a.op_inputs == b.op_inputs


def test_synthetic_library_size_and_matching():
    wf = generate("CyberShake", 30)
    lib = synthetic_library(wf, 4)
    algorithms = {op.algorithm for op in wf.operators.values()}
    assert len(lib) == 4 * len(algorithms)
    some_abstract = next(iter(wf.operators.values()))
    matches = lib.find_materialized(some_abstract)
    assert len(matches) == 4


def test_more_engines_cannot_worsen_plan():
    """A superset library can only find equal-or-better plans."""
    wf = generate("Inspiral", 40, seed=2)
    lib2 = synthetic_library(wf, 2, seed=9)
    lib4 = synthetic_library(wf, 4, seed=9)
    est = MetadataCostEstimator()
    cost2 = Planner(lib2, est).plan(wf).cost
    cost4 = Planner(lib4, est).plan(wf).cost
    assert cost4 <= cost2 + 1e-9
