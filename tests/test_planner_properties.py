"""Property-based tests for planner invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AbstractOperator,
    AbstractWorkflow,
    Dataset,
    MaterializedOperator,
    OperatorLibrary,
    Planner,
)
from repro.core.planner import MetadataCostEstimator, PlanningError

STORES = ["s0", "s1", "s2"]

cost = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)


@st.composite
def chain_instance(draw):
    """A random linear workflow with random per-stage implementations."""
    n_stages = draw(st.integers(1, 5))
    library = OperatorLibrary()
    per_stage: list[list[str]] = []
    for stage in range(n_stages):
        n_impls = draw(st.integers(1, 3))
        impls = []
        for j in range(n_impls):
            store = draw(st.sampled_from(STORES))
            name = f"op{stage}_{j}"
            library.add(MaterializedOperator(name, {
                "Constraints.OpSpecification.Algorithm.name": f"alg{stage}",
                "Constraints.Engine": f"engine{j}",
                "Constraints.Input.number": 1,
                "Constraints.Output.number": 1,
                "Constraints.Input0.Engine.FS": store,
                "Constraints.Output0.Engine.FS": store,
                "Optimization.execTime": draw(cost),
                "Optimization.cost": draw(cost),
            }))
            impls.append(name)
        per_stage.append(impls)
    wf = AbstractWorkflow("chain")
    wf.add_dataset(Dataset("d0", {
        "Constraints.Engine.FS": draw(st.sampled_from(STORES)),
        "Optimization.size": draw(st.floats(1e3, 1e9)),
    }, materialized=True))
    prev = "d0"
    for stage in range(n_stages):
        wf.add_operator(AbstractOperator(f"alg{stage}", {
            "Constraints.OpSpecification.Algorithm.name": f"alg{stage}"}))
        out = f"d{stage + 1}"
        wf.add_dataset(Dataset(out))
        wf.connect(prev, f"alg{stage}")
        wf.connect(f"alg{stage}", out)
        prev = out
    wf.set_target(prev)
    return library, wf, per_stage


@given(chain_instance())
@settings(max_examples=40, deadline=None)
def test_plan_is_topologically_valid(instance):
    """Every non-move step's abstract stage appears in order, exactly once."""
    library, wf, _ = instance
    plan = Planner(library, MetadataCostEstimator()).plan(wf)
    stages = [s.abstract_name for s in plan.steps if not s.is_move]
    assert stages == [f"alg{i}" for i in range(len(stages))]
    assert len(stages) == len(wf.operators)


@given(chain_instance())
@settings(max_examples=40, deadline=None)
def test_plan_cost_equals_sum_of_step_costs(instance):
    library, wf, _ = instance
    plan = Planner(library, MetadataCostEstimator()).plan(wf)
    total = sum(s.estimated_cost for s in plan.steps)
    assert plan.cost == np.float64(total) or abs(plan.cost - total) < 1e-6


@given(chain_instance())
@settings(max_examples=40, deadline=None)
def test_plan_cost_not_above_any_greedy_alternative(instance):
    """DP optimum <= the plan that fixes engine0 for every stage (if feasible)."""
    library, wf, per_stage = instance
    planner = Planner(library, MetadataCostEstimator())
    optimal = planner.plan(wf)
    try:
        pinned = planner.plan(wf, available_engines={"engine0", "move"})
    except PlanningError:
        return
    assert optimal.cost <= pinned.cost + 1e-9


@given(chain_instance())
@settings(max_examples=40, deadline=None)
def test_moves_connect_matching_stores(instance):
    """Every move step's output store equals the consuming input's spec."""
    library, wf, _ = instance
    plan = Planner(library, MetadataCostEstimator()).plan(wf)
    for i, step in enumerate(plan.steps):
        if not step.is_move:
            continue
        moved = step.outputs[0]
        consumers = [
            s for s in plan.steps[i + 1:]
            if any(d is moved for d in s.inputs)
        ]
        assert consumers, "a move whose output nobody consumes"
        for consumer in consumers:
            assert consumer.operator.accepts_input(moved, 0)


@given(chain_instance(), st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_removing_engines_never_improves_cost(instance, drop):
    library, wf, _ = instance
    planner = Planner(library, MetadataCostEstimator())
    full = planner.plan(wf)
    remaining = {f"engine{j}" for j in range(3) if j != drop} | {"move"}
    try:
        restricted = planner.plan(wf, available_engines=remaining)
    except PlanningError:
        return
    assert restricted.cost >= full.cost - 1e-9


# -- index-vs-scan equivalence (the ``None``/wildcard bucket regression) ----

_ALG_NAMES = st.one_of(
    st.none(),                                  # unnamed → None bucket
    st.just("*"),                               # wildcard bucket
    st.sampled_from(["alpha", "beta", "gamma"]))  # concrete buckets


@st.composite
def mixed_library(draw):
    """A library mixing concrete, wildcard and unnamed implementations."""
    library = OperatorLibrary()
    n_ops = draw(st.integers(1, 12))
    for i in range(n_ops):
        alg = draw(_ALG_NAMES)
        props = {
            "Constraints.Engine": f"engine{draw(st.integers(0, 2))}",
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
        }
        if alg is not None:
            props["Constraints.OpSpecification.Algorithm.name"] = alg
        library.add(MaterializedOperator(f"op{i}", props))
    return library


@given(mixed_library(),
       st.sampled_from(["alpha", "beta", "gamma", "nosuch", "*"]),
       st.one_of(st.none(), st.sets(st.sampled_from(
           ["engine0", "engine1", "engine2"]))))
@settings(max_examples=60, deadline=None)
def test_indexed_lookup_equals_full_scan(library, alg, engines):
    """For any library/abstract/engine-filter combination the selective
    index must return exactly the full-scan match set."""
    abstract = AbstractOperator(alg, {
        "Constraints.OpSpecification.Algorithm.name": alg})
    indexed = {m.name for m in library.find_materialized(
        abstract, available_engines=engines, use_index=True)}
    scanned = {m.name for m in library.find_materialized(
        abstract, available_engines=engines, use_index=False)}
    assert indexed == scanned
