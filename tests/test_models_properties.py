"""Property-based tests (hypothesis) for model-zoo invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.models import (
    Bagging,
    GaussianProcess,
    LinearRegression,
    RegressionByDiscretization,
    RegressionTree,
    rmse,
)
from repro.moea.nsga2 import dominates

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


@st.composite
def dataset(draw, min_rows=8, max_rows=40, max_cols=4):
    n = draw(st.integers(min_rows, max_rows))
    d = draw(st.integers(1, max_cols))
    X = draw(
        hnp.arrays(np.float64, (n, d), elements=finite)
    )
    y = draw(hnp.arrays(np.float64, (n,), elements=finite))
    return X, y


@given(dataset())
@settings(max_examples=25, deadline=None)
def test_tree_predictions_within_target_range(data):
    """A regression tree predicts leaf means, so stays inside [min(y), max(y)]."""
    X, y = data
    tree = RegressionTree().fit(X, y)
    preds = tree.predict(X)
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9


@given(dataset())
@settings(max_examples=25, deadline=None)
def test_bagging_predictions_within_target_range(data):
    X, y = data
    preds = Bagging(n_estimators=5).fit(X, y).predict(X)
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9


@given(dataset())
@settings(max_examples=25, deadline=None)
def test_discretization_predictions_within_target_range(data):
    X, y = data
    preds = RegressionByDiscretization().fit(X, y).predict(X)
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9


@given(dataset(min_rows=4))
@settings(max_examples=25, deadline=None)
def test_models_are_deterministic(data):
    """Same data, same seed -> identical predictions (models are pure)."""
    X, y = data
    p1 = Bagging(seed=5).fit(X, y).predict(X)
    p2 = Bagging(seed=5).fit(X, y).predict(X)
    np.testing.assert_array_equal(p1, p2)


@given(dataset(min_rows=6), st.floats(min_value=-50, max_value=50))
@settings(max_examples=25, deadline=None)
def test_linear_regression_translation_equivariance(data, shift):
    """OLS predictions shift exactly with a constant shift of the target."""
    X, y = data
    base = LinearRegression().fit(X, y).predict(X)
    shifted = LinearRegression().fit(X, y + shift).predict(X)
    np.testing.assert_allclose(shifted, base + shift, rtol=1e-6, atol=1e-5)


@given(dataset(min_rows=6))
@settings(max_examples=15, deadline=None)
def test_gp_finite_predictions(data):
    X, y = data
    preds = GaussianProcess().fit(X, y).predict(X)
    assert np.all(np.isfinite(preds))


@given(st.lists(st.tuples(finite, finite), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_dominance_is_irreflexive_and_antisymmetric(points):
    for p in points:
        a = np.array(p)
        assert not dominates(a, a)
    for p in points:
        for q in points:
            a, b = np.array(p), np.array(q)
            assert not (dominates(a, b) and dominates(b, a))


@given(dataset(min_rows=4))
@settings(max_examples=25, deadline=None)
def test_rmse_nonnegative_and_zero_on_self(data):
    _, y = data
    assert rmse(y, y) == 0.0
    assert rmse(y, y + 1.0) > 0.0
