"""Service stress under the concurrency tooling (DESIGN.md §13).

Eight workers, submissions racing in from four threads, cancels landing
on every third run, a journal-recovery leg, and background scrapers
hammering ``/metrics`` and ``/dashboard`` the whole time.  The suite
conftest promotes any uncaught worker-thread exception to a failure, and
when ``IRES_CONCURRENCY_CHECK=1`` the dynamic checker must stay clean
across all of it.
"""

import asyncio
import json
import threading

from repro.analysis.runtime_check import CHECKER
from repro.api.rest import IResServer
from repro.api.service import CANCELLED, SUCCEEDED, IResService
from repro.obs.metrics import REGISTRY

from tests.test_service import _factory, _interrupt_journal

SUBMITTERS = 4
RUNS_PER_SUBMITTER = 6


def _runs_total_by_status(metrics_text: str) -> dict[str, int]:
    """Sum the ``ires_service_runs_total`` family by its status label."""
    out: dict[str, int] = {}
    for line in metrics_text.splitlines():
        if not line.startswith("ires_service_runs_total{"):
            continue
        labels, value = line.rsplit(" ", 1)
        status = labels.split('status="', 1)[1].split('"', 1)[0]
        out[status] = out.get(status, 0) + int(float(value))
    return out


def test_stress_eight_workers_submit_cancel_recover_scrape(tmp_path):
    REGISTRY.reset()
    interrupted_id = _interrupt_journal(tmp_path)

    async def main():
        service = IResService(_factory(), workers=8, queue_limit=256,
                              journal_dir=tmp_path)
        server = IResServer(_factory()(), service=service)
        recovered = await service.start()  # picks up the torn journal
        assert [r.run_id for r in recovered] == [interrupted_id]

        stop = threading.Event()
        scrape_errors: list[tuple[str, int]] = []

        def scrape(path: str) -> None:
            while not stop.is_set():
                response = server.handle("GET", path)
                if response.status != 200:
                    scrape_errors.append((path, response.status))

        scrapers = [
            threading.Thread(target=scrape, args=(path,), daemon=True)
            for path in ("/metrics", "/dashboard")
            for _ in range(2)
        ]
        for thread in scrapers:
            thread.start()

        records = []
        record_sink = threading.Lock()

        def submit_batch(worker: int) -> None:
            for i in range(RUNS_PER_SUBMITTER):
                rec = service.submit("helloworld-chain",
                                     tenant=f"t{worker}")
                with record_sink:
                    records.append(rec)

        submitters = [
            threading.Thread(target=submit_batch, args=(n,), daemon=True)
            for n in range(SUBMITTERS)
        ]
        for thread in submitters:
            thread.start()
        for thread in submitters:
            await asyncio.to_thread(thread.join)

        assert len(records) == SUBMITTERS * RUNS_PER_SUBMITTER
        for rec in records[::3]:  # races queued, running and finished runs
            service.cancel(rec.run_id)
        for rec in records + recovered:
            await service.wait(rec.run_id, timeout=120)

        stop.set()
        for thread in scrapers:
            await asyncio.to_thread(thread.join)
        metrics = server.handle("GET", "/metrics")
        dashboard = server.handle("GET", "/dashboard")
        await service.shutdown()
        return (service, records, recovered, scrape_errors,
                metrics, dashboard)

    (service, records, recovered, scrape_errors,
     metrics, dashboard) = asyncio.run(main())

    assert scrape_errors == []
    assert metrics.status == 200 and dashboard.status == 200
    for rec in records:
        assert rec.done.is_set()
        assert rec.state in (SUCCEEDED, CANCELLED), rec.state
    assert recovered[0].state == SUCCEEDED
    assert any(rec.state == SUCCEEDED for rec in records)

    # the metrics snapshot agrees with the records we hold
    by_status = _runs_total_by_status(metrics.text)
    terminal = len(records) + len(recovered)
    assert sum(by_status.values()) == terminal
    want = {SUCCEEDED: 0, CANCELLED: 0}
    for rec in records + recovered:
        want[rec.state] += 1
    assert by_status.get(SUCCEEDED, 0) == want[SUCCEEDED]
    assert by_status.get(CANCELLED, 0) == want[CANCELLED]

    stats = service.stats()
    assert stats["queueDepth"] == 0 and not stats["accepting"]
    assert service.peak_active > 1  # the eight workers genuinely overlapped

    if CHECKER.enabled:  # the dynamic checker watched all of this
        CHECKER.assert_clean()
        report = CHECKER.report()
        assert report["lockOrderEdges"], "instrumented locks saw no nesting"
        exported = CHECKER.export_json(tmp_path / "lock-graph.json")
        assert json.loads(exported.read_text())["enabled"] is True
