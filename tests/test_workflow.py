"""Unit tests for workflow DAGs and graph-file parsing (repro.core.workflow)."""

import pytest

from repro.core import (
    AbstractOperator,
    AbstractWorkflow,
    Dataset,
    WorkflowError,
)


def simple_ops():
    tfidf = AbstractOperator("tfidf", {
        "Constraints.OpSpecification.Algorithm.name": "TF_IDF",
        "Constraints.Input.number": 1, "Constraints.Output.number": 1,
    })
    kmeans = AbstractOperator("kmeans", {
        "Constraints.OpSpecification.Algorithm.name": "kmeans",
        "Constraints.Input.number": 1, "Constraints.Output.number": 1,
    })
    return tfidf, kmeans


def build_chain():
    wf = AbstractWorkflow("chain")
    wf.add_dataset(Dataset("in", materialized=True))
    wf.add_dataset(Dataset("d1"))
    wf.add_dataset(Dataset("d2"))
    tfidf, kmeans = simple_ops()
    wf.add_operator(tfidf)
    wf.add_operator(kmeans)
    wf.connect("in", "tfidf")
    wf.connect("tfidf", "d1")
    wf.connect("d1", "kmeans")
    wf.connect("kmeans", "d2")
    wf.set_target("d2")
    return wf


def test_chain_validates_and_orders():
    wf = build_chain()
    wf.validate()
    assert [op.name for op in wf.topological_operators()] == ["tfidf", "kmeans"]
    assert [d.name for d in wf.source_datasets()] == ["in"]
    assert wf.n_nodes == 5


def test_duplicate_node_rejected():
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("x"))
    with pytest.raises(WorkflowError):
        wf.add_dataset(Dataset("x"))
    tfidf, _ = simple_ops()
    wf.add_operator(tfidf)
    with pytest.raises(WorkflowError):
        wf.add_dataset(Dataset("tfidf"))


def test_edge_must_connect_dataset_and_operator():
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("a"))
    wf.add_dataset(Dataset("b"))
    with pytest.raises(WorkflowError):
        wf.connect("a", "b")


def test_dataset_single_producer():
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("d"))
    tfidf, kmeans = simple_ops()
    wf.add_operator(tfidf)
    wf.add_operator(kmeans)
    wf.connect("tfidf", "d")
    with pytest.raises(WorkflowError):
        wf.connect("kmeans", "d")


def test_unknown_target_rejected():
    wf = AbstractWorkflow()
    with pytest.raises(WorkflowError):
        wf.set_target("nope")


def test_missing_target_fails_validation():
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("in", materialized=True))
    with pytest.raises(WorkflowError):
        wf.validate()


def test_cycle_detection():
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("a"))
    wf.add_dataset(Dataset("b"))
    tfidf, kmeans = simple_ops()
    wf.add_operator(tfidf)
    wf.add_operator(kmeans)
    # tfidf: a -> b ; kmeans: b -> a  (cycle)
    wf.connect("a", "tfidf")
    wf.connect("tfidf", "b")
    wf.connect("b", "kmeans")
    wf.connect("kmeans", "a")
    wf.set_target("a")
    with pytest.raises(WorkflowError):
        wf.validate()


def test_graph_file_parsing_linecount():
    """The LineCountWorkflow graph file of §3.3."""
    lines = [
        "asapServerLog,LineCount,0",
        "LineCount,d1,0",
        "d1,$$target",
    ]
    linecount = AbstractOperator("LineCount", {
        "Constraints.OpSpecification.Algorithm.name": "LineCount",
        "Constraints.Input.number": 1, "Constraints.Output.number": 1,
    })
    ds = Dataset("asapServerLog", {
        "Execution.path": "hdfs:///user/root/asap-server.log",
        "Constraints.Engine.FS": "HDFS",
    }, materialized=True)
    wf = AbstractWorkflow.from_graph_lines(
        lines, {"asapServerLog": ds}, {"LineCount": linecount}, name="LineCountWorkflow"
    )
    assert wf.target == "d1"
    assert wf.op_inputs["LineCount"] == ["asapServerLog"]
    assert wf.op_outputs["LineCount"] == ["d1"]
    assert "d1" in wf.datasets  # auto-created abstract output


def test_graph_file_without_target_raises():
    tfidf, _ = simple_ops()
    with pytest.raises(WorkflowError):
        AbstractWorkflow.from_graph_lines(
            ["a,tfidf,0", "tfidf,b,0"], {}, {"tfidf": tfidf}
        )


def test_graph_file_bad_line_raises():
    with pytest.raises(WorkflowError):
        AbstractWorkflow.from_graph_lines(["just-one-field"], {}, {})


def test_diamond_topological_order():
    """Fan-out/fan-in DAG: both branches precede the join operator."""
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("src", materialized=True))
    for name in ("l", "r", "out"):
        wf.add_dataset(Dataset(name))
    def mk(n):
        return AbstractOperator(n, {
            "Constraints.OpSpecification.Algorithm.name": n})
    wf.add_operator(mk("left"))
    wf.add_operator(mk("right"))
    join = AbstractOperator("join", {
        "Constraints.OpSpecification.Algorithm.name": "join",
        "Constraints.Input.number": 2})
    wf.add_operator(join)
    wf.connect("src", "left")
    wf.connect("src", "right")
    wf.connect("left", "l")
    wf.connect("right", "r")
    wf.connect("l", "join")
    wf.connect("r", "join")
    wf.connect("join", "out")
    wf.set_target("out")
    order = [op.name for op in wf.topological_operators()]
    assert order.index("join") > order.index("left")
    assert order.index("join") > order.index("right")


def test_dataset_accessors():
    ds = Dataset("textData", {
        "Constraints.Engine.FS": "HDFS",
        "Constraints.type": "text",
        "Execution.path": "hdfs:///user/asap/input/textData",
        "Optimization.size": "932E06",
    }, materialized=True)
    assert ds.store == "HDFS"
    assert ds.fmt == "text"
    assert ds.path == "hdfs:///user/asap/input/textData"
    assert ds.size == pytest.approx(932e6)
    ds.size = 1000
    assert ds.size == 1000
    ds.count = 42
    assert ds.count == 42


def test_dataset_signature_distinguishes_formats():
    d1 = Dataset("d", {"Constraints.type": "text"})
    d2 = Dataset("d", {"Constraints.type": "arff"})
    d3 = Dataset("d", {"Constraints.type": "text"})
    assert d1.signature() != d2.signature()
    assert d1.signature() == d3.signature()


def test_with_constraints_returns_modified_copy():
    ds = Dataset("d", {"Constraints.type": "text"})
    moved = ds.with_constraints({"Constraints.Engine.FS": "HDFS"})
    assert moved.store == "HDFS"
    assert ds.store is None


class TestGraphParseErrors:
    """Graph-file errors carry the source line number and offending token."""

    def test_bad_line_reports_line_and_token(self):
        from repro.core.workflow import GraphParseError

        lines = ["a,tfidf,0", "just-one-field", "b,$$target"]
        tfidf, _ = simple_ops()
        with pytest.raises(GraphParseError) as excinfo:
            AbstractWorkflow.from_graph_lines(lines, {}, {"tfidf": tfidf})
        err = excinfo.value
        assert err.line_no == 2
        assert err.token == "just-one-field"
        assert str(err).startswith("line 2: ")
        assert "'just-one-field'" in str(err)

    def test_duplicate_target_reports_line(self):
        from repro.core.workflow import GraphParseError

        tfidf, _ = simple_ops()
        lines = ["a,tfidf,0", "tfidf,b,0", "b,$$target", "a,$$target"]
        with pytest.raises(GraphParseError) as excinfo:
            AbstractWorkflow.from_graph_lines(lines, {}, {"tfidf": tfidf})
        assert excinfo.value.line_no == 4
        assert "duplicate $$target" in str(excinfo.value)

    def test_bad_edge_reports_line_and_edge_token(self):
        from repro.core.workflow import GraphParseError

        # two datasets wired directly together is not a bipartite edge
        lines = ["a,b,0", "b,$$target"]
        with pytest.raises(GraphParseError) as excinfo:
            AbstractWorkflow.from_graph_lines(lines, {}, {})
        assert excinfo.value.line_no == 1
        assert excinfo.value.token == "a,b"

    def test_unknown_target_reports_line(self):
        from repro.core.workflow import GraphParseError

        tfidf, _ = simple_ops()
        lines = ["a,tfidf,0", "tfidf,b,0", "zzz,$$target"]
        with pytest.raises(GraphParseError) as excinfo:
            AbstractWorkflow.from_graph_lines(lines, {}, {"tfidf": tfidf})
        assert excinfo.value.line_no == 3
        assert excinfo.value.token == "zzz"

    def test_missing_target_has_no_line(self):
        from repro.core.workflow import GraphParseError

        tfidf, _ = simple_ops()
        with pytest.raises(GraphParseError) as excinfo:
            AbstractWorkflow.from_graph_lines(
                ["a,tfidf,0", "tfidf,b,0"], {}, {"tfidf": tfidf})
        assert excinfo.value.line_no is None
        assert excinfo.value.token == "$$target"

    def test_graph_parse_error_is_a_workflow_error(self):
        from repro.core.workflow import GraphParseError

        assert issubclass(GraphParseError, WorkflowError)

    def test_cycle_error_is_a_workflow_error(self):
        from repro.core.workflow import WorkflowCycleError

        assert issubclass(WorkflowCycleError, WorkflowError)

    def test_edge_lines_recorded(self):
        tfidf, _ = simple_ops()
        wf = AbstractWorkflow.from_graph_lines(
            ["# header", "a,tfidf,0", "tfidf,b,0", "b,$$target"],
            {}, {"tfidf": tfidf})
        assert wf.edge_lines == {("a", "tfidf"): 2, ("tfidf", "b"): 3}
