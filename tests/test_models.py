"""Unit tests for the regression model zoo (repro.models)."""

import numpy as np
import pytest

from repro.models import (
    Bagging,
    GaussianProcess,
    KFold,
    LeastMedianSquares,
    LinearRegression,
    MultilayerPerceptron,
    RBFNetwork,
    RandomSubspace,
    RegressionByDiscretization,
    RegressionTree,
    UserFunction,
    cross_val_score,
    default_model_zoo,
    rmse,
    select_best_model,
)
from repro.models.base import NotFittedError

RNG = np.random.default_rng(1234)

ALL_MODELS = [
    LinearRegression,
    LeastMedianSquares,
    GaussianProcess,
    lambda: MultilayerPerceptron(epochs=120),
    RBFNetwork,
    RegressionTree,
    Bagging,
    RandomSubspace,
    RegressionByDiscretization,
]


def linear_data(n=60, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-5, 5, size=(n, 3))
    y = 2.0 * X[:, 0] - 1.5 * X[:, 1] + 0.3 * X[:, 2] + 4.0
    return X, y + rng.normal(0, noise, n)


def nonlinear_data(n=120, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 4, size=(n, 2))
    y = np.sin(X[:, 0]) * 3 + X[:, 1] ** 2
    return X, y


@pytest.mark.parametrize("factory", ALL_MODELS)
def test_fit_predict_shapes(factory):
    X, y = linear_data()
    model = factory().fit(X, y)
    preds = model.predict(X)
    assert preds.shape == (len(y),)
    assert np.all(np.isfinite(preds))


@pytest.mark.parametrize("factory", ALL_MODELS)
def test_predict_before_fit_raises(factory):
    with pytest.raises(NotFittedError):
        factory().predict([[1.0, 2.0, 3.0]])


@pytest.mark.parametrize("factory", ALL_MODELS)
def test_feature_count_mismatch_raises(factory):
    X, y = linear_data()
    model = factory().fit(X, y)
    with pytest.raises(ValueError):
        model.predict(np.ones((4, 5)))


@pytest.mark.parametrize("factory", ALL_MODELS)
def test_training_fit_is_reasonable(factory):
    """Every model should beat the constant-mean predictor on its train set."""
    X, y = nonlinear_data()
    model = factory().fit(X, y)
    baseline = rmse(y, np.full_like(y, y.mean()))
    assert rmse(y, model.predict(X)) < baseline


def test_sample_count_mismatch_raises():
    with pytest.raises(ValueError):
        LinearRegression().fit(np.ones((5, 2)), np.ones(4))


def test_zero_samples_raises():
    with pytest.raises(ValueError):
        LinearRegression().fit(np.empty((0, 2)), np.empty(0))


def test_linear_regression_recovers_coefficients():
    X, y = linear_data(noise=0.0)
    model = LinearRegression().fit(X, y)
    np.testing.assert_allclose(model.coef_[:3], [2.0, -1.5, 0.3], atol=1e-8)
    assert model.coef_[3] == pytest.approx(4.0, abs=1e-8)


def test_lms_robust_to_outliers():
    """LMS should ignore gross outliers that wreck plain OLS."""
    X, y = linear_data(n=100, noise=0.05, seed=3)
    y_corrupt = y.copy()
    y_corrupt[::5] += 500.0  # 20% gross outliers
    clean_grid = np.random.default_rng(9).uniform(-5, 5, size=(50, 3))
    truth = 2.0 * clean_grid[:, 0] - 1.5 * clean_grid[:, 1] + 0.3 * clean_grid[:, 2] + 4.0
    ols_err = rmse(truth, LinearRegression().fit(X, y_corrupt).predict(clean_grid))
    lms_err = rmse(truth, LeastMedianSquares().fit(X, y_corrupt).predict(clean_grid))
    assert lms_err < ols_err / 5


def test_gp_interpolates_training_points():
    X = np.linspace(0, 10, 25).reshape(-1, 1)
    y = np.sin(X.ravel())
    model = GaussianProcess(noise=1e-6).fit(X, y)
    assert rmse(y, model.predict(X)) < 0.05


def test_mlp_learns_nonlinear_function():
    X, y = nonlinear_data(n=200)
    model = MultilayerPerceptron(epochs=300, seed=2).fit(X, y)
    assert rmse(y, model.predict(X)) < 0.5


def test_rbf_network_centers_bounded_by_samples():
    X, y = linear_data(n=6)
    model = RBFNetwork(n_centers=50).fit(X, y)
    assert model._centers.shape[0] <= 6


def test_tree_respects_max_depth():
    X, y = nonlinear_data(n=300)
    tree = RegressionTree(max_depth=3).fit(X, y)
    assert tree.depth() <= 3


def test_tree_perfectly_fits_constant_target():
    X = np.arange(20, dtype=float).reshape(-1, 1)
    y = np.full(20, 7.0)
    tree = RegressionTree().fit(X, y)
    np.testing.assert_allclose(tree.predict(X), 7.0)


def test_bagging_reduces_variance_vs_single_tree():
    X, y = nonlinear_data(n=150, seed=5)
    rng = np.random.default_rng(6)
    X_test = rng.uniform(0, 4, size=(100, 2))
    y_test = np.sin(X_test[:, 0]) * 3 + X_test[:, 1] ** 2
    tree_err = rmse(y_test, RegressionTree(max_depth=10).fit(X, y).predict(X_test))
    bag_err = rmse(y_test, Bagging(n_estimators=25, max_depth=10).fit(X, y).predict(X_test))
    assert bag_err <= tree_err * 1.1


def test_random_subspace_uses_feature_subsets():
    X, y = linear_data(n=80)
    model = RandomSubspace(n_estimators=10, subspace_fraction=0.5).fit(X, y)
    sizes = {len(f) for f in model._subspaces}
    assert sizes == {2}  # round(0.5 * 3) == 2


def test_random_subspace_rejects_bad_fraction():
    with pytest.raises(ValueError):
        RandomSubspace(subspace_fraction=0.0)


def test_discretization_outputs_bin_means():
    X, y = linear_data(n=100)
    model = RegressionByDiscretization(n_bins=5).fit(X, y)
    preds = set(np.round(model.predict(X), 9))
    assert preds <= set(np.round(model._bin_means, 9))
    assert len(model._bin_means) <= 5


def test_user_function_wraps_closed_form():
    model = UserFunction(lambda row: 2.0 * row[0] + 1.0)
    np.testing.assert_allclose(model.predict([[1.0], [2.0]]), [3.0, 5.0])


def test_predict_one_returns_scalar():
    X, y = linear_data()
    model = LinearRegression().fit(X, y)
    value = model.predict_one([1.0, 1.0, 1.0])
    assert isinstance(value, float)


def test_1d_input_promoted_to_column():
    X = np.linspace(0, 1, 30)
    y = 2 * X
    model = LinearRegression().fit(X, y)
    assert model.n_features_ == 1


# -- cross-validation machinery -------------------------------------------


def test_kfold_partitions_all_indices():
    kf = KFold(n_splits=4, seed=0)
    seen = []
    for train, test in kf.split(23):
        assert set(train) & set(test) == set()
        seen.extend(test)
    assert sorted(seen) == list(range(23))


def test_kfold_rejects_single_split():
    with pytest.raises(ValueError):
        KFold(n_splits=1)


def test_kfold_rejects_too_few_samples():
    with pytest.raises(ValueError):
        list(KFold(n_splits=5).split(3))


def test_cross_val_score_positive():
    X, y = linear_data()
    score = cross_val_score(LinearRegression, X, y)
    assert score >= 0


def test_select_best_model_prefers_linear_on_linear_data():
    X, y = linear_data(n=100, noise=0.01)
    _, winner, scores = select_best_model(X, y)
    assert scores[winner] == min(scores.values())
    # On exactly-linear data the linear fits must be near the top.
    assert scores["LinearRegression"] < np.median(list(scores.values()))


def test_select_best_model_tiny_dataset_falls_back():
    X = np.array([[0.0], [1.0]])
    y = np.array([0.0, 1.0])
    model, winner, scores = select_best_model(X, y)
    assert winner == "LinearRegression"
    assert scores == {}


def test_default_zoo_has_all_paper_models():
    names = set(default_model_zoo())
    assert names == {
        "GaussianProcess",
        "MultilayerPerceptron",
        "LinearRegression",
        "LeastMedianSquares",
        "Bagging",
        "RandomSubspace",
        "RegressionByDiscretization",
        "RBFNetwork",
    }
