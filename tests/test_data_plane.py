"""End-to-end data plane: operators compute real artifacts through HDFS."""

import pytest

from repro.analytics import generate_corpus, kmeans, tfidf_vectorize
from repro.core import AbstractOperator, Dataset, IReS, MaterializedOperator


@pytest.fixture
def ires_with_real_pipeline():
    """A text-clustering workflow whose operators carry real implementations."""
    ires = IReS()
    corpus = generate_corpus(80, n_topics=3, seed=21)
    ires.cloud.hdfs.put("/input/corpus", len(" ".join(corpus)), payload=corpus)

    ires.register_operator(MaterializedOperator("tfidf_spark", {
        "Constraints.OpSpecification.Algorithm.name": "TF_IDF",
        "Constraints.Engine": "Spark",
        "Constraints.Input.number": 1, "Constraints.Output.number": 1,
        "Constraints.Input0.Engine.FS": "HDFS",
        "Constraints.Output0.Engine.FS": "HDFS",
    }, impl=lambda docs: tfidf_vectorize(docs, min_df=2)))
    ires.register_operator(MaterializedOperator("kmeans_spark", {
        "Constraints.OpSpecification.Algorithm.name": "kmeans",
        "Constraints.Engine": "Spark",
        "Constraints.Input.number": 1, "Constraints.Output.number": 1,
        "Constraints.Input0.Engine.FS": "HDFS",
        "Constraints.Output0.Engine.FS": "HDFS",
    }, impl=lambda tfidf: kmeans(tfidf.matrix, k=3, seed=3)))
    for alg in ("TF_IDF", "kmeans"):
        ires.register_abstract(AbstractOperator(alg, {
            "Constraints.OpSpecification.Algorithm.name": alg}))
    ires.register_dataset(Dataset("corpus", {
        "Constraints.Engine.FS": "HDFS",
        "Execution.path": "hdfs:///input/corpus",
        "Optimization.count": 80,
        "Optimization.size": 80e3,
    }, materialized=True))
    wf = ires.workflow_from_graph("real-clustering", [
        "corpus,TF_IDF,0", "TF_IDF,vectors,0",
        "vectors,kmeans,0", "kmeans,clusters,0", "clusters,$$target",
    ])
    return ires, wf, corpus


def test_artifacts_flow_through_pipeline(ires_with_real_pipeline):
    ires, wf, corpus = ires_with_real_pipeline
    report = ires.execute(wf)
    assert report.succeeded
    vectors = ires.cloud.hdfs.get("/artifacts/real-clustering/vectors")
    clusters = ires.cloud.hdfs.get("/artifacts/real-clustering/clusters")
    assert vectors is not None and clusters is not None
    assert vectors.n_documents == len(corpus)
    assert clusters.k == 3
    assert len(clusters.labels) == len(corpus)


def test_no_impl_means_no_artifact():
    ires = IReS()
    from repro.scenarios import setup_graph_analytics

    make = setup_graph_analytics(ires)
    workflow = make(1e5)
    report = ires.execute(workflow)
    assert report.succeeded
    # the sized intermediate exists, but no artifact (operators carry no impl)
    assert not ires.cloud.hdfs.ls("/artifacts/")


def test_hdfs_path_normalization():
    from repro.execution.enforcer import hdfs_path

    assert hdfs_path("hdfs:///user/x") == "/user/x"
    assert hdfs_path("hdfs://namenode/user/x") == "/user/x"  # host stripped
    assert hdfs_path("/local/path") is None
    assert hdfs_path(None) is None
