"""Tests for cross-execution intermediate reuse (repro.execution.cache)."""

from repro.core import IReS
from repro.execution.cache import ResultCache, step_key
from repro.scenarios import setup_helloworld, setup_text_analytics


def test_repeat_execution_skips_completed_steps():
    ires = IReS()
    make = setup_helloworld(ires)
    cache = ResultCache()
    first = ires.executor.execute(make(), cache=cache)
    assert first.succeeded
    assert len(cache) == 4  # all four operators cached
    second = ires.executor.execute(make(), cache=cache)
    assert second.succeeded
    # the whole workflow was reused: nothing re-executed
    operator_runs = [e for e in second.executions if e.engine != "move"]
    assert operator_runs == []
    assert second.sim_time < first.sim_time


def test_cache_miss_on_different_input_size():
    ires = IReS()
    make = setup_text_analytics(ires)
    cache = ResultCache()
    ires.executor.execute(make(5e3), cache=cache)
    before_hits = cache.hits
    report = ires.executor.execute(make(1e5), cache=cache)
    # different corpus size -> different keys -> everything re-executed
    assert cache.hits == before_hits
    assert [e for e in report.executions if e.engine != "move"]


def test_partial_prefix_reuse():
    """Extending a cached workflow re-runs only the new suffix."""
    ires = IReS()
    make = setup_text_analytics(ires)
    cache = ResultCache()
    workflow = make(2.5e4)
    ires.executor.execute(workflow, cache=cache)
    # same workflow again: tf-idf AND k-means both come from the cache
    again = ires.executor.execute(make(2.5e4), cache=cache)
    names = [e.step.abstract_name for e in again.executions
             if e.engine != "move"]
    assert names == []


def test_invalidate_clears_everything():
    ires = IReS()
    make = setup_helloworld(ires)
    cache = ResultCache()
    ires.executor.execute(make(), cache=cache)
    cache.invalidate()
    assert len(cache) == 0
    report = ires.executor.execute(make(), cache=cache)
    assert [e for e in report.executions if e.engine != "move"]


def test_step_key_sensitive_to_params_and_inputs():
    from repro.core import Dataset, MaterializedOperator
    from repro.core.workflow import PlanStep

    op_a = MaterializedOperator("op", {"Execution.Param.iterations": 10})
    op_b = MaterializedOperator("op", {"Execution.Param.iterations": 20})
    ds = Dataset("d", {"Optimization.size": 100})
    def mk(op, d):
        return PlanStep(op, (d,), (Dataset("out"),), 1.0, "abs")
    assert step_key(mk(op_a, ds)) != step_key(mk(op_b, ds))
    ds2 = Dataset("d", {"Optimization.size": 200})
    assert step_key(mk(op_a, ds)) != step_key(mk(op_a, ds2))
    assert step_key(mk(op_a, ds)) == step_key(mk(op_a, ds))


def test_moves_not_cached():
    from repro.core import Dataset
    from repro.core.operators import MoveOperator
    from repro.core.workflow import PlanStep

    cache = ResultCache()
    move = PlanStep(MoveOperator("a", "b"), (Dataset("d"),),
                    (Dataset("d"),), 0.1)
    cache.store(move)
    assert len(cache) == 0


def test_platform_reuse_flag():
    ires = IReS()
    make = setup_helloworld(ires)
    first = ires.execute(make(), reuse=True)
    second = ires.execute(make(), reuse=True)
    assert first.succeeded and second.succeeded
    assert [e for e in second.executions if e.engine != "move"] == []
    # without the flag the cache is bypassed
    third = ires.execute(make())
    assert [e for e in third.executions if e.engine != "move"]
