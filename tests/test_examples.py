"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert EXAMPLES_DIR / "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()  # examples narrate what they do
