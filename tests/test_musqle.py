"""Tests for the MuSQLE side system (repro.musqle)."""

import numpy as np
import pytest

from repro.engines import MemoryExceededError, SimClock
from repro.musqle import (
    ALL_QUERIES,
    FILTER_QUERIES,
    JOIN_QUERIES,
    JoinGraph,
    LocalSQLEngine,
    Metastore,
    MemSQLCostModel,
    MuSQLE,
    MultiEngineOptimizer,
    PostgresCostModel,
    QueryEstimate,
    SparkSQLCostModel,
    build_default_deployment,
    estimate_filtered,
    estimate_join,
)
from repro.musqle.cost_models import JoinShape
from repro.musqle.optimizer import NoPlanError
from repro.musqle.plan import SQLPlanNode, count_moves, engines_used
from repro.musqle.queries import query_tables
from repro.sqlengine import generate_tpch, parse_query
from repro.sqlengine.parser import Filter, JoinCondition
from repro.sqlengine.schema import ColumnStats, TableStats
from repro.sqlengine.tpch import schemas


@pytest.fixture(scope="module")
def deployment():
    return build_default_deployment(scale_factor=2.0, seed=3)


def stats_of(n_rows, distinct, cols=("k",)):
    return TableStats(n_rows, len(cols), {
        c: ColumnStats(distinct, 0.0, float(distinct)) for c in cols
    })


class TestCardinality:
    def test_equality_filter_selectivity(self):
        s = stats_of(1000, 100)
        out = estimate_filtered(s, [Filter("t", "k", "=", 5)])
        assert out.n_rows == 10

    def test_range_filter_interpolation(self):
        s = stats_of(1000, 100)  # values span [0, 100]
        out = estimate_filtered(s, [Filter("t", "k", ">", 75.0)])
        assert out.n_rows == pytest.approx(250, rel=0.05)

    def test_filters_compose(self):
        s = stats_of(1000, 10)
        out = estimate_filtered(
            s, [Filter("t", "k", "=", 1), Filter("t", "k", "!=", 2)])
        assert out.n_rows == pytest.approx(90, abs=2)

    def test_join_cardinality_formula(self):
        left = stats_of(1000, 100, cols=("a",))
        right = stats_of(500, 50, cols=("b",))
        out = estimate_join(left, right, [JoinCondition("l", "a", "r", "b")])
        assert out.n_rows == 1000 * 500 // 100
        assert set(out.columns) == {"a", "b"}

    def test_cartesian_when_no_condition(self):
        out = estimate_join(stats_of(10, 10), stats_of(20, 20, cols=("c",)), [])
        assert out.n_rows == 200


class TestCostModels:
    def test_postgres_pages(self):
        model = PostgresCostModel()
        # 1024 rows x 1 col x 8B = exactly one page
        assert model.scan_cost(stats_of(1024, 10)) == pytest.approx(1.0)

    def test_memsql_memory_cliff(self):
        model = MemSQLCostModel(memory_capacity_bytes=1000.0)
        big = JoinShape(left_rows=1e6, right_rows=1e6, out_rows=1e6)
        assert model.memory_needed_bytes(big) > 1000.0

    def test_spark_broadcast_cheaper_for_small_side(self):
        model = SparkSQLCostModel(broadcast_threshold_rows=1e5)
        shape = JoinShape(left_rows=100, right_rows=1e6, out_rows=1e4)
        assert model.bhj_cost(shape) < model.smj_cost(shape)
        assert model.join_cost(shape) == model.bhj_cost(shape)

    def test_spark_smj_for_two_big_sides(self):
        model = SparkSQLCostModel(broadcast_threshold_rows=10)
        shape = JoinShape(left_rows=1e6, right_rows=1e6, out_rows=1e5)
        assert model.join_cost(shape) == model.smj_cost(shape)

    def test_seconds_linear_in_native_cost(self):
        model = PostgresCostModel(page_seconds=1e-3)
        assert model.seconds(1000) == pytest.approx(model.fixed_seconds + 1.0)


class TestLocalEngine:
    def test_scan_estimate_uses_real_stats(self, deployment):
        pg = deployment.engines["PostgreSQL"]
        est = pg.get_stats("SELECT * FROM nation")
        assert est.stats.n_rows == 25

    def test_filter_estimate_close_to_actual(self, deployment):
        pg = deployment.engines["PostgreSQL"]
        est = pg.get_stats("SELECT * FROM nation WHERE n_name = 'GERMANY'")
        assert est.stats.n_rows == 1

    def test_injected_stats_visible_to_explain(self, deployment):
        spark = deployment.engines["SparkSQL"]
        spark.inject_stats("phantom", stats_of(1234, 50, cols=("o_orderkey",)))
        est = spark.get_stats(
            "SELECT * FROM phantom, orders WHERE phantom.o_orderkey = orders.o_orderkey")
        assert est.stats.n_rows > 0
        assert spark.inject_calls >= 1

    def test_execute_charges_clock(self, deployment):
        pg = deployment.engines["PostgreSQL"]
        before = deployment.clock.now
        result = pg.execute("SELECT * FROM region")
        assert result.n_rows == 5
        assert deployment.clock.now > before

    def test_execute_missing_table_raises(self, deployment):
        pg = deployment.engines["PostgreSQL"]
        with pytest.raises(Exception):
            pg.execute("SELECT * FROM lineitem")

    def test_load_table_then_query(self, deployment):
        pg = deployment.engines["PostgreSQL"]
        orders = deployment.tables["orders"]
        seconds = pg.load_table("orders_copy", orders.renamed("orders_copy"))
        assert seconds > 0
        est = pg.get_stats("SELECT * FROM orders_copy")
        assert est.stats.n_rows == orders.n_rows

    def test_memsql_oom_on_estimate(self):
        clock = SimClock()
        tables = generate_tpch(2.0, seed=0)
        mem = LocalSQLEngine(
            "MemSQL", MemSQLCostModel(memory_capacity_bytes=100.0), clock,
            {"orders": tables["orders"], "lineitem": tables["lineitem"]},
        )
        est = mem.get_stats(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey")
        assert est.native_cost == float("inf")
        with pytest.raises(MemoryExceededError):
            mem.execute("SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey")


class TestJoinGraph:
    def test_connectivity(self, deployment):
        sch = schemas(deployment.tables)
        q = parse_query(JOIN_QUERIES[5], sch)
        graph = JoinGraph(q)
        assert graph.is_connected(graph.full_mask)
        # customer and lineitem are NOT directly connected
        mask = graph.mask_of(["customer", "lineitem"])
        assert not graph.is_connected(mask)

    def test_cross_conditions(self, deployment):
        sch = schemas(deployment.tables)
        q = parse_query(JOIN_QUERIES[5], sch)
        graph = JoinGraph(q)
        m1 = graph.mask_of(["customer"])
        m2 = graph.mask_of(["orders", "lineitem"])
        conds = graph.cross_conditions(m1, m2)
        assert len(conds) == 1
        assert conds[0].left_column == "c_custkey"


class TestOptimizer:
    def test_single_table_scan_plan(self, deployment):
        m = MuSQLE(deployment)
        plan, _ = m.optimize("SELECT * FROM region WHERE r_name = 'ASIA'")
        assert isinstance(plan, SQLPlanNode)
        assert plan.engine == "PostgreSQL"
        assert plan.inputs == []

    def test_colocated_join_needs_no_move(self, deployment):
        m = MuSQLE(deployment)
        plan, _ = m.optimize(JOIN_QUERIES[0])  # region ⋈ nation, both in PG
        assert count_moves(plan) == 0
        assert engines_used(plan) == {"PostgreSQL"}

    def test_cross_engine_join_moves_something(self, deployment):
        m = MuSQLE(deployment)
        plan, _ = m.optimize(JOIN_QUERIES[2])  # customer(PG) ⋈ orders(Spark)
        assert count_moves(plan) >= 1

    def test_all_queries_optimizable_and_executable(self, deployment):
        m = MuSQLE(deployment)
        for sql in ALL_QUERIES:
            plan, stats = m.optimize(sql)
            assert np.isfinite(plan.est_seconds)
            assert stats.csg_cmp_pairs >= 1
            table, info = m.execute(plan)
            assert info.sim_seconds >= 0

    def test_plan_result_matches_direct_execution(self, deployment):
        """The multi-engine plan returns exactly the rows a single catalog
        execution would."""
        from repro.sqlengine import execute_query

        m = MuSQLE(deployment)
        sql = FILTER_QUERIES[4]  # Q13
        plan, _ = m.optimize(sql)
        table, _ = m.execute(plan)
        q = parse_query(sql, schemas(deployment.tables))
        expected = execute_query(q, deployment.tables)
        assert table.n_rows == expected.n_rows

    def test_optimizer_requires_engines(self):
        with pytest.raises(ValueError):
            MultiEngineOptimizer({})

    def test_missing_table_everywhere_raises(self, deployment):
        from repro.sqlengine.parser import SQLSyntaxError

        m = MuSQLE(deployment)
        # strip 'region' from PG: with no engine holding it, the query is
        # either unparseable (table unknown to every schema) or unplannable
        pg = deployment.engines["PostgreSQL"]
        region = pg.resident.pop("region")
        try:
            with pytest.raises((NoPlanError, SQLSyntaxError)):
                m.optimize(JOIN_QUERIES[0])
        finally:
            pg.resident["region"] = region

    def test_estimation_error_reasonable(self, deployment):
        """Estimated vs simulated times stay within a small factor (Fig 6)."""
        m = MuSQLE(deployment)
        for sql in JOIN_QUERIES[:6]:
            plan, _ = m.optimize(sql)
            _, info = m.execute(plan)
            if info.sim_seconds > 0.05:
                assert plan.est_seconds == pytest.approx(
                    info.sim_seconds, rel=1.0)


class TestMetastore:
    def test_register_and_lookup(self):
        store = Metastore()
        store.register_table("orders", "SparkSQL")
        assert store.engines_holding("orders") == {"SparkSQL"}
        assert store.engines_holding("nothing") == set()

    def test_calibration_recovers_linear_translation(self):
        store = Metastore()
        rng = np.random.default_rng(0)
        for _ in range(30):
            native = rng.uniform(10, 1000)
            store.log_measurement("E", native, 0.002 * native + 0.5)
        slope, intercept = store.calibrate("E")
        assert slope == pytest.approx(0.002, rel=0.01)
        assert intercept == pytest.approx(0.5, rel=0.05)
        est = QueryEstimate(native_cost=500.0, stats=stats_of(1, 1),
                            est_seconds=999.0)
        assert store.translate("E", est) == pytest.approx(1.5, rel=0.01)

    def test_translate_without_calibration_uses_engine_estimate(self):
        store = Metastore()
        est = QueryEstimate(native_cost=10.0, stats=stats_of(1, 1), est_seconds=3.3)
        assert store.translate("E", est) == 3.3

    def test_correlation(self):
        store = Metastore()
        for native in (1.0, 2.0, 3.0, 4.0):
            store.log_measurement("E", native, native * 2)
        assert store.correlation("E") == pytest.approx(1.0)
        assert store.correlation("unknown") is None

    def test_infinite_measurements_ignored(self):
        store = Metastore()
        store.log_measurement("E", float("inf"), 1.0)
        assert store.measurements.get("E", []) == []


class TestQueries:
    def test_query_counts(self):
        assert len(JOIN_QUERIES) == 9
        assert len(FILTER_QUERIES) == 9
        assert len(ALL_QUERIES) == 18

    def test_all_queries_parse(self, deployment):
        sch = schemas(deployment.tables)
        for sql in ALL_QUERIES:
            q = parse_query(sql, sch)
            assert len(q.tables) >= 1

    def test_query_tables_helper(self):
        assert query_tables(JOIN_QUERIES[0]) == ["region", "nation"]

    def test_filter_queries_have_filters(self, deployment):
        sch = schemas(deployment.tables)
        for sql in FILTER_QUERIES:
            assert parse_query(sql, sch).filters


class TestCalibrationLoop:
    def test_runs_improve_translation(self, deployment):
        """Executing queries populates the log; calibration tightens
        estimates (the §V-B machinery)."""
        m = MuSQLE(deployment)
        for sql in JOIN_QUERIES[:5]:
            m.run(sql)
        m.metastore.calibrate_all()
        assert m.metastore.calibration  # at least one engine calibrated


class TestConfidenceDiscarding:
    """§V-B: estimates of low-correlation engines get randomly discarded."""

    def _musqle_with_correlations(self, good: float):
        import numpy as np
        from repro.musqle.optimizer import MultiEngineOptimizer

        deployment = build_default_deployment(scale_factor=1.0, seed=21)
        store = deployment.metastore()
        rng = np.random.default_rng(0)
        for engine in deployment.engines:
            for _ in range(30):
                native = float(rng.uniform(10, 1000))
                if engine == "MemSQL" and good < 1.0:
                    # uncorrelated garbage estimates for MemSQL
                    store.log_measurement(engine, native,
                                          float(rng.uniform(0.1, 10.0)))
                else:
                    store.log_measurement(engine, native, 0.001 * native)
        optimizer = MultiEngineOptimizer(
            deployment.engines, store, use_confidence=True, seed=3)
        return deployment, optimizer, store

    def test_correlated_engines_never_discarded(self):
        _, optimizer, store = self._musqle_with_correlations(good=1.0)
        assert all(not optimizer._distrusted(e)
                   for e in ("PostgreSQL", "SparkSQL")
                   for _ in range(20))

    def test_uncorrelated_engine_mostly_discarded(self):
        _, optimizer, store = self._musqle_with_correlations(good=0.0)
        corr = store.correlation("MemSQL")
        assert abs(corr) < 0.5
        discards = sum(optimizer._distrusted("MemSQL") for _ in range(50))
        assert discards >= 25  # discarded with high probability

    def test_optimization_still_succeeds_with_distrust(self):
        deployment, optimizer, _ = self._musqle_with_correlations(good=0.0)
        plan, _ = optimizer.optimize(JOIN_QUERIES[3])
        assert plan.est_seconds >= 0

    def test_confidence_off_by_default(self):
        deployment = build_default_deployment(scale_factor=1.0, seed=22)
        m = MuSQLE(deployment)
        assert m.optimizer.use_confidence is False
        assert not m.optimizer._distrusted("MemSQL")


class TestRunFinalization:
    """run() applies the query's projection/aggregation on the final result."""

    def test_projection_applied(self, deployment):
        m = MuSQLE(deployment)
        table, _, _ = m.run(
            "SELECT c_custkey, o_totalprice FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        assert table.column_names == ["c_custkey", "o_totalprice"]

    def test_aggregate_query_end_to_end(self, deployment):
        """A federated GROUP BY: SPJ core across engines, aggregation at
        the mediator."""
        m = MuSQLE(deployment)
        table, _, _ = m.run(
            "SELECT n_name, count(*) AS orders_count "
            "FROM customer, orders, nation "
            "WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey "
            "GROUP BY n_name")
        assert set(table.column_names) == {"n_name", "orders_count"}
        # grand total equals the number of orders (every order has a nation)
        assert table.column("orders_count").sum() == \
            deployment.tables["orders"].n_rows

    def test_select_star_unchanged(self, deployment):
        m = MuSQLE(deployment)
        table, _, _ = m.run(JOIN_QUERIES[0])
        assert "r_name" in table.column_names
        assert "n_name" in table.column_names
