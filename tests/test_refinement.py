"""Tests for online model refinement: batching cadence and drift refits."""

import pytest

from repro.core.modeler import Modeler
from repro.core.refinement import ModelRefiner
from repro.engines.monitoring import MetricRecord, MetricsCollector
from repro.obs.accuracy import AccuracyLedger, LedgerEntry


def _rec(algorithm="count", engine="E1", n=1e5, exec_time=None, success=True,
         factor=1.0):
    """A synthetic monitored run: time linear in count, scaled by factor."""
    if exec_time is None:
        exec_time = (5.0 + 1e-4 * n) * factor
    return MetricRecord(
        operator=algorithm, algorithm=algorithm, engine=engine,
        exec_time=exec_time, started_at=0.0, success=success,
        input_size=n * 100.0, input_count=n, cores=4, memory_gb=8.0,
    )


def _stack(refit_every=3):
    collector = MetricsCollector()
    modeler = Modeler(collector)
    return collector, modeler, ModelRefiner(modeler, refit_every=refit_every)


class TestRefitBatching:
    def test_refit_every_counts_per_pair_under_interleaving(self):
        collector, modeler, refiner = _stack(refit_every=3)
        triggers = []
        # strictly interleaved streams of two (operator, engine) pairs:
        # each pair's counter must reach 3 independently
        for i in range(6):
            pair = ("count", "E1") if i % 2 == 0 else ("sort", "E2")
            record = _rec(*pair, n=1e4 * (i + 1))
            collector.record(record)
            if refiner.observe(record):
                triggers.append((i, pair))
        assert triggers == [(4, ("count", "E1")), (5, ("sort", "E2"))]
        assert refiner.refits == 2
        assert modeler.get("count", "E1") is not None
        assert modeler.get("sort", "E2") is not None

    def test_failed_records_do_not_advance_the_batch(self):
        collector, _, refiner = _stack(refit_every=2)
        for i in range(3):
            record = _rec(n=1e4 * (i + 1), success=(i != 1))
            collector.record(record)
            assert refiner.observe(record) is False or i == 2
        # two successes + one failure: exactly one batch of 2 completed
        assert refiner.refits == 1

    def test_refit_every_validated(self):
        _, modeler, _ = _stack()
        with pytest.raises(ValueError):
            ModelRefiner(modeler, refit_every=0)

    def test_flush_trains_pending_pairs(self):
        collector, modeler, refiner = _stack(refit_every=10)
        for i in range(3):
            record = _rec(n=1e4 * (i + 1))
            collector.record(record)
            refiner.observe(record)
        assert modeler.get("count", "E1") is None
        assert refiner.flush() == 1
        assert modeler.get("count", "E1") is not None


class TestRefitNow:
    def test_bypasses_batching_and_resets_pending(self):
        collector, modeler, refiner = _stack(refit_every=3)
        for i in range(2):
            record = _rec(n=1e4 * (i + 1))
            collector.record(record)
            refiner.observe(record)
        assert refiner.refit_now("count", "E1") is True
        assert refiner.refits == 1
        # pending was reset: the next observation starts a fresh batch
        record = _rec(n=5e4)
        collector.record(record)
        assert refiner.observe(record) is False

    def test_returns_false_without_samples(self):
        _, _, refiner = _stack()
        assert refiner.refit_now("never", "seen") is False
        assert refiner.refits == 0

    def test_window_trains_on_post_drift_records(self):
        collector, modeler, refiner = _stack()
        counts = (1e4, 3e4, 1e5, 3e5)
        for n in counts * 2:
            collector.record(_rec(n=n))
        # the engine degrades 4x; newest records reflect the new reality
        for n in counts * 2:
            collector.record(_rec(n=n, factor=4.0))
        features = {"input_size": 1e5 * 100.0, "input_count": 1e5,
                    "cores": 4.0, "memory_gb": 8.0}
        truth = (5.0 + 1e-4 * 1e5) * 4.0

        assert refiner.refit_now("count", "E1") is True
        stale_error = abs(modeler.estimate("count", "E1", features) - truth)
        assert refiner.refit_now("count", "E1", window=8) is True
        fresh_error = abs(modeler.estimate("count", "E1", features) - truth)
        # all-history training averages pre- and post-drift; a window learns
        # only the degraded engine
        assert fresh_error < stale_error
        assert fresh_error / truth < 0.1


class TestRefitReducesLedgerError:
    def test_windowed_refit_recovers_ledger_mape(self):
        """Satellite acceptance at the modeling layer: a drifting engine's
        ledger MAPE falls back down once the drift refit retrains on the
        post-drift window."""
        collector, modeler, refiner = _stack()
        ledger = AccuracyLedger(recent_window=4)
        counts = (1e4, 3e4, 1e5, 3e5)
        features = {n: {"input_size": n * 100.0, "input_count": n,
                        "cores": 4.0, "memory_gb": 8.0} for n in counts}

        def run_and_ledger(n, factor, index):
            actual = (5.0 + 1e-4 * n) * factor
            predicted = modeler.estimate("count", "E1", features[n])
            collector.record(_rec(n=n, factor=factor))
            ledger.record(LedgerEntry(
                run_id="r", workflow="wf", step="count", operator="count",
                engine="E1", predicted={"execTime": predicted},
                actual={"execTime": actual}, at=float(index)))

        for n in counts * 2:
            collector.record(_rec(n=n))
        assert modeler.train("count", "E1") is not None

        index = 0
        for n in counts:  # healthy phase
            run_and_ledger(n, 1.0, index)
            index += 1
        healthy = ledger.stats_for("count", "E1").recent_mape
        assert healthy < 0.05

        for n in counts:  # drifted, model still stale
            run_and_ledger(n, 4.0, index)
            index += 1
        drifted = ledger.stats_for("count", "E1").recent_mape
        assert drifted > 0.5

        assert refiner.refit_now("count", "E1", window=4) is True
        for n in counts:  # post-refit predictions track the new reality
            run_and_ledger(n, 4.0, index)
            index += 1
        recovered = ledger.stats_for("count", "E1").recent_mape
        assert recovered < 0.1
        assert recovered < drifted
