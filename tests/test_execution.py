"""Tests for the executor layer: enforcement, monitoring, replanning."""

import pytest

from repro.core import IReS
from repro.execution import IRES_REPLAN, TRIVIAL_REPLAN, WorkflowExecutor
from repro.execution.enforcer import ExecutionFailed
from repro.scenarios import (
    setup_graph_analytics,
    setup_helloworld,
    setup_text_analytics,
)


def test_unknown_strategy_rejected():
    ires = IReS()
    with pytest.raises(ValueError):
        WorkflowExecutor(ires.cloud, ires.planner, strategy="bogus")


def test_execute_simple_workflow_end_to_end():
    ires = IReS()
    make = setup_graph_analytics(ires)
    report = ires.execute(make(1e6))
    assert report.succeeded
    assert report.replans == 0
    assert report.engines_used() == ["Java"]
    assert report.sim_time > 0
    assert report.initial_planning_seconds > 0
    # monitoring recorded the run
    assert len(ires.cloud.collector.for_operator("pagerank", "Java")) == 1


def test_hybrid_execution_includes_move():
    ires = IReS()
    make = setup_text_analytics(ires)
    report = ires.execute(make(2.5e4))
    assert report.succeeded
    engines = report.engines_used()
    assert "scikit" in engines and "Spark" in engines
    assert any(e.engine == "move" for e in report.executions)


def test_failure_triggers_ires_replan_and_reuse():
    ires = IReS()
    make = setup_helloworld(ires)
    plan = ires.plan(make())
    victim = plan.step_for_operator("HelloWorld2").engine
    ires.fault_injector.kill_engine_at(victim, trigger_operator="HelloWorld2")
    report = ires.execute(make())
    assert report.succeeded
    assert report.replans == 1
    assert len(report.failures) == 1
    # IResReplan reuses the completed HelloWorld/HelloWorld1 outputs:
    names = [e.step.abstract_name for e in report.executions
             if e.success and e.engine != "move"]
    assert names.count("HelloWorld") == 1
    assert names.count("HelloWorld1") == 1
    # the replanned HelloWorld2 runs on a different engine
    hw2_engines = [e.engine for e in report.executions
                   if e.step.abstract_name == "HelloWorld2"]
    assert hw2_engines[-1] != victim


def test_trivial_replan_reexecutes_completed_steps():
    ires = IReS(strategy=TRIVIAL_REPLAN)
    make = setup_helloworld(ires)
    plan = ires.plan(make())
    victim = plan.step_for_operator("HelloWorld2").engine
    ires.fault_injector.kill_engine_at(victim, trigger_operator="HelloWorld2")
    report = ires.execute(make())
    assert report.succeeded
    names = [e.step.abstract_name for e in report.executions
             if e.success and e.engine != "move"]
    assert names.count("HelloWorld") == 2  # re-executed from scratch
    assert names.count("HelloWorld1") == 2


def test_ires_replan_faster_than_trivial():
    """The §4.5 headline: IResReplan beats TrivialReplan on execution time."""

    def run(strategy):
        ires = IReS(strategy=strategy)
        make = setup_helloworld(ires)
        plan = ires.plan(make())
        victim = plan.step_for_operator("HelloWorld3").engine
        ires.fault_injector.kill_engine_at(victim, trigger_operator="HelloWorld3")
        return ires.execute(make())

    ires_report = run(IRES_REPLAN)
    trivial_report = run(TRIVIAL_REPLAN)
    assert ires_report.succeeded and trivial_report.succeeded
    assert ires_report.sim_time < trivial_report.sim_time


def test_replanning_exhaustion_raises():
    ires = IReS()
    make = setup_graph_analytics(ires)
    # Kill every pagerank-capable engine as soon as the operator starts.
    ires.fault_injector.kill_engine_at("Java", trigger_operator="pagerank")
    ires.fault_injector.kill_engine_at("Hama", trigger_operator="pagerank")
    ires.fault_injector.kill_engine_at("Spark", trigger_operator="pagerank")
    with pytest.raises(ExecutionFailed):
        ires.execute(make(1e6))


def test_report_accounting():
    ires = IReS()
    make = setup_helloworld(ires)
    report = ires.execute(make())
    assert report.strategy == IRES_REPLAN
    assert len(report.plans) == 1
    assert report.replanning_seconds == 0.0
    assert all(e.success for e in report.executions)
    total = sum(e.sim_seconds for e in report.executions)
    assert report.sim_time == pytest.approx(total)


def test_execution_feeds_model_refinement():
    ires = IReS(refit_every=1)
    make = setup_graph_analytics(ires)
    for edges in (1e5, 1e6):
        ires.execute(make(edges))
    assert ires.modeler.get("pagerank", "Java") is not None


def test_critical_path_equals_sim_time_for_chains():
    """A linear chain admits no parallelism."""
    ires = IReS()
    make = setup_helloworld(ires)
    report = ires.execute(make())
    assert report.critical_path_seconds == pytest.approx(report.sim_time)


def test_critical_path_shorter_for_parallel_branches():
    """The relational workflow's q1 and q2 are independent, so the
    critical path is shorter than the serialized simulated time."""
    from repro.scenarios import setup_relational_analytics

    ires = IReS()
    make = setup_relational_analytics(ires)
    report = ires.execute(make(10))
    assert report.succeeded
    assert report.critical_path_seconds < report.sim_time * 0.999


def test_critical_path_empty_report_is_zero():
    from repro.execution import ExecutionReport

    report = ExecutionReport(workflow="x", strategy=IRES_REPLAN,
                             succeeded=False, sim_time=0.0)
    assert report.critical_path_seconds == 0.0
