"""Unit tests for the NSGA-II implementation (repro.moea)."""

import numpy as np
import pytest

from repro.moea import NSGA2, Individual, Problem, crowding_distance, fast_non_dominated_sort
from repro.moea.nsga2 import dominates


def make_individuals(points):
    return [Individual(x=np.zeros(1), objectives=np.array(p, dtype=float)) for p in points]


def test_dominates_basic():
    assert dominates(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
    assert dominates(np.array([1.0, 2.0]), np.array([1.0, 3.0]))
    assert not dominates(np.array([1.0, 3.0]), np.array([2.0, 2.0]))
    assert not dominates(np.array([1.0, 1.0]), np.array([1.0, 1.0]))


def test_fast_non_dominated_sort_fronts():
    pop = make_individuals([(1, 4), (2, 3), (3, 2), (4, 1), (2, 4), (4, 4)])
    fronts = fast_non_dominated_sort(pop)
    front0 = {tuple(ind.objectives) for ind in fronts[0]}
    assert front0 == {(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (4.0, 1.0)}
    assert all(ind.rank == 0 for ind in fronts[0])
    # (2,4) dominated by (2,3); (4,4) dominated by several.
    later = {tuple(ind.objectives) for f in fronts[1:] for ind in f}
    assert later == {(2.0, 4.0), (4.0, 4.0)}


def test_sort_single_front_when_all_nondominated():
    pop = make_individuals([(1, 3), (2, 2), (3, 1)])
    fronts = fast_non_dominated_sort(pop)
    assert len(fronts) == 1


def test_crowding_distance_boundaries_infinite():
    pop = make_individuals([(1, 4), (2, 3), (3, 2), (4, 1)])
    crowding_distance(pop)
    by_first = sorted(pop, key=lambda i: i.objectives[0])
    assert by_first[0].crowding == float("inf")
    assert by_first[-1].crowding == float("inf")
    assert all(np.isfinite(i.crowding) for i in by_first[1:-1])


def test_crowding_distance_small_front_all_infinite():
    pop = make_individuals([(1, 2), (2, 1)])
    crowding_distance(pop)
    assert all(i.crowding == float("inf") for i in pop)


def test_problem_validates_bounds():
    with pytest.raises(ValueError):
        Problem(1, [1.0], [0.0], lambda x: (x[0],))


def test_problem_repair_clips_and_rounds():
    p = Problem(1, [0, 0], [10, 10], lambda x: (0.0,), integer=[True, False])
    repaired = p.repair(np.array([3.7, 11.2]))
    assert repaired[0] == 4.0
    assert repaired[1] == 10.0


def test_nsga2_rejects_odd_population():
    p = Problem(1, [0.0], [1.0], lambda x: (x[0],))
    with pytest.raises(ValueError):
        NSGA2(p, population_size=5)


def test_nsga2_single_objective_converges_to_minimum():
    p = Problem(1, [-5.0], [5.0], lambda x: ((x[0] - 1.7) ** 2,))
    front = NSGA2(p, population_size=20, generations=40, seed=1).run()
    best = min(front, key=lambda ind: ind.objectives[0])
    assert best.x[0] == pytest.approx(1.7, abs=0.1)


def test_nsga2_zdt1_front_quality():
    """On ZDT1 the true Pareto front is f2 = 1 - sqrt(f1); NSGA-II should get close."""

    def zdt1(x):
        f1 = x[0]
        g = 1 + 9 * np.mean(x[1:])
        f2 = g * (1 - np.sqrt(f1 / g))
        return (f1, f2)

    n = 6
    p = Problem(2, [0.0] * n, [1.0] * n, zdt1)
    front = NSGA2(p, population_size=40, generations=80, seed=3).run()
    # All returned points mutually non-dominated.
    for a in front:
        for b in front:
            assert not dominates(a.objectives, b.objectives) or a is b
    # Mean distance to the analytic front should be small.
    gaps = [ind.objectives[1] - (1 - np.sqrt(ind.objectives[0])) for ind in front]
    assert np.mean(gaps) < 0.6


def test_nsga2_respects_integer_variables():
    p = Problem(
        1, [0, 0.0], [8, 1.0], lambda x: (abs(x[0] - 3) + x[1],), integer=[True, False]
    )
    front = NSGA2(p, population_size=16, generations=25, seed=9).run()
    for ind in front:
        assert ind.x[0] == int(ind.x[0])


def test_nsga2_evaluate_shape_checked():
    p = Problem(2, [0.0], [1.0], lambda x: (x[0],))  # wrong arity
    with pytest.raises(ValueError):
        NSGA2(p, population_size=8, generations=1).run()


def test_nsga2_deterministic_given_seed():
    p = Problem(1, [-1.0], [1.0], lambda x: (x[0] ** 2,))
    f1 = NSGA2(p, population_size=12, generations=10, seed=7).run()
    f2 = NSGA2(p, population_size=12, generations=10, seed=7).run()
    xs1 = sorted(ind.x[0] for ind in f1)
    xs2 = sorted(ind.x[0] for ind in f2)
    np.testing.assert_allclose(xs1, xs2)
