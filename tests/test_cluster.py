"""Tests for the shared-cluster event loop (repro.execution.cluster)."""

import asyncio

import pytest

from repro.api.rest import IResServer
from repro.api.service import SUCCEEDED, IResService
from repro.core import IReS
from repro.execution.cluster import POLICIES, ClusterScheduler
from repro.execution.parallel import ParallelSimulator
from repro.scenarios import setup_helloworld, setup_relational_analytics


def _relational_platform():
    ires = IReS()
    make = setup_relational_analytics(ires)
    return ires, ires.plan(make(10))


def _service_factory():
    def build():
        ires = IReS()
        make = setup_helloworld(ires)
        workflow = make()
        ires.workflows[workflow.name] = workflow
        return ires
    return build


def test_unknown_policy_rejected():
    ires = IReS()
    with pytest.raises(ValueError, match="unknown cluster policy"):
        ClusterScheduler(ires.cloud, policy="srpt")
    assert set(POLICIES) == {"fifo", "fair", "dagps"}


def test_single_run_matches_isolated_simulator():
    """Alone on a cloned cluster, the shared loop IS the simulator."""
    ires, plan = _relational_platform()
    alone = ParallelSimulator(ires.cloud, seed=11,
                              charge_clock=False).simulate(plan)
    loop = ClusterScheduler(ires.cloud, policy="fifo",
                            cluster=ires.cloud.cluster.clone(), seed=0)
    shared = loop.execute(plan, seed=11)
    assert shared.makespan == pytest.approx(alone.makespan)
    assert shared.serial_time == pytest.approx(alone.serial_time)
    assert len(shared.schedule) == len(alone.schedule)


def test_deterministic_under_equal_finish_times():
    """Identical runs produce many simultaneous finish events; the heap
    breaks those ties by (admission seq, plan position), so two fresh
    loops replay the exact same schedule — not a hash-order one."""
    def burst():
        ires, plan = _relational_platform()
        loop = ClusterScheduler(ires.cloud, policy="fifo",
                                cluster=ires.cloud.cluster.clone(), seed=0)
        # same per-run seed => identical durations => equal finish times
        runs = [loop.submit(plan, seed=42, run_id=f"r{i}") for i in range(4)]
        loop.run_until_idle()
        return [
            [(s.step.operator.name, s.start, s.finish)
             for s in run.report.schedule]
            for run in runs
        ], [run.finished_at for run in runs]

    schedules_a, finished_a = burst()
    schedules_b, finished_b = burst()
    assert schedules_a == schedules_b
    assert finished_a == finished_b


def test_concurrent_runs_contend_for_capacity():
    """Two runs on one shared cluster queue behind each other."""
    ires, plan = _relational_platform()
    alone = ParallelSimulator(ires.cloud, seed=0,
                              charge_clock=False).simulate(plan).makespan
    loop = ClusterScheduler(ires.cloud, policy="fifo",
                            cluster=ires.cloud.cluster.clone(), seed=0)
    runs = [loop.submit(plan, seed=i) for i in range(4)]
    loop.run_until_idle()
    assert all(r.report.succeeded for r in runs)
    aggregate = max(r.finished_at for r in runs)
    assert aggregate > alone  # contention is real
    # every run's response includes its queueing delay
    assert max(r.report.makespan for r in runs) > alone


def test_fair_policy_unstarves_the_late_small_run():
    """A small run admitted behind big ones responds sooner under fair."""
    ires = IReS()
    make = setup_relational_analytics(ires)
    big = ires.plan(make(40))
    small = ires.plan(make(1))

    def response_of_small(policy):
        loop = ClusterScheduler(ires.cloud, policy=policy,
                                cluster=ires.cloud.cluster.clone(), seed=0)
        for i in range(3):
            loop.submit(big, seed=i)
        late = loop.submit(small, seed=99)
        loop.run_until_idle()
        assert late.report.succeeded
        return late.report.makespan

    assert response_of_small("fair") < response_of_small("fifo")


def test_snapshot_reports_queue_and_placements():
    ires, plan = _relational_platform()
    loop = ClusterScheduler(ires.cloud, policy="dagps",
                            cluster=ires.cloud.cluster.clone(), seed=0)
    run = loop.submit(plan, run_id="snap-1", tenant="acme")
    queued = loop.snapshot()
    assert queued["policy"] == "dagps"
    assert queued["inFlight"] == 1 and queued["admitted"] == 1
    (entry,) = queued["runs"]
    assert entry["runId"] == "snap-1" and entry["tenant"] == "acme"
    assert entry["stepsTotal"] == len(plan.steps)

    loop.run_until_idle()
    drained = loop.snapshot()
    assert drained["inFlight"] == 0 and drained["completed"] == 1
    assert drained["stepsPlaced"] == len(run.report.schedule)
    assert drained["placements"] == []
    assert drained["peakCoresUsed"] > 0
    assert 0.0 <= drained["utilization"]["cores"] <= 1.0


def test_service_runs_share_one_cluster():
    """Cluster mode: workers plan per-platform, execute on the shared loop."""
    async def main():
        service = IResService(_service_factory(), workers=4, cluster="fair")
        await service.start()
        server = IResServer(IReS(), service=service)
        recs = [service.submit("helloworld-chain") for _ in range(6)]
        for rec in recs:
            await service.wait(rec.run_id, timeout=120)
        rest = server.handle("GET", "/cluster")
        await service.shutdown()
        return recs, service, rest

    recs, service, rest = asyncio.run(main())
    assert all(rec.state == SUCCEEDED for rec in recs)
    assert all(rec.summary["sharedCluster"] for rec in recs)
    assert all(rec.summary["clusterPolicy"] == "fair" for rec in recs)
    snapshot = service.cluster.snapshot()
    assert snapshot["admitted"] == 6 and snapshot["completed"] == 6
    assert snapshot["stepsPlaced"] == sum(rec.summary["steps"] for rec in recs)
    assert rest.status == 200 and rest.body["policy"] == "fair"
    assert service.stats()["clusterPolicy"] == "fair"


def test_rest_cluster_404_when_disabled():
    async def main():
        service = IResService(_service_factory(), workers=1)
        await service.start()
        server = IResServer(IReS(), service=service)
        response = server.handle("GET", "/cluster")
        await service.shutdown()
        return response

    response = asyncio.run(main())
    assert response.status == 404
    assert "disabled" in response.body["error"]


def test_rest_cluster_503_without_service():
    server = IResServer(IReS())
    assert server.handle("GET", "/cluster").status == 503


def test_failed_step_cascades_within_its_run_only():
    """A fault in one run never leaks into a concurrent healthy run."""
    ires, plan = _relational_platform()
    victim = next(s.engine for s in plan.steps if not s.is_move)
    loop = ClusterScheduler(ires.cloud, policy="fifo",
                            cluster=ires.cloud.cluster.clone(), seed=0,
                            fault_injector=ires.fault_injector)
    # faults are resolved at admission, so only the first run sees them
    ires.fault_injector.make_flaky(victim, 1.0)
    sick = loop.submit(plan, seed=1)
    ires.fault_injector.clear_transients()
    healthy = loop.submit(plan, seed=1)
    loop.run_until_idle()
    assert not sick.report.succeeded
    assert any(f.cascaded for f in sick.report.failures)
    assert healthy.report.succeeded
