"""Tests for PANIC-style adaptive profiling (repro.core.adaptive)."""

import numpy as np
import pytest

from repro.core import ProfileSpec
from repro.core.adaptive import AdaptiveProfiler
from repro.engines import Resources, build_default_cloud
from repro.models import GaussianProcess
from repro.models.base import NotFittedError


def wordcount_spec():
    return ProfileSpec(
        "wordcount", "MapReduce",
        counts=[1e5, 3e5, 1e6, 3e6, 1e7], bytes_per_item=1e3,
        resources=[Resources(c, m) for c in (4, 8, 16, 32) for m in (8, 16, 32)],
    )


class TestGPStd:
    def test_std_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GaussianProcess().predict_std([[1.0]])

    def test_std_lower_near_training_points(self):
        X = np.linspace(0, 10, 12).reshape(-1, 1)
        y = np.sin(X.ravel())
        gp = GaussianProcess(noise=1e-4).fit(X, y)
        near = gp.predict_std([[5.0]])[0]   # a training point
        far = gp.predict_std([[25.0]])[0]   # extrapolation
        assert near < far

    def test_std_nonnegative(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 1, (20, 2))
        y = X[:, 0] * 2
        gp = GaussianProcess().fit(X, y)
        assert (gp.predict_std(rng.normal(0, 2, (30, 2))) >= 0).all()


class TestAdaptiveProfiler:
    def test_budget_respected(self):
        cloud = build_default_cloud(seed=1)
        profiler = AdaptiveProfiler(cloud, wordcount_spec(), seed=1)
        records = profiler.run(budget=10)
        assert len(records) <= 10
        assert len(records) >= 8  # wordcount never OOMs on this grid

    def test_invalid_budget_rejected(self):
        cloud = build_default_cloud()
        with pytest.raises(ValueError):
            AdaptiveProfiler(cloud, wordcount_spec()).run(budget=0)

    def test_no_duplicate_grid_points(self):
        cloud = build_default_cloud(seed=2)
        profiler = AdaptiveProfiler(cloud, wordcount_spec(), seed=2)
        records = profiler.run(budget=15)
        setups = {(r.input_count, r.cores, r.memory_gb) for r in records}
        assert len(setups) == len(records)

    def test_spreads_over_input_sizes(self):
        """Uncertainty sampling must not cluster on one corner of the grid."""
        cloud = build_default_cloud(seed=3)
        profiler = AdaptiveProfiler(cloud, wordcount_spec(), seed=3)
        records = profiler.run(budget=12)
        counts = {r.input_count for r in records}
        assert len(counts) >= 4  # covers most of the 5 input sizes

    def test_model_quality_reasonable(self):
        cloud = build_default_cloud(seed=4)
        spec = wordcount_spec()
        profiler = AdaptiveProfiler(cloud, spec, seed=4)
        profiler.run(budget=20)
        error = profiler.mean_relative_error(test_points=40, seed=5)
        # 20 adaptive runs over a 60-point grid should give a usable model
        assert error < 0.5

    def test_handles_oom_grid_points(self):
        """Pagerank on Java OOMs at large counts; the run must not crash."""
        cloud = build_default_cloud(seed=5)
        spec = ProfileSpec(
            "pagerank", "Java", counts=[1e4, 1e6, 1e9], bytes_per_item=40,
            params={"iterations": [10]}, resources=[Resources(4, 8)],
        )
        records = AdaptiveProfiler(cloud, spec, seed=5).run(budget=3)
        assert 1 <= len(records) <= 3
        assert len(cloud.collector.failures()) >= 1
