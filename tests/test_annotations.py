"""Annotation-completeness gate for the strict-typed packages.

CI runs mypy with ``disallow_untyped_defs`` on ``repro.core``,
``repro.analysis`` and ``repro.obs`` (see pyproject ``[tool.mypy]``).  This
test enforces the same completeness property with the stdlib ``ast`` module
so the gate is also checkable without mypy installed: every function in
those packages must annotate its return type and all of its parameters.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
STRICT_PACKAGES = ("core", "analysis", "obs")
IMPLICIT = ("self", "cls")


def _missing_annotations(path: Path) -> list[str]:
    problems: list[str] = []
    tree = ast.parse(path.read_text(encoding="utf-8"))

    class Visitor(ast.NodeVisitor):
        def _check(self, node: ast.FunctionDef) -> None:
            args = node.args
            named = args.posonlyargs + args.args + args.kwonlyargs
            missing = [a.arg for a in named
                       if a.annotation is None and a.arg not in IMPLICIT]
            for star in (args.vararg, args.kwarg):
                if star is not None and star.annotation is None:
                    missing.append(f"*{star.arg}")
            if node.returns is None:
                missing.append("return")
            if missing:
                problems.append(
                    f"{path.relative_to(SRC.parent)}:{node.lineno} "
                    f"{node.name}() missing: {', '.join(missing)}")
            self.generic_visit(node)

        visit_FunctionDef = _check
        visit_AsyncFunctionDef = _check

    Visitor().visit(tree)
    return problems


def test_strict_packages_are_fully_annotated():
    problems: list[str] = []
    for package in STRICT_PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            problems.extend(_missing_annotations(path))
    assert not problems, (
        "unannotated defs in strict-typed packages (mypy "
        "disallow_untyped_defs would reject these):\n" + "\n".join(problems))
