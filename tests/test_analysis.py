"""Tests for the static-analysis subsystem (repro.analysis, `ires lint`)."""

import json

import pytest

from repro.analysis import (
    CODES,
    Diagnostic,
    DiagnosticCollector,
    LintFailure,
    code_table,
    lint_library,
    preflight_workflow,
)
from repro.cli import main
from repro.core import (
    AbstractOperator,
    AbstractWorkflow,
    Dataset,
    IReS,
    MaterializedOperator,
    Planner,
)
from repro.execution.resilience import ResilienceManager, RetryPolicy


# -- diagnostics core ---------------------------------------------------------

class TestDiagnostic:
    def test_make_defaults_severity_from_catalogue(self):
        d = Diagnostic.make("IRES010", "nothing implements it")
        assert d.severity == "error"
        d = Diagnostic.make("IRES006", "dup key")
        assert d.severity == "warning"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic.make("IRES999", "nope")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic.make("IRES010", "x", severity="fatal")

    def test_render_format(self):
        d = Diagnostic.make("IRES003", "bad value",
                            artifact="operator:x",
                            location="operators/x/description:2")
        assert d.render() == ("operators/x/description:2: error IRES003: "
                              "bad value [operator:x]")

    def test_to_json_fields(self):
        d = Diagnostic.make("IRES020", "cycle", artifact="workflow:w",
                            hint="break it")
        assert d.to_json() == {
            "code": "IRES020", "severity": "error", "message": "cycle",
            "artifact": "workflow:w", "location": "", "hint": "break it",
        }


class TestDiagnosticCollector:
    def test_deduplicates_identical_findings(self):
        collector = DiagnosticCollector()
        for _ in range(3):
            collector.report("IRES010", "same", artifact="abstract:a")
        assert len(collector) == 1

    def test_sorted_most_severe_first(self):
        collector = DiagnosticCollector()
        collector.report("IRES007", "info finding")
        collector.report("IRES006", "warning finding")
        collector.report("IRES020", "error finding")
        assert [d.severity for d in collector.sorted()] == [
            "error", "warning", "info"]

    def test_failed_respects_strict(self):
        warn_only = DiagnosticCollector()
        warn_only.report("IRES006", "dup")
        assert not warn_only.failed()
        assert warn_only.failed(strict=True)
        info_only = DiagnosticCollector()
        info_only.report("IRES007", "unknown root")
        assert not info_only.failed(strict=True)

    def test_counts_and_codes(self):
        collector = DiagnosticCollector()
        collector.report("IRES020", "cycle")
        collector.report("IRES006", "dup")
        assert collector.counts() == {"error": 1, "warning": 1, "info": 0}
        assert collector.codes() == ["IRES006", "IRES020"]

    def test_render_text_summary_line(self):
        collector = DiagnosticCollector()
        collector.report("IRES020", "cycle", hint="break it")
        text = collector.render_text()
        assert "hint: break it" in text
        assert text.endswith("1 error(s), 0 warning(s), 0 info")

    def test_to_json_verdict(self):
        collector = DiagnosticCollector()
        collector.report("IRES006", "dup")
        payload = collector.to_json(strict=True)
        assert payload["ok"] is False and payload["strict"] is True
        assert payload["diagnostics"][0]["code"] == "IRES006"

    def test_lint_failure_aggregates_all(self):
        collector = DiagnosticCollector()
        collector.report("IRES010", "no candidate", artifact="abstract:a")
        collector.report("IRES021", "bad target", artifact="workflow:w")
        failure = LintFailure(collector, context="workflow 'w'")
        assert "2 error(s)" in str(failure)
        assert "IRES010" in str(failure) and "IRES021" in str(failure)
        assert len(failure.diagnostics) == 2

    def test_code_table_covers_catalogue(self):
        rows = code_table()
        assert [r.code for r in rows] == sorted(CODES)
        assert all(r.severity in ("error", "warning", "info") for r in rows)


# -- golden library fixtures --------------------------------------------------

def write_clean_library(root):
    """A well-formed two-engine LineCount library (mirrors the examples)."""
    (root / "datasets").mkdir(parents=True)
    (root / "datasets" / "logs").write_text(
        "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
        "Optimization.size=5E09\n")
    for engine in ("Spark", "Python"):
        op_dir = root / "operators" / f"count_{engine.lower()}"
        op_dir.mkdir(parents=True)
        (op_dir / "description").write_text(
            f"Constraints.Engine={engine}\n"
            "Constraints.Input.number=1\n"
            "Constraints.Output.number=1\n"
            "Constraints.Input0.Engine.FS=HDFS\n"
            "Constraints.Input0.type=text\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n")
    (root / "abstractOperators").mkdir()
    (root / "abstractOperators" / "LineCount").write_text(
        "Constraints.Input.number=1\nConstraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n")
    wf = root / "abstractWorkflows" / "CountWorkflow"
    wf.mkdir(parents=True)
    (wf / "graph").write_text(
        "logs,LineCount,0\nLineCount,d1,0\nd1,$$target\n")


@pytest.fixture
def clean_library(tmp_path):
    root = tmp_path / "asapLibrary"
    write_clean_library(root)
    return root


@pytest.fixture
def broken_library(clean_library):
    """Seed the acceptance-criteria defects: IRES003, IRES010, IRES020."""
    root = clean_library
    # bad key type: non-numeric input arity
    (root / "operators" / "count_python" / "description").write_text(
        "Constraints.Engine=Python\n"
        "Constraints.Input.number=lots\n"
        "Constraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n")
    # abstract operator nothing in the library implements
    (root / "abstractOperators" / "Sort").write_text(
        "Constraints.Input.number=1\nConstraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=Sort\n")
    # cyclic workflow graph
    wf = root / "abstractWorkflows" / "Loop"
    wf.mkdir()
    (wf / "graph").write_text(
        "d0,LineCount,0\nLineCount,d0,0\nd0,$$target\n")
    return root


# -- golden diagnostics through the library entry point -----------------------

class TestLintLibrary:
    def test_clean_library_is_clean(self, clean_library):
        _ires, collector = lint_library(clean_library)
        assert collector.codes() == []
        assert not collector.failed(strict=True)

    def test_example_library_is_clean_strict(self):
        _ires, collector = lint_library("examples/asapLibrary")
        assert not collector.failed(strict=True), collector.render_text()

    def test_broken_library_reports_expected_codes(self, broken_library):
        _ires, collector = lint_library(broken_library)
        assert {"IRES003", "IRES010", "IRES020"} <= set(collector.codes())
        assert collector.failed()

    def test_locations_are_root_relative_file_lines(self, broken_library):
        _ires, collector = lint_library(broken_library)
        by_code = {d.code: d for d in collector}
        assert (by_code["IRES003"].location
                == "operators/count_python/description:2")
        assert by_code["IRES010"].location == "abstractOperators/Sort"
        assert by_code["IRES020"].location == "abstractWorkflows/Loop/graph"

    def test_near_miss_names_first_divergent_key(self, clean_library):
        # a candidate exists under the right algorithm name but requires a
        # different input format -> the near-miss explains the divergence
        (clean_library / "abstractOperators" / "LineCount").write_text(
            "Constraints.Input.number=1\nConstraints.Output.number=1\n"
            "Constraints.Input0.type=arff\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n")
        _ires, collector = lint_library(clean_library)
        misses = [d for d in collector if d.code == "IRES010"]
        assert len(misses) == 1
        assert "Constraints.Input0.type: required 'arff', found 'text'" \
            in misses[0].message

    def test_workflow_scoping(self, broken_library):
        _ires, collector = lint_library(broken_library,
                                        workflow="CountWorkflow")
        # the cyclic Loop workflow still surfaces (load-time diagnostic),
        # but CountWorkflow itself adds nothing new
        dataflow = [d for d in collector if d.artifact == "workflow:CountWorkflow"]
        assert dataflow == []


class TestSchemaPass:
    def test_missing_required_key(self, clean_library):
        (clean_library / "operators" / "count_python" / "description").write_text(
            "Constraints.Input.number=1\nConstraints.Output.number=1\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector if d.code == "IRES002"]
        assert len(findings) == 1
        assert "Constraints.Engine" in findings[0].message

    def test_value_below_bound(self, clean_library):
        (clean_library / "datasets" / "logs").write_text(
            "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
            "Optimization.size=-5\n")
        _ires, collector = lint_library(clean_library)
        assert "IRES004" in collector.codes()

    def test_wildcard_in_materialized_description(self, clean_library):
        (clean_library / "operators" / "count_python" / "description").write_text(
            "Constraints.Engine=Python\n"
            "Constraints.Input.number=1\nConstraints.Output.number=1\n"
            "Constraints.Input0.type=*\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector if d.code == "IRES005"]
        assert findings and "Constraints.Input0.type" in findings[0].message

    def test_duplicate_key_points_at_reassignment_line(self, clean_library):
        (clean_library / "datasets" / "logs").write_text(
            "Constraints.type=text\nConstraints.Engine.FS=HDFS\n"
            "Constraints.type=arff\nOptimization.size=5E09\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector if d.code == "IRES006"]
        assert len(findings) == 1
        assert findings[0].location == "datasets/logs:3"

    def test_unknown_top_level_root_is_info(self, clean_library):
        (clean_library / "datasets" / "logs").write_text(
            "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
            "Optimization.size=5E09\nProvenance.author=me\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector if d.code == "IRES007"]
        assert findings and findings[0].severity == "info"
        assert not collector.failed(strict=True)

    def test_spec_index_exceeds_arity(self, clean_library):
        (clean_library / "abstractOperators" / "LineCount").write_text(
            "Constraints.Input.number=1\nConstraints.Output.number=1\n"
            "Constraints.Input1.type=text\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector if d.code == "IRES008"]
        assert findings and "Constraints.Input1" in findings[0].message


class TestMatchPass:
    def test_undeployed_engine_warns(self, clean_library):
        (clean_library / "operators" / "count_python" / "description").write_text(
            "Constraints.Engine=Cilk\n"
            "Constraints.Input.number=1\nConstraints.Output.number=1\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector if d.code == "IRES011"]
        assert findings and "'Cilk'" in findings[0].message

    def test_wildcard_algorithm_is_info(self, clean_library):
        (clean_library / "abstractOperators" / "AnyOp").write_text(
            "Constraints.OpSpecification.Algorithm.name=*\n")
        _ires, collector = lint_library(clean_library)
        assert "IRES012" in collector.codes()


class TestDataflowPass:
    def test_unproducible_target(self, clean_library):
        wf = clean_library / "abstractWorkflows" / "NoProducer"
        wf.mkdir()
        # the target d9 is a source dataset: nothing produces it and it is
        # not a materialized library dataset, so no plan can reach it
        (wf / "graph").write_text(
            "d9,LineCount,0\nLineCount,d1,0\nd9,$$target\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector
                    if d.code == "IRES021" and "NoProducer" in d.artifact]
        assert findings and "'d9'" in findings[0].message

    def test_orphan_nodes_warn(self, clean_library):
        (clean_library / "abstractOperators" / "Count2").write_text(
            "Constraints.Input.number=1\nConstraints.Output.number=1\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n")
        wf = clean_library / "abstractWorkflows" / "Orphaned"
        wf.mkdir()
        # the Count2 -> d2 branch never reaches the d1 target
        (wf / "graph").write_text(
            "logs,LineCount,0\nLineCount,d1,0\n"
            "logs,Count2,0\nCount2,d2,0\nd1,$$target\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector if d.code == "IRES022"]
        assert any("'d2'" in d.message for d in findings)
        assert any("'Count2'" in d.message for d in findings)

    def test_arity_mismatch_points_at_edge_line(self, clean_library):
        (clean_library / "abstractOperators" / "LineCount").write_text(
            "Constraints.Input.number=2\nConstraints.Output.number=1\n"
            "Constraints.OpSpecification.Algorithm.name=LineCount\n")
        _ires, collector = lint_library(clean_library,
                                        workflow="CountWorkflow")
        findings = [d for d in collector if d.code == "IRES023"]
        assert findings
        assert "wired to 1 input(s)" in findings[0].message
        assert findings[0].location == \
            "abstractWorkflows/CountWorkflow/graph:1"

    def test_forced_move_warns(self, clean_library):
        # every implementation wants HDFS text; the source sits elsewhere
        (clean_library / "datasets" / "logs").write_text(
            "Constraints.Engine.FS=PostgreSQL\nConstraints.type=table\n"
            "Optimization.size=5E09\n")
        _ires, collector = lint_library(clean_library)
        findings = [d for d in collector if d.code == "IRES024"]
        assert findings and "'logs'" in findings[0].message


class TestModelReadinessPass:
    def test_oracle_estimator_skips_pass(self, clean_library):
        _ires, collector = lint_library(clean_library)
        assert "IRES030" not in collector.codes()

    def test_model_backed_platform_warns_on_unprofiled_pairs(self):
        from repro.core.libraryfs import load_asap_library

        ires = IReS(estimator="models")
        load_asap_library("examples/asapLibrary", ires)
        collector = ires.lint()
        findings = [d for d in collector if d.code == "IRES030"]
        assert findings  # nothing is profiled yet
        assert any("LineCount@Spark" in d.message for d in findings)


class TestConfigPass:
    def lint_with(self, resilience):
        ires = IReS(resilience=resilience)
        return ires.lint()

    def test_default_resilience_is_clean(self):
        collector = self.lint_with(ResilienceManager())
        assert not any(c.startswith("IRES04") for c in collector.codes())

    def test_nonpositive_breaker_threshold(self):
        collector = self.lint_with(ResilienceManager(failure_threshold=0))
        assert "IRES040" in collector.codes()

    def test_malformed_retry_policy(self):
        collector = self.lint_with(ResilienceManager(
            retry_policy=RetryPolicy(max_attempts=0, backoff_factor=0.5)))
        findings = [d for d in collector if d.code == "IRES042"]
        assert len(findings) == 2  # bad attempts AND shrinking factor

    def test_retry_budget_exceeds_step_timeout(self):
        collector = self.lint_with(ResilienceManager(
            retry_policy=RetryPolicy(max_attempts=5, base_backoff=30.0,
                                     backoff_factor=2.0, max_backoff=600.0),
            step_timeout=10.0))
        assert "IRES041" in collector.codes()

    def test_nonpositive_recovery_timeout(self):
        collector = self.lint_with(ResilienceManager(recovery_timeout=0.0))
        assert "IRES043" in collector.codes()


# -- planner pre-flight -------------------------------------------------------

class TestPreflight:
    def build_broken_workflow(self):
        """A workflow whose operator has no implementation at all."""
        wf = AbstractWorkflow("broken")
        wf.add_dataset(Dataset("in", {"Constraints.type": "text"},
                               materialized=True))
        wf.add_dataset(Dataset("out"))
        wf.add_operator(AbstractOperator("ghost", {
            "Constraints.OpSpecification.Algorithm.name": "Ghost",
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
        }))
        wf.connect("in", "ghost")
        wf.connect("ghost", "out")
        wf.set_target("out")
        return wf

    def test_preflight_workflow_reports(self):
        from repro.core.library import OperatorLibrary

        collector = preflight_workflow(OperatorLibrary(),
                                       self.build_broken_workflow())
        assert "IRES010" in collector.codes()

    def test_planner_preflight_raises_aggregated_failure(self):
        ires = IReS()
        planner = Planner(ires.library, ires.estimator, preflight=True)
        with pytest.raises(LintFailure) as excinfo:
            planner.plan(self.build_broken_workflow())
        failure = excinfo.value
        assert "IRES010" in str(failure)
        assert any(d.code == "IRES010" for d in failure.diagnostics)

    def test_planner_preflight_lists_every_defect_at_once(self):
        ires = IReS()
        wf = self.build_broken_workflow()
        # second defect: an orphan dataset that feeds nothing
        wf.add_dataset(Dataset("stray", materialized=True))
        planner = Planner(ires.library, ires.estimator, preflight=True)
        with pytest.raises(LintFailure) as excinfo:
            planner.plan(wf)
        codes = {d.code for d in excinfo.value.diagnostics}
        assert {"IRES010", "IRES022"} <= codes

    def test_preflight_passes_on_sound_workflow(self):
        ires = IReS()
        ires.register_operator(MaterializedOperator("count_spark", {
            "Constraints.Engine": "Spark",
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
            "Constraints.OpSpecification.Algorithm.name": "LineCount",
        }))
        wf = AbstractWorkflow("ok")
        wf.add_dataset(Dataset("in", {"Constraints.type": "text"},
                               materialized=True))
        wf.add_dataset(Dataset("out"))
        wf.add_operator(AbstractOperator("count", {
            "Constraints.OpSpecification.Algorithm.name": "LineCount",
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
        }))
        wf.connect("in", "count")
        wf.connect("count", "out")
        wf.set_target("out")
        planner = Planner(ires.library, ires.estimator, preflight=True)
        plan = planner.plan(wf, available_engines={"Spark", "move"})
        assert plan.steps

    def test_preflight_metric_counts_failures(self):
        from repro.obs.metrics import REGISTRY

        REGISTRY.reset()
        ires = IReS()
        planner = Planner(ires.library, ires.estimator, preflight=True)
        with pytest.raises(LintFailure):
            planner.plan(self.build_broken_workflow())
        counter = REGISTRY.get("ires_planner_preflight_total")
        assert counter.value(status="failed") == 1


# -- golden CLI output --------------------------------------------------------

class TestLintCli:
    def test_text_output_golden(self, broken_library, capsys):
        assert main(["lint", str(broken_library)]) == 1
        out = capsys.readouterr().out
        assert ("abstractOperators/Sort: error IRES010: no materialized "
                "operator implements 'Sort'") in out
        assert ("operators/count_python/description:2: error IRES003: "
                "Constraints.Input.number='lots' is not numeric") in out
        assert ("abstractWorkflows/Loop/graph: error IRES020: "
                "workflow graph contains a cycle") in out
        assert "3 error(s)" in out
        assert out.rstrip().endswith(f"lint FAILED: {broken_library}")

    def test_json_output_golden(self, broken_library, capsys):
        assert main(["lint", str(broken_library), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert {"IRES003", "IRES010", "IRES020"} <= set(payload["codes"])
        by_code = {d["code"]: d for d in payload["diagnostics"]}
        assert (by_code["IRES003"]["location"]
                == "operators/count_python/description:2")
        assert by_code["IRES010"]["artifact"] == "abstract:Sort"
        assert by_code["IRES020"]["severity"] == "error"
        assert by_code["IRES020"]["hint"]

    def test_clean_library_exits_zero(self, clean_library, capsys):
        assert main(["lint", str(clean_library)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 info" in out
        assert f"lint OK: {clean_library}" in out

    def test_example_library_strict_exits_zero(self, capsys):
        assert main(["lint", "examples/asapLibrary", "--strict"]) == 0
        assert "lint OK" in capsys.readouterr().out

    def test_strict_fails_on_warnings(self, clean_library, capsys):
        (clean_library / "datasets" / "logs").write_text(
            "Constraints.type=text\nConstraints.type=arff\n"
            "Optimization.size=5E09\n")
        assert main(["lint", str(clean_library)]) == 0
        capsys.readouterr()
        assert main(["lint", str(clean_library), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "lint FAILED" in out and "(strict)" in out

    def test_workflow_filter(self, broken_library, capsys):
        assert main(["lint", str(broken_library),
                     "--workflow", "CountWorkflow"]) == 1
        out = capsys.readouterr().out
        # library-level defects still show; no dataflow findings for the
        # healthy CountWorkflow
        assert "IRES010" in out
        assert "workflow:CountWorkflow" not in out

    def test_unknown_workflow_exits(self, clean_library):
        with pytest.raises(SystemExit):
            main(["lint", str(clean_library), "--workflow", "Nope"])
