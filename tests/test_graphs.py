"""Tests for the extended graph operators (repro.analytics.graphs)."""

import networkx as nx
import numpy as np
import pytest

from repro.analytics import generate_cdr_graph
from repro.analytics.graphs import (
    connected_components,
    degree_stats,
    k_core,
    triangle_count,
)


def nx_graph(edges, n):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from((int(a), int(b)) for a, b in edges)
    return g


class TestConnectedComponents:
    def test_two_islands(self):
        edges = [(0, 1), (1, 2), (3, 4)]
        labels = connected_components(edges, n_vertices=6)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])  # isolated vertex

    def test_direction_ignored(self):
        labels = connected_components([(2, 0)], n_vertices=3)
        assert labels[0] == labels[2]

    def test_matches_networkx(self):
        edges = generate_cdr_graph(400, 80, seed=2)
        ours = connected_components(edges, n_vertices=80)
        theirs = list(nx.connected_components(nx_graph(edges, 80)))
        assert len(set(ours.tolist())) == len(theirs)
        for component in theirs:
            assert len({ours[v] for v in component}) == 1

    def test_empty_graph(self):
        assert connected_components([], n_vertices=0).size == 0
        labels = connected_components([], n_vertices=3)
        assert len(set(labels.tolist())) == 3

    def test_bad_vertex_rejected(self):
        with pytest.raises(ValueError):
            connected_components([(0, 9)], n_vertices=3)


class TestDegreeStats:
    def test_counts(self):
        edges = [(0, 1), (0, 2), (1, 0)]
        stats = degree_stats(edges, n_vertices=3)
        assert stats["out"].tolist() == [2, 1, 0]
        assert stats["in"].tolist() == [1, 1, 1]
        assert stats["total"].tolist() == [3, 2, 1]

    def test_total_conserved(self):
        edges = generate_cdr_graph(500, 50, seed=3)
        stats = degree_stats(edges, n_vertices=50)
        assert stats["in"].sum() == 500
        assert stats["out"].sum() == 500


class TestTriangles:
    def test_simple_triangle(self):
        assert triangle_count([(0, 1), (1, 2), (2, 0)]) == 1

    def test_square_has_no_triangle(self):
        assert triangle_count([(0, 1), (1, 2), (2, 3), (3, 0)]) == 0

    def test_duplicate_and_reverse_edges_collapse(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 0), (0, 2)]
        assert triangle_count(edges) == 1

    def test_matches_networkx(self):
        edges = generate_cdr_graph(300, 40, seed=4)
        ours = triangle_count(edges, n_vertices=40)
        theirs = sum(nx.triangles(nx_graph(edges, 40)).values()) // 3
        assert ours == theirs

    def test_empty(self):
        assert triangle_count([], n_vertices=5) == 0


class TestKCore:
    def test_triangle_is_2core(self):
        mask = k_core([(0, 1), (1, 2), (2, 0), (2, 3)], k=2, n_vertices=4)
        assert mask.tolist() == [True, True, True, False]

    def test_zero_core_keeps_everyone(self):
        mask = k_core([(0, 1)], k=0, n_vertices=3)
        assert mask.all()

    def test_matches_networkx(self):
        edges = generate_cdr_graph(600, 60, seed=5)
        g = nx_graph(edges, 60)
        g.remove_edges_from(nx.selfloop_edges(g))
        for k in (1, 2, 3):
            ours = set(np.nonzero(k_core(edges, k, n_vertices=60))[0].tolist())
            theirs = set(nx.k_core(g, k).nodes)
            assert ours == theirs

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            k_core([(0, 1)], k=-1)
