"""Unit tests for the DP planner — Algorithm 1 (repro.core.planner)."""

import pytest

from repro.core import (
    AbstractOperator,
    AbstractWorkflow,
    Dataset,
    MaterializedOperator,
    MetadataCostEstimator,
    OperatorLibrary,
    OptimizationPolicy,
    Planner,
    PlanningError,
)


def make_op(name, alg, engine, fs, in_type, out_type, exec_time, cost=None):
    """Helper building a 1-in/1-out materialized operator description."""
    return MaterializedOperator(name, {
        "Constraints.OpSpecification.Algorithm.name": alg,
        "Constraints.Engine": engine,
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
        "Constraints.Input0.Engine.FS": fs,
        "Constraints.Input0.type": in_type,
        "Constraints.Output0.Engine.FS": fs,
        "Constraints.Output0.type": out_type,
        "Optimization.execTime": exec_time,
        "Optimization.cost": cost if cost is not None else exec_time,
    })


def text_clustering_library():
    """Two tf-idf and two k-means implementations on different engines."""
    lib = OperatorLibrary()
    lib.add(make_op("TF_IDF_scikit", "TF_IDF", "scikit", "local", "text", "arff", 5.0))
    lib.add(make_op("TF_IDF_spark", "TF_IDF", "Spark", "HDFS", "text", "seq", 40.0))
    lib.add(make_op("kmeans_scikit", "kmeans", "scikit", "local", "arff", "arff", 100.0))
    lib.add(make_op("kmeans_spark", "kmeans", "Spark", "HDFS", "seq", "seq", 20.0))
    return lib


def text_clustering_workflow(store="local", fmt="text"):
    wf = AbstractWorkflow("text")
    wf.add_dataset(Dataset("docs", {
        "Constraints.Engine.FS": store,
        "Constraints.type": fmt,
        "Optimization.size": 1e6,
    }, materialized=True))
    wf.add_dataset(Dataset("d1"))
    wf.add_dataset(Dataset("d2"))
    wf.add_operator(AbstractOperator("tfidf", {
        "Constraints.OpSpecification.Algorithm.name": "TF_IDF"}))
    wf.add_operator(AbstractOperator("km", {
        "Constraints.OpSpecification.Algorithm.name": "kmeans"}))
    wf.connect("docs", "tfidf")
    wf.connect("tfidf", "d1")
    wf.connect("d1", "km")
    wf.connect("km", "d2")
    wf.set_target("d2")
    return wf


def test_hybrid_plan_with_move_beats_single_engine():
    """The Figure 5/12 mechanism: scikit tf-idf + Spark k-means + a move."""
    plan = Planner(text_clustering_library()).plan(text_clustering_workflow())
    names = [s.operator.name for s in plan.steps]
    assert names[0] == "TF_IDF_scikit"
    assert names[-1] == "kmeans_spark"
    assert any(s.is_move for s in plan.steps)
    # 5 (tfidf) + 20 (kmeans) + move < 45 (all-Spark) and < 105 (all-scikit)
    assert plan.cost < 45


def test_single_engine_when_moves_disabled():
    planner = Planner(text_clustering_library(), allow_moves=False)
    plan = planner.plan(text_clustering_workflow())
    assert not any(s.is_move for s in plan.steps)
    assert plan.engines_used() in ({"scikit"}, {"Spark"})


def test_plan_respects_available_engines():
    planner = Planner(text_clustering_library())
    plan = planner.plan(text_clustering_workflow(), available_engines={"Spark"})
    assert plan.engines_used() == {"Spark"}


def test_no_feasible_plan_raises():
    planner = Planner(text_clustering_library())
    with pytest.raises(PlanningError):
        planner.plan(text_clustering_workflow(), available_engines={"Hama"})


def test_materialized_target_costs_zero():
    wf = text_clustering_workflow()
    wf.datasets["d2"].materialized = True
    plan = Planner(text_clustering_library()).plan(wf)
    assert plan.cost == 0.0
    assert plan.steps == []


def test_materialized_intermediate_results_reused():
    """Replanning seeds the dpTable with already-computed intermediates."""
    wf = text_clustering_workflow()
    done = Dataset("d1", {
        "Constraints.Engine.FS": "HDFS", "Constraints.type": "seq",
        "Optimization.size": 1e5}, materialized=True)
    plan = Planner(text_clustering_library()).plan(
        wf, materialized_results={"d1": done})
    names = [s.operator.name for s in plan.steps]
    assert "TF_IDF_scikit" not in names and "TF_IDF_spark" not in names
    assert names == ["kmeans_spark"]


def test_policy_changes_winner():
    """Minimizing cost instead of time flips the chosen implementation."""
    lib = OperatorLibrary()
    lib.add(make_op("fast_pricey", "job", "A", "local", "x", "x", 1.0, cost=100.0))
    lib.add(make_op("slow_cheap", "job", "B", "local", "x", "x", 50.0, cost=1.0))
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("in", {
        "Constraints.Engine.FS": "local", "Constraints.type": "x"}, materialized=True))
    wf.add_dataset(Dataset("out"))
    wf.add_operator(AbstractOperator("job", {
        "Constraints.OpSpecification.Algorithm.name": "job"}))
    wf.connect("in", "job")
    wf.connect("job", "out")
    wf.set_target("out")
    by_time = Planner(lib, policy=OptimizationPolicy.min_exec_time()).plan(wf)
    by_cost = Planner(lib, policy=OptimizationPolicy.min_cost()).plan(wf)
    assert by_time.steps[0].operator.name == "fast_pricey"
    assert by_cost.steps[0].operator.name == "slow_cheap"


def test_shared_subplan_steps_not_duplicated():
    """Fan-out: one producer feeding two consumers appears once in the plan."""
    lib = OperatorLibrary()
    lib.add(make_op("prep", "prep", "A", "local", "raw", "clean", 3.0))
    lib.add(make_op("left", "left", "A", "local", "clean", "l", 1.0))
    lib.add(make_op("right", "right", "A", "local", "clean", "r", 1.0))
    join = MaterializedOperator("join", {
        "Constraints.OpSpecification.Algorithm.name": "join",
        "Constraints.Engine": "A",
        "Constraints.Input.number": 2, "Constraints.Output.number": 1,
        "Constraints.Input0.type": "l", "Constraints.Input1.type": "r",
        "Constraints.Output0.type": "j",
        "Optimization.execTime": 1.0, "Optimization.cost": 1.0})
    lib.add(join)

    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("src", {
        "Constraints.Engine.FS": "local", "Constraints.type": "raw"}, materialized=True))
    for name in ("c", "l", "r", "out"):
        wf.add_dataset(Dataset(name))
    wf.add_operator(AbstractOperator("prep", {
        "Constraints.OpSpecification.Algorithm.name": "prep"}))
    wf.add_operator(AbstractOperator("left", {
        "Constraints.OpSpecification.Algorithm.name": "left"}))
    wf.add_operator(AbstractOperator("right", {
        "Constraints.OpSpecification.Algorithm.name": "right"}))
    wf.add_operator(AbstractOperator("join", {
        "Constraints.OpSpecification.Algorithm.name": "join",
        "Constraints.Input.number": 2}))
    wf.connect("src", "prep")
    wf.connect("prep", "c")
    wf.connect("c", "left")
    wf.connect("c", "right")
    wf.connect("left", "l")
    wf.connect("right", "r")
    wf.connect("l", "join")
    wf.connect("r", "join")
    wf.connect("join", "out")
    wf.set_target("out")

    plan = Planner(lib).plan(wf)
    prep_steps = [s for s in plan.steps if s.operator.name == "prep"]
    assert len(prep_steps) == 1
    assert [s.operator.name for s in plan.steps].count("join") == 1


def test_plan_steps_carry_abstract_names():
    plan = Planner(text_clustering_library()).plan(text_clustering_workflow())
    assert plan.step_for_operator("tfidf") is not None
    assert plan.step_for_operator("km") is not None
    assert plan.step_for_operator("nonexistent") is None


def test_move_impossible_when_input_spec_empty():
    """An operator without input specs cannot be reached via a move."""
    lib = OperatorLibrary()
    op = MaterializedOperator("opaque", {
        "Constraints.OpSpecification.Algorithm.name": "job",
        "Constraints.Engine": "A",
        "Constraints.Input0.type": "binary",
        "Optimization.execTime": 1.0, "Optimization.cost": 1.0})
    lib.add(op)
    # Dataset type conflicts and the spec gives a concrete type -> move works;
    # but remove the spec and conflict becomes unfixable.
    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("in", {"Constraints.type": "text"}, materialized=True))
    wf.add_dataset(Dataset("out"))
    wf.add_operator(AbstractOperator("job", {
        "Constraints.OpSpecification.Algorithm.name": "job"}))
    wf.connect("in", "job")
    wf.connect("job", "out")
    wf.set_target("out")
    plan = Planner(lib).plan(wf)
    assert any(s.is_move for s in plan.steps)


def test_estimated_output_size_propagates():
    plan = Planner(text_clustering_library()).plan(text_clustering_workflow())
    tfidf_step = plan.step_for_operator("tfidf")
    assert tfidf_step.outputs[0].size > 0


def test_metadata_cost_estimator_defaults():
    est = MetadataCostEstimator()
    op = make_op("x", "a", "E", "local", "t", "t", 2.5, cost=1.5)
    metrics = est.operator_metrics(op, [])
    assert metrics == {"execTime": 2.5, "cost": 1.5}
    ds = Dataset("d", {"Optimization.size": 200e6})
    assert est.move_metrics(ds, "a", "b")["execTime"] == pytest.approx(2.0)


def test_multi_output_operator_planned_once():
    """An operator with two outputs populates both dpTable slots from one step."""
    lib = OperatorLibrary()
    split = MaterializedOperator("split_ab", {
        "Constraints.OpSpecification.Algorithm.name": "split",
        "Constraints.Engine": "A",
        "Constraints.Input.number": 1, "Constraints.Output.number": 2,
        "Constraints.Input0.type": "raw",
        "Constraints.Output0.type": "left",
        "Constraints.Output1.type": "right",
        "Optimization.execTime": 4.0, "Optimization.cost": 4.0})
    lib.add(split)
    lib.add(make_op("use_left", "useL", "A", "local", "left", "x", 1.0))
    lib.add(make_op("use_right", "useR", "A", "local", "right", "y", 1.0))
    join = MaterializedOperator("combine", {
        "Constraints.OpSpecification.Algorithm.name": "combine",
        "Constraints.Engine": "A",
        "Constraints.Input.number": 2, "Constraints.Output.number": 1,
        "Constraints.Input0.type": "x", "Constraints.Input1.type": "y",
        "Constraints.Output0.type": "z",
        "Optimization.execTime": 1.0, "Optimization.cost": 1.0})
    lib.add(join)

    wf = AbstractWorkflow()
    wf.add_dataset(Dataset("src", {"Constraints.type": "raw"},
                           materialized=True))
    for name in ("a", "b", "la", "rb", "out"):
        wf.add_dataset(Dataset(name))
    splitter = AbstractOperator("split", {
        "Constraints.OpSpecification.Algorithm.name": "split",
        "Constraints.Input.number": 1, "Constraints.Output.number": 2})
    wf.add_operator(splitter)
    for alg in ("useL", "useR", "combine"):
        n_in = 2 if alg == "combine" else 1
        wf.add_operator(AbstractOperator(alg, {
            "Constraints.OpSpecification.Algorithm.name": alg,
            "Constraints.Input.number": n_in}))
    wf.connect("src", "split")
    wf.connect("split", "a")
    wf.connect("split", "b")
    wf.connect("a", "useL")
    wf.connect("useL", "la")
    wf.connect("b", "useR")
    wf.connect("useR", "rb")
    wf.connect("la", "combine")
    wf.connect("rb", "combine")
    wf.connect("combine", "out")
    wf.set_target("out")

    plan = Planner(lib).plan(wf)
    names = [s.operator.name for s in plan.steps if not s.is_move]
    assert names.count("split_ab") == 1  # shared producer not duplicated
    assert set(names) == {"split_ab", "use_left", "use_right", "combine"}
    # cost counts the shared split per consumed branch (the paper's additive
    # input-cost approximation) but the step list stays deduplicated
    assert plan.cost >= 4.0 + 1.0 + 1.0 + 1.0


# -- regression: logging and replan seeding ---------------------------------


def test_plan_ready_logged_without_tracer():
    """The plan_ready log line must appear even when tracing is disabled
    (it used to be emitted only inside the tracer-enabled branch)."""
    from repro.obs.logging import clear as clear_logs
    from repro.obs.logging import recent as recent_logs

    clear_logs()
    Planner(text_clustering_library()).plan(text_clustering_workflow())
    events = [line["event"] for line in recent_logs(logger="planner")]
    assert "plan_ready" in events
    ready = [line for line in recent_logs(logger="planner")
             if line["event"] == "plan_ready"]
    assert ready[-1]["cached"] is False
    clear_logs()


def test_materialized_results_target_returns_empty_plan():
    """Replanning a target that was already computed before the failure
    must yield an empty zero-cost plan, mirroring the materialized-dataset
    early return."""
    wf = text_clustering_workflow()
    done = Dataset("d2", {
        "Constraints.Engine.FS": "HDFS", "Constraints.type": "seq",
        "Optimization.size": 1e5}, materialized=True)
    plan = Planner(text_clustering_library()).plan(
        wf, materialized_results={"d2": done})
    assert plan.steps == []
    assert plan.cost == 0.0
