"""Unit tests for the operator library and its selective index."""

import pytest

from repro.core import AbstractOperator, MaterializedOperator, OperatorLibrary


def mk(name, alg, engine):
    return MaterializedOperator(name, {
        "Constraints.OpSpecification.Algorithm.name": alg,
        "Constraints.Engine": engine,
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
    })


@pytest.fixture
def library():
    lib = OperatorLibrary()
    lib.add(mk("pr_spark", "pagerank", "Spark"))
    lib.add(mk("pr_hama", "pagerank", "Hama"))
    lib.add(mk("pr_java", "pagerank", "Java"))
    lib.add(mk("wc_mr", "wordcount", "Hadoop"))
    return lib


def abstract(alg, extra=None):
    props = {"Constraints.OpSpecification.Algorithm.name": alg}
    props.update(extra or {})
    return AbstractOperator(alg, props)


def test_len_contains_get(library):
    assert len(library) == 4
    assert "pr_spark" in library
    assert library.get("pr_hama").engine == "Hama"


def test_duplicate_name_rejected(library):
    with pytest.raises(ValueError):
        library.add(mk("pr_spark", "pagerank", "Spark"))


def test_index_prunes_candidates(library):
    candidates = library.candidates(abstract("pagerank"))
    assert {c.name for c in candidates} == {"pr_spark", "pr_hama", "pr_java"}


def test_wildcard_algorithm_scans_everything(library):
    candidates = library.candidates(abstract("x", {
        "Constraints.OpSpecification.Algorithm.name": "*"}))
    assert len(candidates) == 4


def test_find_materialized_matches(library):
    matches = library.find_materialized(abstract("pagerank"))
    assert {m.name for m in matches} == {"pr_spark", "pr_hama", "pr_java"}


def test_find_materialized_filters_engines(library):
    matches = library.find_materialized(
        abstract("pagerank"), available_engines={"Spark", "Java"})
    assert {m.name for m in matches} == {"pr_spark", "pr_java"}


def test_find_materialized_without_index_same_result(library):
    a = library.find_materialized(abstract("pagerank"), use_index=True)
    b = library.find_materialized(abstract("pagerank"), use_index=False)
    assert {m.name for m in a} == {m.name for m in b}


def test_engine_constraint_in_abstract(library):
    """An abstract operator may pin the engine (fine-grained description)."""
    pinned = abstract("pagerank", {"Constraints.Engine": "Hama"})
    matches = library.find_materialized(pinned)
    assert [m.name for m in matches] == ["pr_hama"]


def test_remove(library):
    library.remove("pr_spark")
    assert "pr_spark" not in library
    assert {m.name for m in library.find_materialized(abstract("pagerank"))} == {
        "pr_hama", "pr_java"}
    library.remove("nonexistent")  # no-op


def test_iteration(library):
    assert {op.name for op in library} == {"pr_spark", "pr_hama", "pr_java", "wc_mr"}
