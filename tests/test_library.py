"""Unit tests for the operator library and its selective index."""

import pytest

from repro.core import AbstractOperator, MaterializedOperator, OperatorLibrary


def mk(name, alg, engine):
    return MaterializedOperator(name, {
        "Constraints.OpSpecification.Algorithm.name": alg,
        "Constraints.Engine": engine,
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
    })


@pytest.fixture
def library():
    lib = OperatorLibrary()
    lib.add(mk("pr_spark", "pagerank", "Spark"))
    lib.add(mk("pr_hama", "pagerank", "Hama"))
    lib.add(mk("pr_java", "pagerank", "Java"))
    lib.add(mk("wc_mr", "wordcount", "Hadoop"))
    return lib


def abstract(alg, extra=None):
    props = {"Constraints.OpSpecification.Algorithm.name": alg}
    props.update(extra or {})
    return AbstractOperator(alg, props)


def test_len_contains_get(library):
    assert len(library) == 4
    assert "pr_spark" in library
    assert library.get("pr_hama").engine == "Hama"


def test_duplicate_name_rejected(library):
    with pytest.raises(ValueError):
        library.add(mk("pr_spark", "pagerank", "Spark"))


def test_index_prunes_candidates(library):
    candidates = library.candidates(abstract("pagerank"))
    assert {c.name for c in candidates} == {"pr_spark", "pr_hama", "pr_java"}


def test_wildcard_algorithm_scans_everything(library):
    candidates = library.candidates(abstract("x", {
        "Constraints.OpSpecification.Algorithm.name": "*"}))
    assert len(candidates) == 4


def test_find_materialized_matches(library):
    matches = library.find_materialized(abstract("pagerank"))
    assert {m.name for m in matches} == {"pr_spark", "pr_hama", "pr_java"}


def test_find_materialized_filters_engines(library):
    matches = library.find_materialized(
        abstract("pagerank"), available_engines={"Spark", "Java"})
    assert {m.name for m in matches} == {"pr_spark", "pr_java"}


def test_find_materialized_without_index_same_result(library):
    a = library.find_materialized(abstract("pagerank"), use_index=True)
    b = library.find_materialized(abstract("pagerank"), use_index=False)
    assert {m.name for m in a} == {m.name for m in b}


def test_engine_constraint_in_abstract(library):
    """An abstract operator may pin the engine (fine-grained description)."""
    pinned = abstract("pagerank", {"Constraints.Engine": "Hama"})
    matches = library.find_materialized(pinned)
    assert [m.name for m in matches] == ["pr_hama"]


def test_remove(library):
    library.remove("pr_spark")
    assert "pr_spark" not in library
    assert {m.name for m in library.find_materialized(abstract("pagerank"))} == {
        "pr_hama", "pr_java"}
    library.remove("nonexistent")  # no-op


def test_iteration(library):
    assert {op.name for op in library} == {"pr_spark", "pr_hama", "pr_java", "wc_mr"}


# -- regression: index buckets, epoch, listeners, memo ----------------------


def mk_unnamed(name, engine):
    """An operator with no Algorithm.name — indexed under ``None``."""
    return MaterializedOperator(name, {
        "Constraints.Engine": engine,
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
    })


def test_remove_deletes_empty_index_bucket(library):
    """Churning operators must not leave empty lists behind in the index."""
    library.remove("wc_mr")
    assert all(bucket for bucket in library._index.values())
    assert "wordcount" not in library._index
    # re-adding after full removal recreates the bucket from scratch
    library.add(mk("wc_mr2", "wordcount", "Hadoop"))
    assert library._index["wordcount"] == ["wc_mr2"]
    for name in ("pr_spark", "pr_hama", "pr_java"):
        library.remove(name)
    assert "pagerank" not in library._index
    assert all(bucket for bucket in library._index.values())


def test_unindexed_operator_appears_in_candidate_pool(library):
    """Ops lacking Algorithm.name live in the ``None`` bucket and must be
    part of every candidate pool, or the index silently returns a smaller
    pool than the full scan."""
    library.add(mk_unnamed("mystery", "Spark"))
    pool = {op.name for op in library.candidates(abstract("pagerank"))}
    assert "mystery" in pool


def test_wildcard_operator_matches_concrete_abstract(library):
    """A ``*``-named implementation satisfies any concrete algorithm name,
    so the wildcard bucket must be pooled alongside the concrete one."""
    library.add(mk("generic", "*", "Flink"))
    for use_index in (True, False):
        matches = {m.name for m in library.find_materialized(
            abstract("pagerank"), use_index=use_index)}
        assert matches == {"pr_spark", "pr_hama", "pr_java", "generic"}


def test_indexed_equals_full_scan_with_mixed_buckets(library):
    """Concrete + wildcard + unnamed operators: both paths agree exactly."""
    library.add(mk("generic", "*", "Flink"))
    library.add(mk_unnamed("mystery", "Spark"))
    for alg in ("pagerank", "wordcount", "nosuch"):
        indexed = {m.name for m in library.find_materialized(
            abstract(alg), use_index=True)}
        scanned = {m.name for m in library.find_materialized(
            abstract(alg), use_index=False)}
        assert indexed == scanned


def test_epoch_bumps_and_listeners_fire(library):
    seen = []
    library.listeners.append(seen.append)
    before = library.epoch
    library.add(mk("pr_flink", "pagerank", "Flink"))
    library.remove("pr_flink")
    assert library.epoch == before + 2
    assert seen == [before + 1, before + 2]
    library.remove("nonexistent")  # no-op: no epoch bump, no notification
    assert library.epoch == before + 2
    assert len(seen) == 2


def test_match_memo_cleared_on_mutation(library):
    """Memoized match sets must not outlive a library change."""
    first = {m.name for m in library.find_materialized(abstract("pagerank"))}
    assert first == {"pr_spark", "pr_hama", "pr_java"}
    library.add(mk("pr_flink", "pagerank", "Flink"))
    second = {m.name for m in library.find_materialized(abstract("pagerank"))}
    assert second == first | {"pr_flink"}
    library.remove("pr_spark")
    third = {m.name for m in library.find_materialized(abstract("pagerank"))}
    assert third == {"pr_hama", "pr_java", "pr_flink"}
