"""Tests for plan provenance and the explain report (``ires explain``)."""

import pytest

from repro.core import (
    AbstractOperator,
    AbstractWorkflow,
    Dataset,
    IReS,
    MaterializedOperator,
    Planner,
)
from repro.core.planner import MetadataCostEstimator, PlanningError
from repro.core.provenance import (
    REASON_COST_INFEASIBLE,
    REASON_INPUT_UNPRODUCIBLE,
    REASON_NO_COMPATIBLE_INPUT,
    CandidateRecord,
    PlanProvenance,
)
from repro.obs.accuracy import AccuracyLedger, LedgerEntry
from repro.scenarios import setup_helloworld
from repro.workflows import generate, synthetic_library


def _record(operator, engine, total, abstract="count", feasible=True,
            chosen=False, reason=""):
    return CandidateRecord(
        abstract=abstract, operator=operator, algorithm="LineCount",
        engine=engine, feasible=feasible, reason=reason,
        operator_cost=total, total_cost=total,
        predicted={"execTime": total}, chosen=chosen,
    )


class TestCandidateRecord:
    def test_feasible_payload(self):
        payload = _record("count_spark", "Spark", 6.0, chosen=True).to_dict()
        assert payload["chosen"] is True
        assert payload["totalCost"] == 6.0
        assert payload["predicted"] == {"execTime": 6.0}
        assert "reason" not in payload

    def test_infeasible_payload(self):
        payload = _record("count_hama", "Hama", 0.0, feasible=False,
                          reason=REASON_COST_INFEASIBLE).to_dict()
        assert payload["reason"] == REASON_COST_INFEASIBLE
        assert "totalCost" not in payload and "chosen" not in payload


class TestPlanProvenanceExplain:
    def _provenance(self):
        prov = PlanProvenance("wf")
        prov.note(_record("count_spark", "Spark", 6.0, chosen=True))
        prov.note(_record("count_python", "Python", 12.0))
        prov.note(_record("count_hadoop", "Hadoop", 9.0))
        prov.note(_record("count_hama", "Hama", 0.0, feasible=False,
                          reason=REASON_COST_INFEASIBLE))
        prov.plan_cost = 6.0
        return prov

    def test_alternatives_sorted_and_delta(self):
        report = self._provenance().explain()
        assert report["workflow"] == "wf"
        assert report["planCost"] == 6.0
        (step,) = report["steps"]
        assert step["chosen"]["operator"] == "count_spark"
        assert [a["operator"] for a in step["alternatives"]] == \
            ["count_hadoop", "count_python"]
        assert step["bestRejected"]["operator"] == "count_hadoop"
        assert step["bestRejected"]["engine"] == "Hadoop"
        assert step["costDelta"] == pytest.approx(3.0)
        assert step["alternatives"][1]["deltaVsChosen"] == pytest.approx(6.0)
        assert step["infeasible"] == [
            {"operator": "count_hama", "engine": "Hama",
             "reason": REASON_COST_INFEASIBLE}]

    def test_no_feasible_candidate(self):
        prov = PlanProvenance("wf")
        prov.note(_record("count_hama", "Hama", 0.0, feasible=False,
                          reason=REASON_INPUT_UNPRODUCIBLE))
        (step,) = prov.explain()["steps"]
        assert step["chosen"] is None
        assert step["bestRejected"] is None and step["costDelta"] is None

    def test_ledger_annotates_model_error(self):
        ledger = AccuracyLedger()
        ledger.record(LedgerEntry(
            run_id="r", workflow="wf", step="count_spark",
            operator="LineCount", engine="Spark",
            predicted={"execTime": 6.0}, actual={"execTime": 5.0}, at=0.0))
        report = self._provenance().explain(ledger=ledger)
        (step,) = report["steps"]
        err = step["chosen"]["modelError"]
        assert err["samples"] == 1
        assert err["mape"] == pytest.approx(0.2)
        # no ledger data for the Hadoop/Python models
        assert step["bestRejected"]["modelError"] is None

    def test_without_ledger_model_error_is_none(self):
        (step,) = self._provenance().explain()["steps"]
        assert step["chosen"]["modelError"] is None


def _two_impl_workflow():
    """One abstract count op with a cheap and an expensive implementation."""
    wf = AbstractWorkflow("count-wf")
    wf.add_dataset(Dataset("logs", {
        "Constraints.Engine.FS": "HDFS",
        "Constraints.type": "text",
        "Optimization.size": 1e6,
    }, materialized=True))
    wf.add_dataset(Dataset("result"))
    wf.add_operator(AbstractOperator("count", {
        "Constraints.OpSpecification.Algorithm.name": "LineCount",
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
    }))
    wf.connect("logs", "count")
    wf.connect("count", "result")
    wf.set_target("result")
    return wf


def _impl(name, engine, exec_time):
    return MaterializedOperator(name, {
        "Constraints.OpSpecification.Algorithm.name": "LineCount",
        "Constraints.Engine": engine,
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
        "Constraints.Input0.Engine.FS": "HDFS",
        "Constraints.Input0.type": "text",
        "Constraints.Output0.Engine.FS": "HDFS",
        "Constraints.Output0.type": "counts",
        "Optimization.execTime": exec_time,
    })


class TestPlannerProvenanceCapture:
    def _planner(self, *impls, **kwargs):
        from repro.core.library import OperatorLibrary

        library = OperatorLibrary()
        for impl in impls:
            library.add(impl)
        return Planner(library, MetadataCostEstimator(),
                       record_provenance=True, **kwargs)

    def test_off_by_default(self):
        library = self._planner(_impl("a", "Spark", 1.0)).library
        planner = Planner(library, MetadataCostEstimator())
        planner.plan(_two_impl_workflow())
        assert planner.record_provenance is False
        assert planner.last_provenance is None

    def test_chosen_matches_plan(self):
        planner = self._planner(_impl("count_spark", "Spark", 6.0),
                                _impl("count_python", "Python", 12.0))
        plan = planner.plan(_two_impl_workflow())
        prov = planner.last_provenance
        assert prov is not None
        (step,) = prov.explain()["steps"]
        assert step["chosen"]["operator"] == "count_spark"
        assert step["chosen"]["operator"] == plan.steps[-1].operator.name
        assert step["costDelta"] == pytest.approx(6.0)

    def test_cost_infeasible_reason(self):
        planner = self._planner(
            _impl("count_spark", "Spark", 6.0),
            _impl("count_broken", "Hama", float("inf")))
        planner.plan(_two_impl_workflow())
        (step,) = planner.last_provenance.explain()["steps"]
        assert step["infeasible"] == [
            {"operator": "count_broken", "engine": "Hama",
             "reason": REASON_COST_INFEASIBLE}]

    def test_no_compatible_input_reason(self):
        bad = _impl("count_arff", "Spark", 6.0)
        bad.metadata.set("Constraints.Input0.type", "arff")
        planner = self._planner(_impl("count_spark", "Spark", 6.0), bad,
                                allow_moves=False)
        planner.plan(_two_impl_workflow())
        (step,) = planner.last_provenance.explain()["steps"]
        assert step["infeasible"] == [
            {"operator": "count_arff", "engine": "Spark",
             "reason": REASON_NO_COMPATIBLE_INPUT}]

    def test_partial_provenance_survives_planning_error(self):
        planner = self._planner(_impl("count_broken", "Hama", float("inf")))
        with pytest.raises(PlanningError):
            planner.plan(_two_impl_workflow())
        prov = planner.last_provenance
        assert prov is not None
        (step,) = prov.explain()["steps"]
        assert step["chosen"] is None
        assert step["infeasible"][0]["reason"] == REASON_COST_INFEASIBLE

    def test_input_unproducible_reason(self):
        wf = AbstractWorkflow("chain")
        wf.add_dataset(Dataset("logs", {
            "Constraints.Engine.FS": "HDFS",
            "Constraints.type": "text",
        }, materialized=True))
        wf.add_dataset(Dataset("mid"))
        wf.add_dataset(Dataset("out"))
        for alg in ("A", "B"):
            wf.add_operator(AbstractOperator(alg.lower(), {
                "Constraints.OpSpecification.Algorithm.name": alg,
                "Constraints.Input.number": 1,
                "Constraints.Output.number": 1,
            }))
        wf.connect("logs", "a")
        wf.connect("a", "mid")
        wf.connect("mid", "b")
        wf.connect("b", "out")
        wf.set_target("out")
        # stage A has no implementation at all, so B's input is unproducible
        impl_b = MaterializedOperator("b_spark", {
            "Constraints.OpSpecification.Algorithm.name": "B",
            "Constraints.Engine": "Spark",
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
            "Constraints.Input0.Engine.FS": "HDFS",
            "Constraints.Output0.Engine.FS": "HDFS",
            "Optimization.execTime": 1.0,
        })
        planner = self._planner(impl_b)
        with pytest.raises(PlanningError):
            planner.plan(wf)
        steps = planner.last_provenance.explain()["steps"]
        reasons = {s["abstract"]: [i["reason"] for i in s["infeasible"]]
                   for s in steps}
        assert reasons.get("b") == [REASON_INPUT_UNPRODUCIBLE]


class TestGoldenExplain:
    """ISSUE acceptance: explain matches the DP decision on Fig 14's basis.

    The Pegasus Montage workflow with 4 synthetic engines per stage is the
    planner benchmark's configuration (Fig 14): for every non-move plan
    step, the explain report must name the engine the DP actually chose,
    the best rejected alternative, and a cost delta consistent with the
    recorded candidate costs.
    """

    def test_explain_matches_dp_decision(self):
        workflow = generate("Montage", 30, seed=1)
        library = synthetic_library(workflow, 4, seed=2)
        planner = Planner(library, MetadataCostEstimator(),
                          record_provenance=True)
        plan = planner.plan(workflow)
        report = planner.last_provenance.explain()
        assert report["workflow"] == workflow.name
        assert report["planCost"] == pytest.approx(plan.cost)

        chosen_steps = {s.abstract_name: s for s in plan.steps
                        if not s.is_move}
        entries = {e["abstract"]: e for e in report["steps"]}
        assert set(chosen_steps) <= set(entries)
        for name, step in chosen_steps.items():
            entry = entries[name]
            chosen = entry["chosen"]
            assert chosen is not None, f"no chosen candidate for {name}"
            assert chosen["chosen"] is True
            assert chosen["operator"] == step.operator.name
            assert chosen["engine"] == step.engine
            # 4 engines per stage: the other 3 are rejected or infeasible
            assert len(entry["alternatives"]) + len(entry["infeasible"]) == 3
            if entry["alternatives"]:
                best = entry["bestRejected"]
                assert best == entry["alternatives"][0]
                assert best["totalCost"] == min(
                    a["totalCost"] for a in entry["alternatives"])
                assert entry["costDelta"] == pytest.approx(
                    best["totalCost"] - chosen["totalCost"])
                assert best["deltaVsChosen"] == entry["costDelta"]


class TestExecutorExplain:
    def test_explain_report_for_a_run(self):
        ledger = AccuracyLedger()
        ires = IReS(record_provenance=True, ledger=ledger)
        make = setup_helloworld(ires)
        report = ires.execute(make())
        assert report.succeeded
        assert report.provenances, "executor kept no provenance"

        explain = ires.executor.explain_report()
        assert explain is not None
        assert explain["run_id"] == report.run_id
        assert ires.executor.explain_report(report.run_id) == explain
        (plan_report,) = explain["plans"]
        chosen = [s["chosen"] for s in plan_report["steps"]
                  if s["chosen"] is not None]
        assert chosen, "no chosen candidates in the explain report"
        # the run's ledger entries annotate the chosen models
        annotated = [c for c in chosen if c["modelError"] is not None]
        assert annotated and all(
            c["modelError"]["samples"] >= 1 for c in annotated)

    def test_unknown_run_returns_none(self):
        ires = IReS(record_provenance=True)
        make = setup_helloworld(ires)
        ires.execute(make())
        assert ires.executor.explain_report("nope") is None

    def test_no_provenance_when_disabled(self):
        ires = IReS()
        make = setup_helloworld(ires)
        report = ires.execute(make())
        assert report.provenances == []
        assert ires.executor.explain_report() is None
