"""Tests for the DOT renderings (repro.viz)."""

import pytest

from repro.core import IReS
from repro.musqle import MuSQLE, build_default_deployment, JOIN_QUERIES
from repro.scenarios import setup_text_analytics
from repro.viz import musqle_plan_to_dot, plan_to_dot, workflow_to_dot


@pytest.fixture
def text_setup():
    ires = IReS()
    make = setup_text_analytics(ires)
    return ires, make(2.5e4)


def test_workflow_dot_structure(text_setup):
    _, workflow = text_setup
    dot = workflow_to_dot(workflow)
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert '"webContent"' in dot and "doubleoctagon" in dot
    # every edge of the workflow appears
    assert '"webContent" -> "tf_idf"' in dot
    assert '"kmeans" -> "clusters"' in dot


def test_plan_dot_marks_moves(text_setup):
    ires, workflow = text_setup
    plan = ires.plan(workflow)
    dot = plan_to_dot(plan)
    assert dot.count("shape=box") == len(plan.steps)
    assert "style=dashed" in dot  # the hybrid plan contains a move
    assert "@scikit" in dot and "@Spark" in dot


def test_musqle_plan_dot(tmp_path):
    deployment = build_default_deployment(scale_factor=1.0, seed=31)
    musqle = MuSQLE(deployment)
    plan, _ = musqle.optimize(JOIN_QUERIES[4])
    dot = musqle_plan_to_dot(plan)
    assert dot.startswith("digraph")
    assert "rows" in dot
    # parsable enough to write out
    (tmp_path / "plan.dot").write_text(dot)


def test_dot_escapes_quotes():
    from repro.viz import _quote

    assert _quote('a"b') == '"a\\"b"'
