"""Tests for the simulated HDFS substrate (repro.engines.hdfs)."""

import pytest

from repro.engines import Cluster
from repro.engines.hdfs import DEFAULT_BLOCK_SIZE, HDFSError, SimHDFS

GB = 1e9


@pytest.fixture
def hdfs():
    return SimHDFS(Cluster.homogeneous(6, 4, 8.0), disk_gb_per_node=10.0)


class TestNamespace:
    def test_put_stat_ls_rm(self, hdfs):
        hdfs.put("/data/a", 1 * GB)
        hdfs.put("/data/b", 2 * GB)
        hdfs.put("/tmp/x", 1000)
        assert hdfs.exists("/data/a")
        assert hdfs.ls("/data") == ["/data/a", "/data/b"]
        assert hdfs.stat("/data/b").size == int(2 * GB)
        hdfs.rm("/data/a")
        assert not hdfs.exists("/data/a")
        with pytest.raises(HDFSError):
            hdfs.stat("/data/a")

    def test_put_existing_requires_overwrite(self, hdfs):
        hdfs.put("/f", 100)
        with pytest.raises(HDFSError):
            hdfs.put("/f", 100)
        hdfs.put("/f", 200, overwrite=True)
        assert hdfs.stat("/f").size == 200

    def test_rm_missing_raises(self, hdfs):
        with pytest.raises(HDFSError):
            hdfs.rm("/none")

    def test_negative_size_rejected(self, hdfs):
        with pytest.raises(HDFSError):
            hdfs.put("/bad", -1)

    def test_payload_roundtrip(self, hdfs):
        artifact = {"scores": [1, 2, 3]}
        hdfs.put("/results/scores", 24, payload=artifact)
        assert hdfs.get("/results/scores") is artifact
        assert hdfs.get("/results/scores") == {"scores": [1, 2, 3]}


class TestBlocks:
    def test_block_count_and_sizes(self, hdfs):
        file = hdfs.put("/big", 2.5 * DEFAULT_BLOCK_SIZE)
        assert len(file.blocks) == 3
        assert sum(b.size for b in file.blocks) == int(2.5 * DEFAULT_BLOCK_SIZE)

    def test_replication_on_distinct_nodes(self, hdfs):
        file = hdfs.put("/r", 1000)
        for block in file.blocks:
            assert len(block.replicas) == 3
            assert len(set(block.replicas)) == 3

    def test_replication_capped_by_healthy_nodes(self):
        hdfs = SimHDFS(Cluster.homogeneous(2), replication=3)
        file = hdfs.put("/f", 100)
        assert file.replication == 2

    def test_usage_accounting(self, hdfs):
        before = hdfs.total_used
        hdfs.put("/acc", 1 * GB)
        # replication 3 => 3 GB of raw usage
        assert hdfs.total_used - before == pytest.approx(3 * GB, rel=0.01)
        hdfs.rm("/acc")
        assert hdfs.total_used == pytest.approx(before)

    def test_capacity_exhaustion_rolls_back(self, hdfs):
        # 6 nodes x 10 GB; replication 3 -> effective ~20 GB
        hdfs.put("/fill1", 9 * GB)
        with pytest.raises(HDFSError):
            hdfs.put("/huge", 60 * GB)
        assert not hdfs.exists("/huge")
        used_after = hdfs.total_used
        assert used_after == pytest.approx(27 * GB, rel=0.05)


class TestHealthInteraction:
    def test_under_replication_detected_and_healed(self, hdfs):
        file = hdfs.put("/critical", 1 * GB)
        victim = file.blocks[0].replicas[0]
        hdfs.cluster.mark_unhealthy(victim)
        degraded = hdfs.under_replicated_blocks()
        assert degraded
        healed = hdfs.re_replicate()
        assert healed >= len(degraded)
        assert hdfs.under_replicated_blocks() == []
        for block in file.blocks:
            assert victim not in block.replicas

    def test_no_healthy_nodes_rejected(self):
        cluster = Cluster.homogeneous(2)
        hdfs = SimHDFS(cluster)
        for node in cluster.nodes:
            cluster.mark_unhealthy(node)
        with pytest.raises(HDFSError):
            hdfs.put("/f", 10)


class TestExecutorIntegration:
    def test_intermediates_written_to_hdfs(self):
        from repro.core import IReS
        from repro.scenarios import setup_graph_analytics

        ires = IReS()
        make = setup_graph_analytics(ires)
        workflow = make(1e6)
        report = ires.execute(workflow)
        assert report.succeeded
        files = ires.cloud.hdfs.ls(f"/intermediates/{workflow.name}")
        assert files  # pagerank scores landed in HDFS
        assert ires.cloud.hdfs.stat(files[0]).size > 0
