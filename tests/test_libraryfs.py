"""Tests for the asapLibrary filesystem layout loader (repro.core.libraryfs)."""

import pytest

from repro.core import IReS, dump_asap_library, load_asap_library
from repro.core.libraryfs import LibraryLayoutError


@pytest.fixture
def library_dir(tmp_path):
    """A minimal asapLibrary/ tree following §3.3."""
    root = tmp_path / "asapLibrary"
    (root / "datasets").mkdir(parents=True)
    (root / "datasets" / "asapServerLog").write_text(
        "Constraints.Engine.FS=HDFS\n"
        "Constraints.type=text\n"
        "Execution.path=hdfs:///user/root/asap-server.log\n"
        "Optimization.size=2048\n"
    )
    op_dir = root / "operators" / "LineCount_spark"
    op_dir.mkdir(parents=True)
    (op_dir / "description").write_text(
        "Constraints.Engine=Spark\n"
        "Constraints.Input.number=1\n"
        "Constraints.Output.number=1\n"
        "Constraints.Input0.Engine.FS=HDFS\n"
        "Constraints.Input0.type=text\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n"
    )
    (root / "abstractOperators").mkdir()
    (root / "abstractOperators" / "LineCount").write_text(
        "Constraints.Input.number=1\n"
        "Constraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n"
    )
    wf_dir = root / "abstractWorkflows" / "LineCountWorkflow"
    wf_dir.mkdir(parents=True)
    (wf_dir / "graph").write_text(
        "asapServerLog,LineCount,0\nLineCount,d1,0\nd1,$$target\n")
    return root


def test_load_registers_everything(library_dir):
    ires = IReS()
    report = load_asap_library(library_dir, ires)
    assert report.datasets == ["asapServerLog"]
    assert report.operators == ["LineCount_spark"]
    assert report.abstract_operators == ["LineCount"]
    assert report.workflows == ["LineCountWorkflow"]
    assert report.total() == 4
    assert "asapServerLog" in ires.datasets
    assert "LineCount_spark" in ires.library
    assert "LineCountWorkflow" in ires.workflows


def test_loaded_workflow_plans_and_executes(library_dir):
    ires = IReS()
    load_asap_library(library_dir, ires)
    workflow = ires.workflows["LineCountWorkflow"]
    plan = ires.plan(workflow)
    assert plan.steps[0].engine == "Spark"
    report = ires.execute(workflow)
    assert report.succeeded


def test_workflow_local_artifacts(library_dir):
    """A workflow folder may carry its own dataset/operator descriptions."""
    wf_dir = library_dir / "abstractWorkflows" / "LocalWorkflow"
    (wf_dir / "datasets").mkdir(parents=True)
    (wf_dir / "datasets" / "localData").write_text(
        "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
        "Optimization.size=100\n")
    (wf_dir / "operators").mkdir()
    (wf_dir / "operators" / "LocalCount").write_text(
        "Constraints.Input.number=1\nConstraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n")
    (wf_dir / "graph").write_text(
        "localData,LocalCount,0\nLocalCount,d9,0\nd9,$$target\n")
    ires = IReS()
    report = load_asap_library(library_dir, ires)
    assert "LocalWorkflow" in report.workflows
    wf = ires.workflows["LocalWorkflow"]
    assert "localData" in wf.datasets
    # locally-scoped artefacts do NOT leak into the global registries
    assert "localData" not in ires.datasets


def test_missing_directory_raises(tmp_path):
    with pytest.raises(LibraryLayoutError):
        load_asap_library(tmp_path / "nothing-here", IReS())


def test_empty_library_loads_nothing(tmp_path):
    root = tmp_path / "empty"
    root.mkdir()
    report = load_asap_library(root, IReS())
    assert report.total() == 0


def test_roundtrip_dump_and_reload(library_dir, tmp_path):
    ires = IReS()
    load_asap_library(library_dir, ires)
    out = tmp_path / "dumped"
    dump_asap_library(ires, out)

    ires2 = IReS()
    report = load_asap_library(out, ires2)
    assert report.total() == 4
    assert (ires2.datasets["asapServerLog"].metadata.to_properties()
            == ires.datasets["asapServerLog"].metadata.to_properties())
    assert (ires2.library.get("LineCount_spark").metadata.to_properties()
            == ires.library.get("LineCount_spark").metadata.to_properties())
    wf2 = ires2.workflows["LineCountWorkflow"]
    assert wf2.target == "d1"
    assert ires2.plan(wf2).cost == pytest.approx(
        ires.plan(ires.workflows["LineCountWorkflow"]).cost)
