"""Tests for the asapLibrary filesystem layout loader (repro.core.libraryfs)."""

import pytest

from repro.core import IReS, dump_asap_library, load_asap_library
from repro.core.libraryfs import LibraryLayoutError


@pytest.fixture
def library_dir(tmp_path):
    """A minimal asapLibrary/ tree following §3.3."""
    root = tmp_path / "asapLibrary"
    (root / "datasets").mkdir(parents=True)
    (root / "datasets" / "asapServerLog").write_text(
        "Constraints.Engine.FS=HDFS\n"
        "Constraints.type=text\n"
        "Execution.path=hdfs:///user/root/asap-server.log\n"
        "Optimization.size=2048\n"
    )
    op_dir = root / "operators" / "LineCount_spark"
    op_dir.mkdir(parents=True)
    (op_dir / "description").write_text(
        "Constraints.Engine=Spark\n"
        "Constraints.Input.number=1\n"
        "Constraints.Output.number=1\n"
        "Constraints.Input0.Engine.FS=HDFS\n"
        "Constraints.Input0.type=text\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n"
    )
    (root / "abstractOperators").mkdir()
    (root / "abstractOperators" / "LineCount").write_text(
        "Constraints.Input.number=1\n"
        "Constraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n"
    )
    wf_dir = root / "abstractWorkflows" / "LineCountWorkflow"
    wf_dir.mkdir(parents=True)
    (wf_dir / "graph").write_text(
        "asapServerLog,LineCount,0\nLineCount,d1,0\nd1,$$target\n")
    return root


def test_load_registers_everything(library_dir):
    ires = IReS()
    report = load_asap_library(library_dir, ires)
    assert report.datasets == ["asapServerLog"]
    assert report.operators == ["LineCount_spark"]
    assert report.abstract_operators == ["LineCount"]
    assert report.workflows == ["LineCountWorkflow"]
    assert report.total() == 4
    assert "asapServerLog" in ires.datasets
    assert "LineCount_spark" in ires.library
    assert "LineCountWorkflow" in ires.workflows


def test_loaded_workflow_plans_and_executes(library_dir):
    ires = IReS()
    load_asap_library(library_dir, ires)
    workflow = ires.workflows["LineCountWorkflow"]
    plan = ires.plan(workflow)
    assert plan.steps[0].engine == "Spark"
    report = ires.execute(workflow)
    assert report.succeeded


def test_workflow_local_artifacts(library_dir):
    """A workflow folder may carry its own dataset/operator descriptions."""
    wf_dir = library_dir / "abstractWorkflows" / "LocalWorkflow"
    (wf_dir / "datasets").mkdir(parents=True)
    (wf_dir / "datasets" / "localData").write_text(
        "Constraints.Engine.FS=HDFS\nConstraints.type=text\n"
        "Optimization.size=100\n")
    (wf_dir / "operators").mkdir()
    (wf_dir / "operators" / "LocalCount").write_text(
        "Constraints.Input.number=1\nConstraints.Output.number=1\n"
        "Constraints.OpSpecification.Algorithm.name=LineCount\n")
    (wf_dir / "graph").write_text(
        "localData,LocalCount,0\nLocalCount,d9,0\nd9,$$target\n")
    ires = IReS()
    report = load_asap_library(library_dir, ires)
    assert "LocalWorkflow" in report.workflows
    wf = ires.workflows["LocalWorkflow"]
    assert "localData" in wf.datasets
    # locally-scoped artefacts do NOT leak into the global registries
    assert "localData" not in ires.datasets


def test_missing_directory_raises(tmp_path):
    with pytest.raises(LibraryLayoutError):
        load_asap_library(tmp_path / "nothing-here", IReS())


def test_empty_library_loads_nothing(tmp_path):
    root = tmp_path / "empty"
    root.mkdir()
    report = load_asap_library(root, IReS())
    assert report.total() == 0


def test_roundtrip_dump_and_reload(library_dir, tmp_path):
    ires = IReS()
    load_asap_library(library_dir, ires)
    out = tmp_path / "dumped"
    dump_asap_library(ires, out)

    ires2 = IReS()
    report = load_asap_library(out, ires2)
    assert report.total() == 4
    assert (ires2.datasets["asapServerLog"].metadata.to_properties()
            == ires.datasets["asapServerLog"].metadata.to_properties())
    assert (ires2.library.get("LineCount_spark").metadata.to_properties()
            == ires.library.get("LineCount_spark").metadata.to_properties())
    wf2 = ires2.workflows["LineCountWorkflow"]
    assert wf2.target == "d1"
    assert ires2.plan(wf2).cost == pytest.approx(
        ires.plan(ires.workflows["LineCountWorkflow"]).cost)


class TestTolerantLoading:
    """Malformed artefacts become diagnostics + metrics, never silent skips."""

    def test_malformed_dataset_recorded(self, library_dir):
        (library_dir / "datasets" / "broken").write_text("no equals sign\n")
        ires = IReS()
        report = load_asap_library(library_dir, ires)
        assert "broken" not in ires.datasets
        assert report.load_errors == 1
        diag = report.diagnostics[0]
        assert diag.code == "IRES001"
        assert diag.artifact == "dataset:broken"
        assert diag.location == "datasets/broken"
        # the well-formed artefacts still load
        assert report.datasets == ["asapServerLog"]

    def test_operator_without_description_recorded(self, library_dir):
        (library_dir / "operators" / "empty_op").mkdir()
        report = load_asap_library(library_dir, IReS())
        assert report.operators == ["LineCount_spark"]
        codes = {d.code for d in report.diagnostics}
        assert codes == {"IRES001"}
        assert any("no description file" in d.message
                   for d in report.diagnostics)

    def test_cyclic_workflow_recorded_as_ires020(self, library_dir):
        wf = library_dir / "abstractWorkflows" / "Loop"
        wf.mkdir()
        (wf / "graph").write_text(
            "d0,LineCount,0\nLineCount,d0,0\nd0,$$target\n")
        ires = IReS()
        report = load_asap_library(library_dir, ires)
        assert "Loop" not in ires.workflows
        diag = next(d for d in report.diagnostics if d.code == "IRES020")
        assert diag.artifact == "workflow:Loop"
        assert diag.location == "abstractWorkflows/Loop/graph"

    def test_malformed_graph_line_recorded_with_line_number(self, library_dir):
        wf = library_dir / "abstractWorkflows" / "Bad"
        wf.mkdir()
        (wf / "graph").write_text(
            "asapServerLog,LineCount,0\nnot-an-edge\nd1,$$target\n")
        report = load_asap_library(library_dir, IReS())
        diag = next(d for d in report.diagnostics if d.code == "IRES025")
        assert diag.location == "abstractWorkflows/Bad/graph:2"
        assert "not-an-edge" in diag.message

    def test_load_errors_metric_increments(self, library_dir):
        from repro.obs.metrics import REGISTRY

        REGISTRY.reset()
        (library_dir / "datasets" / "broken").write_text("nope\n")
        (library_dir / "abstractOperators" / "bad").write_text("nope\n")
        load_asap_library(library_dir, IReS())
        counter = REGISTRY.get("ires_library_load_errors_total")
        assert counter.value(kind="dataset") == 1
        assert counter.value(kind="abstract") == 1
        assert counter.value(kind="operator") == 0

    def test_clean_load_reports_no_errors(self, library_dir):
        report = load_asap_library(library_dir, IReS())
        assert report.load_errors == 0
        assert report.diagnostics == []
