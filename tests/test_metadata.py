"""Unit tests for the meta-data tree framework (repro.core.metadata)."""

import pytest

from repro.core.metadata import MetadataError, MetadataTree, WILDCARD


def tfidf_abstract():
    """The abstract TF_IDF operator of Figure 2.b."""
    return MetadataTree.from_properties({
        "Constraints.Input.number": 1,
        "Constraints.OpSpecification.Algorithm.name": "TF_IDF",
        "Constraints.Output.number": 1,
    })


def tfidf_mahout():
    """The materialized TF_IDF_mahout operator of Figure 3."""
    return MetadataTree.from_properties({
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
        "Constraints.OpSpecification.Algorithm.name": "TF_IDF",
        "Constraints.Engine": "Hadoop",
        "Constraints.Input0.Engine.FS": "HDFS",
        "Constraints.Input0.type": "sequence",
        "Constraints.Output0.Engine.FS": "HDFS",
        "Execution.Argument0": "In0.path",
        "Optimization.execTime": "1.0",
    })


class TestConstruction:
    def test_from_mapping_and_get(self):
        tree = MetadataTree.from_properties({"a.b.c": "x", "a.d": 3})
        assert tree.get("a.b.c") == "x"
        assert tree.get("a.d") == "3"
        assert tree.get("missing") is None
        assert tree.get("missing", "dflt") == "dflt"

    def test_from_lines_skips_comments_and_blanks(self):
        tree = MetadataTree.from_properties([
            "# comment", "", "Constraints.Engine=Spark",
            "Execution.path = hdfs:///x ",
        ])
        assert tree.get("Constraints.Engine") == "Spark"
        assert tree.get("Execution.path") == "hdfs:///x"

    def test_bad_line_raises(self):
        with pytest.raises(MetadataError):
            MetadataTree.from_properties(["no equals sign"])

    def test_from_file(self, tmp_path):
        path = tmp_path / "description"
        path.write_text("Constraints.Engine=Cilk\nOptimization.size=932E06\n")
        tree = MetadataTree.from_file(path)
        assert tree.get("Constraints.Engine") == "Cilk"
        assert tree.get_float("Optimization.size") == pytest.approx(932e6)

    def test_empty_key_raises(self):
        with pytest.raises(MetadataError):
            MetadataTree().set("", "x")

    def test_assign_value_to_internal_node_raises(self):
        tree = MetadataTree.from_properties({"a.b": "x"})
        with pytest.raises(MetadataError):
            tree.set("a", "y")


class TestAccess:
    def test_get_float_and_int(self):
        tree = MetadataTree.from_properties({"n": "42", "x": "1.5"})
        assert tree.get_int("n") == 42
        assert tree.get_float("x") == 1.5
        assert tree.get_int("missing", 7) == 7

    def test_get_float_non_numeric_raises(self):
        tree = MetadataTree.from_properties({"x": "abc"})
        with pytest.raises(MetadataError):
            tree.get_float("x")

    def test_leaves_sorted_lexicographically(self):
        tree = MetadataTree.from_properties({"b.z": 1, "a": 2, "b.a": 3})
        assert [k for k, _ in tree.leaves()] == ["a", "b.a", "b.z"]

    def test_size_counts_nodes(self):
        tree = MetadataTree.from_properties({"a.b": 1, "a.c": 2})
        # root + a + b + c
        assert tree.size() == 4

    def test_roundtrip_to_properties(self):
        props = {"Constraints.Engine": "Spark", "Execution.path": "/x"}
        assert MetadataTree.from_properties(props).to_properties() == props

    def test_remove(self):
        tree = MetadataTree.from_properties({"a.b": 1, "a.c": 2})
        tree.remove("a.b")
        assert tree.get("a.b") is None
        assert tree.get("a.c") == "2"

    def test_copy_is_deep(self):
        tree = MetadataTree.from_properties({"a.b": 1})
        clone = tree.copy()
        clone.set("a.b", 2)
        assert tree.get("a.b") == "1"

    def test_equality_and_hash(self):
        t1 = MetadataTree.from_properties({"a": 1, "b.c": 2})
        t2 = MetadataTree.from_properties({"b.c": 2, "a": 1})
        assert t1 == t2
        assert hash(t1) == hash(t2)


class TestMatching:
    def test_paper_example_matches(self):
        """TF_IDF_mahout matches the abstract TF_IDF (Figures 2-3)."""
        abstract = tfidf_abstract()
        materialized = tfidf_mahout()
        assert abstract.node("Constraints").matches(materialized.node("Constraints"))

    def test_match_fails_on_different_algorithm(self):
        abstract = tfidf_abstract()
        other = tfidf_mahout()
        other.set("Constraints.OpSpecification.Algorithm.name", "kmeans")
        assert not abstract.node("Constraints").matches(other.node("Constraints"))

    def test_match_fails_on_missing_required_field(self):
        abstract = MetadataTree.from_properties({"Constraints.Engine": "Spark"})
        provided = MetadataTree.from_properties({"Constraints.Input.number": 1})
        assert not abstract.node("Constraints").matches(provided.node("Constraints"))

    def test_wildcard_in_abstract_matches_anything(self):
        abstract = MetadataTree.from_properties({"Engine": WILDCARD})
        for engine in ("Spark", "Hadoop", "Cilk"):
            provided = MetadataTree.from_properties({"Engine": engine})
            assert abstract.matches(provided)

    def test_empty_abstract_value_matches_anything(self):
        abstract = MetadataTree()
        abstract.node("x")  # no-op
        provided = MetadataTree.from_properties({"Engine": "Spark"})
        assert abstract.matches(provided)

    def test_leaf_vs_subtree_mismatch(self):
        required = MetadataTree.from_properties({"Engine.FS": "HDFS"})
        provided = MetadataTree.from_properties({"Engine": "Spark"})
        assert not required.matches(provided)

    def test_consistency_ignores_one_sided_fields(self):
        ds = MetadataTree.from_properties({"Engine.FS": "HDFS", "type": "text"})
        spec = MetadataTree.from_properties({"Engine.FS": "HDFS"})
        assert spec.consistent_with(ds)
        assert ds.consistent_with(spec)

    def test_consistency_fails_on_shared_conflict(self):
        ds = MetadataTree.from_properties({"type": "text"})
        spec = MetadataTree.from_properties({"type": "arff"})
        assert not spec.consistent_with(ds)

    def test_consistency_wildcard_passes(self):
        ds = MetadataTree.from_properties({"type": "*"})
        spec = MetadataTree.from_properties({"type": "arff"})
        assert spec.consistent_with(ds)

    def test_merged_with_overlays_leaves(self):
        base = MetadataTree.from_properties({"a": 1, "b": 2})
        overlay = MetadataTree.from_properties({"b": 3, "c": 4})
        merged = base.merged_with(overlay)
        assert merged.to_properties() == {"a": "1", "b": "3", "c": "4"}
        assert base.get("b") == "2"  # original untouched


class TestMatchingEdgeCases:
    """Corner cases of the §3.1 tree-match semantics the planner relies on."""

    def test_wildcard_in_materialized_tree_satisfies_requirement(self):
        """A ``*`` on the provided side satisfies any concrete requirement."""
        required = MetadataTree.from_properties({"Engine.FS": "HDFS"})
        provided = MetadataTree.from_properties({"Engine.FS": WILDCARD})
        assert required.matches(provided)

    def test_empty_abstract_matches_everything(self):
        empty = MetadataTree()
        assert empty.matches(MetadataTree())
        assert empty.matches(MetadataTree.from_properties({"a.b": 1}))

    def test_nonempty_abstract_rejects_empty_tree(self):
        required = MetadataTree.from_properties({"Engine": "Spark"})
        assert not required.matches(MetadataTree())
        # ...but consistency holds: no shared leaves, no conflict
        assert required.consistent_with(MetadataTree())

    def test_duplicate_dotted_keys_last_occurrence_wins(self):
        tree = MetadataTree.from_properties([
            "Constraints.type=text",
            "Constraints.type=arff",
        ])
        assert tree.get("Constraints.type") == "arff"
        # leaves() reports the surviving assignment only
        assert tree.to_properties() == {"Constraints.type": "arff"}

    def test_matches_is_asymmetric_subsumption(self):
        """`a.matches(b)` is required-side directional, unlike consistency."""
        abstract = MetadataTree.from_properties({"Engine": "Spark"})
        richer = MetadataTree.from_properties(
            {"Engine": "Spark", "type": "text"})
        assert abstract.matches(richer)          # extra fields are fine
        assert not richer.matches(abstract)      # missing required field
        # consistent_with is symmetric on the same pair
        assert abstract.consistent_with(richer)
        assert richer.consistent_with(abstract)

    def test_consistency_leaf_vs_subtree_wildcard_passes(self):
        leaf = MetadataTree.from_properties({"Engine": WILDCARD})
        subtree = MetadataTree.from_properties({"Engine.FS": "HDFS"})
        assert leaf.consistent_with(subtree)
        assert subtree.consistent_with(leaf)
