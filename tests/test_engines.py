"""Unit tests for the simulated multi-engine cloud (repro.engines)."""

import pytest

from repro.engines import (
    Cluster,
    ContainerRequest,
    ContainerScheduler,
    EngineUnavailableError,
    InsufficientResourcesError,
    MemoryExceededError,
    MultiEngineCloud,
    Node,
    PerfModel,
    Resources,
    SimClock,
    Workload,
    build_default_cloud,
)
from repro.engines.profiles import Infrastructure


class TestClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(2.5)
        clock.advance(1.5)
        assert clock.now == 4.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock(10.0)
        clock.advance(5)
        clock.reset()
        assert clock.now == 0.0


class TestCluster:
    def test_homogeneous_capacity(self):
        cluster = Cluster.homogeneous(16, 4, 8.0)
        assert len(cluster) == 16
        assert cluster.total_cores == 64
        assert cluster.total_memory_gb == 128.0
        assert cluster.max_node_memory_gb() == 8.0

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError):
            Cluster([Node("a"), Node("a")])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_health_marking_and_report(self):
        cluster = Cluster.homogeneous(3)
        cluster.mark_unhealthy("vm01")
        report = cluster.run_health_checks()
        assert report["vm01"] == "UNHEALTHY"
        assert report["vm00"] == "HEALTHY"
        assert len(cluster.healthy_nodes()) == 2
        cluster.mark_healthy("vm01")
        assert len(cluster.healthy_nodes()) == 3

    def test_custom_health_script(self):
        cluster = Cluster.homogeneous(4)
        cluster.nodes["vm02"].attributes["disk_errors"] = 9
        report = cluster.run_health_checks(
            lambda node: node.attributes.get("disk_errors", 0) < 5
        )
        assert report["vm02"] == "UNHEALTHY"
        assert sum(state == "HEALTHY" for state in report.values()) == 3


class TestContainerScheduler:
    def test_allocate_and_release(self):
        cluster = Cluster.homogeneous(2, cores=4, memory_gb=8)
        sched = ContainerScheduler(cluster)
        containers = sched.allocate(ContainerRequest(cores=2, memory_gb=4, instances=3))
        assert len(containers) == 3
        assert cluster.available_cores == 8 - 6
        assert sched.utilization()["cores"] == pytest.approx(6 / 8)
        for c in containers:
            sched.release(c)
        assert cluster.available_cores == 8
        assert sched.live_containers == []

    def test_all_or_nothing_on_shortage(self):
        cluster = Cluster.homogeneous(1, cores=4, memory_gb=8)
        sched = ContainerScheduler(cluster)
        with pytest.raises(InsufficientResourcesError):
            sched.allocate(ContainerRequest(cores=3, memory_gb=4, instances=2))
        # the partial grant must have been rolled back
        assert cluster.available_cores == 4

    def test_unhealthy_nodes_skipped(self):
        cluster = Cluster.homogeneous(2, cores=4, memory_gb=8)
        cluster.mark_unhealthy("vm00")
        sched = ContainerScheduler(cluster)
        containers = sched.allocate(ContainerRequest(cores=4, memory_gb=8))
        assert containers[0].node.node_id == "vm01"
        with pytest.raises(InsufficientResourcesError):
            sched.allocate(ContainerRequest(cores=1, memory_gb=1))

    def test_double_release_is_noop(self):
        cluster = Cluster.homogeneous(1)
        sched = ContainerScheduler(cluster)
        (c,) = sched.allocate(ContainerRequest())
        sched.release(c)
        sched.release(c)
        assert cluster.available_cores == cluster.total_cores

    def test_invalid_request_rejected(self):
        with pytest.raises(ValueError):
            ContainerRequest(cores=0)


class TestPerfModel:
    def test_fixed_plus_linear(self):
        model = PerfModel(fixed=2.0, per_unit=1e-3)
        assert model.seconds(Workload(count=1000), Resources()) == pytest.approx(3.0)

    def test_parallel_scaling(self):
        model = PerfModel(fixed=0.0, per_unit=1.0, parallel=True, ref_cores=8)
        w = Workload(count=10)
        slow = model.seconds(w, Resources(cores=4, memory_gb=8))
        fast = model.seconds(w, Resources(cores=16, memory_gb=8))
        assert slow == pytest.approx(20.0)
        assert fast == pytest.approx(5.0)

    def test_param_scale(self):
        model = PerfModel(fixed=0.0, per_unit=1.0, param_scale="iterations")
        w5 = Workload(count=2, params={"iterations": 5})
        assert model.seconds(w5, Resources()) == pytest.approx(10.0)

    def test_oom_when_not_spilling(self):
        model = PerfModel(fixed=0, per_unit=0, mem_bytes_per_unit=1e9)
        with pytest.raises(MemoryExceededError):
            model.seconds(Workload(count=100), Resources(cores=4, memory_gb=8))

    def test_spill_slows_down_instead_of_failing(self):
        model = PerfModel(fixed=0, per_unit=1.0, mem_bytes_per_unit=1e9, spill=True)
        w = Workload(count=16)
        fit = model.seconds(w, Resources(cores=4, memory_gb=32))
        spilled = model.seconds(w, Resources(cores=4, memory_gb=8))
        assert spilled > fit

    def test_io_factor_affects_only_io_fraction(self):
        model = PerfModel(fixed=0.0, per_unit=1.0, io_fraction=0.5)
        w = Workload(count=10)
        hdd = model.seconds(w, Resources(), Infrastructure(io_factor=1.0))
        ssd = model.seconds(w, Resources(), Infrastructure(io_factor=0.4))
        assert hdd == pytest.approx(10.0)
        assert ssd == pytest.approx(7.0)  # 10 * (0.5*0.4 + 0.5)


class TestCloud:
    def test_default_cloud_catalogue(self):
        cloud = build_default_cloud()
        assert {"Spark", "Hama", "Java", "PostgreSQL", "MemSQL", "HDFS"} <= set(
            cloud.engines
        )
        assert cloud.engine("Java").centralized
        assert not cloud.engine("Spark").centralized

    def test_duplicate_engine_rejected(self):
        cloud = MultiEngineCloud()
        cloud.add_engine("X", profiles={})
        with pytest.raises(ValueError):
            cloud.add_engine("X", profiles={})

    def test_pagerank_crossovers_match_figure_11(self):
        """Java wins small graphs, Hama medium, Spark large (Fig 11 shape)."""
        cloud = build_default_cloud()

        def best(edges):
            times = {}
            w = Workload.of_count(edges, bytes_per_item=40, iterations=10)
            for name in ("Java", "Hama", "Spark"):
                try:
                    times[name] = cloud.engine(name).true_seconds("pagerank", w)
                except MemoryExceededError:
                    times[name] = float("inf")
            return min(times, key=times.get)

        assert best(1e4) == "Java"
        assert best(1e6) == "Java"
        assert best(2e7) == "Hama"
        assert best(1e8) == "Spark"

    def test_execute_charges_clock_and_records(self):
        cloud = build_default_cloud()
        before = cloud.clock.now
        result = cloud.engine("Spark").execute(
            "pagerank", Workload.of_count(1e6, 40, iterations=10)
        )
        assert cloud.clock.now == pytest.approx(before + result.record.exec_time)
        assert len(cloud.collector) == 1
        assert result.record.engine == "Spark"
        assert result.record.success
        # containers must be released afterwards
        assert cloud.scheduler.live_containers == []

    def test_execute_oom_records_failure_and_raises(self):
        cloud = build_default_cloud()
        with pytest.raises(MemoryExceededError):
            cloud.engine("Java").execute(
                "pagerank", Workload.of_count(1e8, 40, iterations=10)
            )
        failures = cloud.collector.failures()
        assert len(failures) == 1
        assert not failures[0].success
        assert cloud.scheduler.live_containers == []

    def test_killed_engine_unavailable(self):
        cloud = build_default_cloud()
        cloud.kill_engine("Hama")
        assert "Hama" not in cloud.available_engines()
        with pytest.raises(EngineUnavailableError):
            cloud.engine("Hama").execute("pagerank", Workload.of_count(1e5, 40))
        cloud.restart_engine("Hama")
        assert "Hama" in cloud.available_engines()

    def test_move_costs_and_clock(self):
        cloud = build_default_cloud()
        assert cloud.move_seconds(1e9, "HDFS", "HDFS") == 0.0
        seconds = cloud.move(1e9, "HDFS", "PostgreSQL")
        assert seconds == pytest.approx(0.5 + 10.0)
        assert cloud.clock.now == pytest.approx(seconds)

    def test_ssd_upgrade_accelerates_io_bound_operator(self):
        cloud = build_default_cloud()
        w = Workload(size_gb=10.0)
        before = cloud.engine("MapReduce").true_seconds("wordcount", w)
        cloud.upgrade_disks_to_ssd()
        after = cloud.engine("MapReduce").true_seconds("wordcount", w)
        assert after < before

    def test_noise_is_bounded_and_seeded(self):
        c1 = build_default_cloud(seed=7)
        c2 = build_default_cloud(seed=7)
        w = Workload.of_count(1e6, 40, iterations=10)
        r1 = c1.engine("Spark").execute("pagerank", w).record.exec_time
        r2 = c2.engine("Spark").execute("pagerank", w).record.exec_time
        assert r1 == r2
        truth = c1.engine("Spark").true_seconds("pagerank", w)
        assert abs(r1 / truth - 1.0) < 0.3

    def test_training_matrix_from_collector(self):
        cloud = build_default_cloud()
        for edges in (1e5, 1e6, 2e6):
            cloud.engine("Spark").execute(
                "pagerank", Workload.of_count(edges, 40, iterations=10)
            )
        X, y, names = cloud.collector.training_matrix("pagerank", "Spark")
        assert X.shape[0] == 3
        assert "input_count" in names
        assert "param_iterations" in names
        assert (y > 0).all()


class TestFaults:
    def test_scheduled_fault_fires_on_trigger(self):
        from repro.engines import FaultInjector

        cloud = build_default_cloud()
        injector = FaultInjector(cloud)
        injector.kill_engine_at("Spark", trigger_operator="op2")
        assert injector.on_operator_start("op1") == []
        assert "Spark" in cloud.available_engines()
        fired = injector.on_operator_start("op2")
        assert len(fired) == 1
        assert "Spark" not in cloud.available_engines()
        # firing twice is a no-op
        assert injector.on_operator_start("op2") == []
        injector.reset()
        assert "Spark" in cloud.available_engines()

    def test_node_unhealthy_fault(self):
        from repro.engines import FaultInjector

        cloud = build_default_cloud()
        injector = FaultInjector(cloud)
        injector.mark_node_unhealthy_at("vm03", trigger_operator="x")
        injector.on_operator_start("x")
        assert not cloud.cluster.nodes["vm03"].healthy
        injector.reset()
        assert cloud.cluster.nodes["vm03"].healthy
