"""Golden tests for ``ires analyze`` — the IRES050–063 source passes.

The fixture tree under ``tests/fixtures/concurrency`` seeds exactly one
defect per stable code (and ``clean.py`` seeds none); these tests pin the
rendered text line for every code, the JSON report shape, and the
``--strict`` gate semantics, and hold the repo's own ``src/`` tree clean
under the same passes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.concurrency import analyze_paths, build_model, scan_body

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "concurrency"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: fixture file -> the exact rendered diagnostic it must produce
GOLDEN = {
    "ires050.py": (
        "tests/fixtures/concurrency/ires050.py:12: error IRES050: "
        "field '_items' (.append() call in Buffer.bad_append) is written "
        "without holding its declared guard '_lock' [class:Buffer]"),
    "ires051.py": (
        "tests/fixtures/concurrency/ires051.py:14: error IRES051: "
        "field '_routes' (subscript store in Router.wrong_lock) is written "
        "under '_aux' but is declared guarded-by '_lock' [class:Router]"),
    "ires052.py": (
        "tests/fixtures/concurrency/ires052.py:7: error IRES052: "
        "class attribute 'cache' on thread-shared class 'Registry' is a "
        "mutable container shared by every instance and thread "
        "[class:Registry]"),
    "ires053.py": (
        "tests/fixtures/concurrency/ires053.py:13: error IRES053: "
        "methods of 'Transfer' acquire locks in inconsistent order: "
        "_credit -> _debit -> _credit (potential deadlock) "
        "[class:Transfer]"),
    "ires054.py": (
        "tests/fixtures/concurrency/ires054.py:6: error IRES054: "
        "field '_entries' is declared guarded-by '_missing' but Ledger "
        "never creates that lock [class:Ledger]"),
    "ires055.py": (
        "tests/fixtures/concurrency/ires055.py:4: warning IRES055: "
        "class 'HitCounter' is marked thread-shared but defines no lock "
        "for its mutable state [class:HitCounter]"),
    "ires060.py": (
        "tests/fixtures/concurrency/ires060.py:21: error IRES060: "
        "'time.sleep(...)' blocks the event loop inside "
        "'async def top_loop' [function:top_loop]"),
    "ires061.py": (
        "tests/fixtures/concurrency/ires061.py:11: error IRES061: "
        "coroutine 'refresh' is called in kick_off but its result is "
        "never awaited or scheduled [function:kick_off]"),
    "ires062.py": (
        "tests/fixtures/concurrency/ires062.py:18: error IRES062: "
        "asyncio.to_thread target 'self._drain_locked' (from Spool.flush) "
        "writes guarded state (_pending) without holding its lock "
        "[function:Spool.flush]"),
    "ires063.py": (
        "tests/fixtures/concurrency/ires063.py:13: warning IRES063: "
        "'async def Publisher.publish' awaits while holding lock '_lock' "
        "\u2014 other coroutines on this loop will block on it "
        "[function:Publisher.publish]"),
}

ALL_CODES = ["IRES050", "IRES051", "IRES052", "IRES053", "IRES054",
             "IRES055", "IRES060", "IRES061", "IRES062", "IRES063"]


# -- per-fixture golden lines -------------------------------------------------

@pytest.mark.parametrize("fixture", sorted(GOLDEN))
def test_each_seeded_fixture_produces_exactly_its_diagnostic(fixture):
    collector = analyze_paths([FIXTURES / fixture], root=REPO_ROOT)
    rendered = [d.render() for d in collector]
    assert rendered == [GOLDEN[fixture]]


def test_clean_fixture_produces_no_diagnostics():
    collector = analyze_paths([FIXTURES / "clean.py"], root=REPO_ROOT)
    assert len(collector) == 0
    assert not collector.failed(strict=True)


# -- whole-tree report shape --------------------------------------------------

def test_fixture_tree_json_report_covers_every_code():
    collector = analyze_paths([FIXTURES], root=REPO_ROOT)
    report = collector.to_json(strict=True)
    assert report["ok"] is False
    assert report["strict"] is True
    assert report["codes"] == ALL_CODES
    assert report["counts"] == {"error": 8, "warning": 2, "info": 0}
    assert len(report["diagnostics"]) == 10
    for entry in report["diagnostics"]:
        assert entry["hint"], f"{entry['code']} ships without a fix hint"


def test_fixture_tree_text_report_ends_with_summary_line():
    collector = analyze_paths([FIXTURES], root=REPO_ROOT)
    text = collector.render_text(verbose_hints=False)
    lines = text.splitlines()
    assert lines[-1] == "8 error(s), 2 warning(s), 0 info"
    assert set(lines[:-1]) == set(GOLDEN.values())


def test_strict_gate_promotes_warnings_only():
    warnings_only = analyze_paths([FIXTURES / "ires055.py"], root=REPO_ROOT)
    assert not warnings_only.failed(strict=False)
    assert warnings_only.failed(strict=True)


# -- conventions and edge cases ----------------------------------------------

def test_unparseable_file_reports_ires001(tmp_path):
    bad = tmp_path / "torn.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    collector = analyze_paths([bad], root=tmp_path)
    (diag,) = list(collector)
    assert diag.code == "IRES001"
    assert diag.artifact == "module:torn.py"


def test_init_and_locked_suffix_methods_are_exempt(tmp_path):
    source = (
        "import threading\n"
        "\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._free = []  # guarded-by: _lock\n"
        "\n"
        "    def _give_back_locked(self, conn):\n"
        "        self._free.append(conn)\n"
    )
    path = tmp_path / "pool.py"
    path.write_text(source, encoding="utf-8")
    collector = analyze_paths([path], root=tmp_path)
    assert len(collector) == 0


def test_scan_body_tracks_nested_lock_scopes():
    source = (
        "class C:\n"
        "    def m(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                self.x = 1\n"
    )
    module = build_model(Path("mem.py"), "mem.py", source)
    (cls,) = module.classes
    scan = scan_body(cls.methods[0], {"_a", "_b"})
    (write,) = scan.writes
    assert write.attr == "x" and write.held == frozenset({"_a", "_b"})
    assert list(scan.edges) == [("_a", "_b")]


# -- the repo's own tree is the first customer --------------------------------

def test_repo_src_tree_is_clean_under_strict_analyze():
    collector = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    offending = [d.render() for d in collector]
    assert not collector.failed(strict=True), "\n".join(offending)


# -- CLI surface --------------------------------------------------------------

def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "analyze", *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_analyze_json_reports_every_seeded_code():
    result = _run_cli(str(FIXTURES), "--format", "json", "--strict")
    assert result.returncode == 1
    report = json.loads(result.stdout)
    assert report["codes"] == ALL_CODES
    assert report["ok"] is False


def test_cli_analyze_exits_zero_on_clean_input():
    result = _run_cli(str(FIXTURES / "clean.py"), "--strict")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "analyze OK" in result.stdout


# -- REST surface -------------------------------------------------------------

def test_rest_analyze_endpoint():
    from repro.api.rest import IResServer
    from repro.core import IReS

    server = IResServer(IReS())
    ok = server.handle("POST", "/analyze",
                       {"paths": [str(FIXTURES / "clean.py")]})
    assert ok.status == 200 and ok.body["ok"] is True
    seeded = server.handle("POST", "/analyze",
                           {"paths": [str(FIXTURES)], "strict": True})
    assert seeded.status == 200 and seeded.body["ok"] is False
    assert seeded.body["codes"] == ALL_CODES
    assert server.handle("GET", "/analyze").status == 405
    missing = server.handle("POST", "/analyze", {"paths": ["/nope/missing"]})
    assert missing.status == 404
    malformed = server.handle("POST", "/analyze", {"paths": "src"})
    assert malformed.status == 400
