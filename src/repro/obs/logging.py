"""Structured JSON logging with run-id correlation.

Log lines are dicts — timestamp, level, logger, event, the ``run_id`` bound
in :mod:`repro.obs.context`, plus free-form fields.  By default lines land
in an in-memory ring (cheap, test-friendly, no stderr spam); wiring a stream
via :func:`configure` additionally emits each line as JSON.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import TextIO

from repro.obs.context import current_run_id

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_RING: deque = deque(maxlen=4096)
_STREAM = None
_THRESHOLD = LEVELS["info"]
_LOGGERS: dict[str, "StructuredLogger"] = {}


def configure(stream: TextIO | None = None, level: str = "info",
              ring_size: int | None = None) -> None:
    """Set the emission stream, the minimum level and the ring capacity."""
    global _STREAM, _THRESHOLD, _RING
    _STREAM = stream
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}")
    _THRESHOLD = LEVELS[level]
    if ring_size is not None:
        _RING = deque(_RING, maxlen=ring_size)


def recent(n: int | None = None, logger: str | None = None,
           run_id: str | None = None) -> list[dict]:
    """The newest ring entries, optionally filtered (oldest first)."""
    lines = list(_RING)
    if logger is not None:
        lines = [ln for ln in lines if ln["logger"] == logger]
    if run_id is not None:
        lines = [ln for ln in lines if ln.get("run_id") == run_id]
    return lines[-n:] if n is not None else lines


def clear() -> None:
    """Empty the ring (tests)."""
    _RING.clear()


class StructuredLogger:
    """A named source of structured log lines."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level: str, event: str, **fields: object) -> dict | None:
        """Record one line; returns it (or None when below the threshold)."""
        if LEVELS[level] < _THRESHOLD:
            return None
        line = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
            "run_id": current_run_id(),
        }
        line.update(fields)
        _RING.append(line)
        if _STREAM is not None:
            _STREAM.write(json.dumps(line, default=str) + "\n")
        return line

    def debug(self, event: str, **fields: object) -> dict | None:
        """Log at debug level."""
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> dict | None:
        """Log at info level."""
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> dict | None:
        """Log at warning level."""
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> dict | None:
        """Log at error level."""
        return self.log("error", event, **fields)


def get_logger(name: str) -> StructuredLogger:
    """Get (or create) the named logger."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructuredLogger(name)
    return logger
