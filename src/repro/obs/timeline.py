"""Unified per-run timelines: journal + spans + logs in one ordered view.

"Why was this run slow" needs one merged, time-ordered story from queue
admission through every step, retry and replan — but that story is spread
over three stores with two clocks: the write-ahead journal stamps epoch
wall time (``time.time``), trace spans stamp ``time.perf_counter``, and
the structured-log ring stamps epoch again.  :func:`build_timeline` merges
them for one ``run_id``, converting perf-counter timestamps to the epoch
axis via the in-process offset (valid whenever the spans were produced by
this process — the live-service case), and returns ordered
:class:`TimelineEvent` rows.

Offline (``ires timeline <run_id> --journal-dir``), the journal alone
still yields the admission → plan → step → replan → finish skeleton.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

#: journal bookkeeping keys that are not event detail
_JOURNAL_META = ("seq", "kind", "runId", "wallTime")


def perf_epoch_offset() -> float:
    """Seconds to add to a ``perf_counter`` stamp to get epoch time.

    The naive ``time.time() - time.perf_counter()`` is skewed by
    whatever runs between the two clock reads (a GC pause, a context
    switch), and recomputing it per event used to land merged events on
    slightly different epochs and reorder them.  Two fixes: the offset
    is sampled by bracketing ``time.time()`` between two
    ``perf_counter`` reads (best of three attempts, tightest bracket
    wins), and :func:`build_timeline` computes it exactly once per build
    and threads it through every converter.
    """
    best_offset = 0.0
    best_width = float("inf")
    for _ in range(3):
        p0 = time.perf_counter()
        t = time.time()
        p1 = time.perf_counter()
        width = p1 - p0
        if width < best_width:
            best_width = width
            best_offset = t - (p0 + p1) / 2.0
    return best_offset


@dataclass
class TimelineEvent:
    """One merged event on a run's timeline."""

    kind: str
    #: producing store: journal | span | span-event | log | service
    source: str
    wall: float | None = None
    sim: float | None = None
    detail: dict[str, Any] = field(default_factory=dict)
    #: merge-stable tiebreak for identical timestamps
    seq: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able event view (one ``GET /runs/{id}/timeline`` row)."""
        return {
            "kind": self.kind,
            "source": self.source,
            "wall": None if self.wall is None else round(self.wall, 6),
            "sim": None if self.sim is None else round(self.sim, 6),
            "detail": self.detail,
        }


def _journal_events(records: Iterable[dict[str, Any]],
                    run_id: str) -> list[TimelineEvent]:
    events = []
    for record in records:
        if record.get("runId") not in (None, run_id):
            continue
        detail = {k: v for k, v in record.items() if k not in _JOURNAL_META}
        events.append(TimelineEvent(
            kind=str(record.get("kind", "?")), source="journal",
            wall=record.get("wallTime"),
            sim=detail.get("simStart"),
            detail=detail, seq=int(record.get("seq", 0))))
    return events


def _span_events(spans: Iterable[Any], run_id: str, offset: float,
                 span_self: dict[str, float] | None = None,
                 ) -> list[TimelineEvent]:
    events = []
    for span in spans:
        if getattr(span, "run_id", None) != run_id:
            continue
        detail = {
            "category": span.category,
            "status": span.status,
            "wallSeconds": round(span.wall_seconds, 6),
            "simSeconds": round(span.sim_seconds, 6),
            **{k: v for k, v in span.attributes.items()
               if isinstance(v, (str, int, float, bool))},
        }
        if span_self and span.name in span_self:
            detail["profileSelfSeconds"] = round(span_self[span.name], 6)
        events.append(TimelineEvent(
            kind=f"span:{span.name}", source="span",
            wall=span.start_wall + offset, sim=span.start_sim,
            detail=detail))
        for point in span.events:
            wall = point.get("wall")
            events.append(TimelineEvent(
                kind=str(point.get("name", "?")), source="span-event",
                wall=(span.start_wall if wall is None else wall) + offset,
                sim=point.get("sim"),
                detail={"span": span.name, **point.get("attributes", {})}))
    return events


def _log_events(lines: Iterable[dict[str, Any]],
                run_id: str) -> list[TimelineEvent]:
    events = []
    for line in lines:
        if line.get("run_id") != run_id:
            continue
        detail = {k: v for k, v in line.items()
                  if k not in ("ts", "event", "run_id", "level", "logger")}
        detail["logger"] = line.get("logger")
        detail["level"] = line.get("level")
        events.append(TimelineEvent(
            kind=str(line.get("event", "?")), source="log",
            wall=line.get("ts"), detail=detail))
    return events


def _service_events(record: Any) -> list[TimelineEvent]:
    events = [TimelineEvent(
        kind="run_submitted", source="service",
        wall=getattr(record, "submitted_at", None),
        detail={"tenant": getattr(record, "tenant", ""),
                "workflow": getattr(record, "workflow", "")})]
    started = getattr(record, "started_at", None)
    if started is not None:
        detail: dict[str, Any] = {}
        queued = getattr(record, "queued_wait_seconds", None)
        if queued is not None:
            detail["queuedWaitSeconds"] = round(queued, 6)
        events.append(TimelineEvent(
            kind="run_started", source="service", wall=started,
            detail=detail))
    finished = getattr(record, "finished_at", None)
    if finished is not None:
        detail = {"state": getattr(record, "state", "")}
        error = getattr(record, "error", "")
        if error:
            detail["error"] = error
        events.append(TimelineEvent(
            kind="run_finished", source="service", wall=finished,
            detail=detail))
    return events


def build_timeline(
    run_id: str,
    journal_records: Iterable[dict[str, Any]] | None = None,
    spans: Iterable[Any] | None = None,
    logs: Iterable[dict[str, Any]] | None = None,
    record: Any = None,
    perf_offset: float | None = None,
    span_self: dict[str, float] | None = None,
) -> list[TimelineEvent]:
    """Merge one run's telemetry into a single ordered timeline.

    ``journal_records`` are parsed journal dicts (see
    :func:`repro.execution.journal.read_journal`); ``spans`` are
    :class:`~repro.obs.tracing.Span` objects from a live tracer;
    ``logs`` are structured-log ring lines; ``record`` is the service's
    ``RunRecord`` (duck-typed).  ``perf_offset`` overrides the
    perf-counter→epoch conversion (tests); live callers leave it None —
    it is computed exactly once here so every span in one build shares
    one epoch.  ``span_self`` is an optional ``{span name: seconds}``
    table of profiler-attributed self time; matching span events gain a
    ``profileSelfSeconds`` detail.
    """
    offset = perf_epoch_offset() if perf_offset is None else perf_offset
    events: list[TimelineEvent] = []
    if journal_records is not None:
        events.extend(_journal_events(journal_records, run_id))
    if spans is not None:
        events.extend(_span_events(spans, run_id, offset, span_self))
    if logs is not None:
        events.extend(_log_events(logs, run_id))
    if record is not None:
        events.extend(_service_events(record))
    events.sort(key=lambda e: (
        e.wall if e.wall is not None else float("inf"), e.seq))
    return events


def timeline_to_dict(run_id: str,
                     events: list[TimelineEvent]) -> dict[str, Any]:
    """The ``GET /runs/{id}/timeline`` body."""
    return {
        "runId": run_id,
        "events": [e.to_dict() for e in events],
        "sources": sorted({e.source for e in events}),
    }


def render_text(run_id: str, events: list[TimelineEvent]) -> str:
    """Human-readable timeline (the ``ires timeline`` output)."""
    if not events:
        return f"run {run_id}: no telemetry found"
    origin = next((e.wall for e in events if e.wall is not None), 0.0)
    lines = [f"run {run_id}: {len(events)} events "
             f"({', '.join(sorted({e.source for e in events}))})"]
    for event in events:
        if event.wall is None:
            stamp = "        ?"
        else:
            stamp = f"{event.wall - origin:+9.3f}s"
        detail = " ".join(
            f"{k}={v}" for k, v in sorted(event.detail.items())
            if v not in (None, "", {}) and not isinstance(v, (dict, list)))
        if len(detail) > 120:
            detail = detail[:117] + "..."
        lines.append(f"  {stamp} [{event.source:<10}] "
                     f"{event.kind:<24} {detail}".rstrip())
    return "\n".join(lines)
