"""Self-contained static HTML accuracy report (no dependencies).

``ires accuracy report --html out.html`` renders the ledger's per-pair
error statistics as one portable HTML file: a summary table plus an inline
SVG trend chart per (operator, engine) pair showing the signed relative
error of every retained entry over simulated time.  Everything is inlined
(styles, SVG) so the file can be attached to a ticket or CI artifact and
opened anywhere.
"""

from __future__ import annotations

import html
import json

from repro.obs.accuracy import AccuracyLedger

#: chart geometry (viewBox units)
_W = 640
_H = 160
_PAD = 28

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: .9rem; }
th, td { text-align: left; padding: .35rem .6rem;
         border-bottom: 1px solid #ddd; }
th { background: #f4f4f8; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.bad { color: #c0392b; font-weight: 600; }
.meta { color: #666; font-size: .8rem; }
svg { background: #fbfbfd; border: 1px solid #e2e2ea; border-radius: 4px; }
"""


def _polyline(points: list[tuple[float, float]]) -> str:
    return " ".join(f"{x:.1f},{y:.1f}" for x, y in points)


def _trend_svg(trend: list[dict], threshold: float | None = None) -> str:
    """An inline SVG of signed relative error over simulated time."""
    errors = [float(p["error"]) for p in trend]
    ats = [float(p["at"]) for p in trend]
    if not errors:
        return "<p class='meta'>no samples</p>"
    lo = min(min(errors), -0.1)
    hi = max(max(errors), 0.1)
    if threshold is not None:
        hi = max(hi, threshold * 1.1)
        lo = min(lo, -threshold * 1.1)
    span_y = hi - lo or 1.0
    t0, t1 = min(ats), max(ats)
    span_t = (t1 - t0) or 1.0

    def sx(at: float) -> float:
        return _PAD + (at - t0) / span_t * (_W - 2 * _PAD)

    def sy(err: float) -> float:
        return _H - _PAD - (err - lo) / span_y * (_H - 2 * _PAD)

    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" width="{_W}" height="{_H}" '
        'role="img" xmlns="http://www.w3.org/2000/svg">'
    ]
    # zero line + axis labels
    zero_y = sy(0.0)
    parts.append(
        f'<line x1="{_PAD}" y1="{zero_y:.1f}" x2="{_W - _PAD}" '
        f'y2="{zero_y:.1f}" stroke="#999" stroke-dasharray="3,3"/>')
    parts.append(
        f'<text x="{_W - _PAD + 2}" y="{zero_y + 3:.1f}" font-size="9" '
        'fill="#666">0</text>')
    if threshold is not None:
        for sign in (1.0, -1.0):
            ty = sy(sign * threshold)
            parts.append(
                f'<line x1="{_PAD}" y1="{ty:.1f}" x2="{_W - _PAD}" '
                f'y2="{ty:.1f}" stroke="#c0392b" stroke-opacity=".5" '
                'stroke-dasharray="5,4"/>')
        parts.append(
            f'<text x="{_W - _PAD + 2}" y="{sy(threshold) + 3:.1f}" '
            f'font-size="9" fill="#c0392b">±{threshold:g}</text>')
    pts = [(sx(a), sy(e)) for a, e in zip(ats, errors)]
    if len(pts) > 1:
        parts.append(
            f'<polyline points="{_polyline(pts)}" fill="none" '
            'stroke="#2d6cdf" stroke-width="1.5"/>')
    for x, y in pts:
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.2" '
                     'fill="#2d6cdf"/>')
    parts.append(
        f'<text x="{_PAD}" y="{_H - 6}" font-size="9" fill="#666">'
        f'sim t={t0:g}s</text>')
    parts.append(
        f'<text x="{_W - _PAD}" y="{_H - 6}" font-size="9" fill="#666" '
        f'text-anchor="end">t={t1:g}s</text>')
    parts.append("</svg>")
    return "".join(parts)


def render_html(ledger: AccuracyLedger, title: str = "IReS accuracy report",
                threshold: float | None = None) -> str:
    """The full self-contained HTML document for a ledger."""
    report = ledger.report()
    rows: list[str] = []
    sections: list[str] = []
    for pair in report["pairs"]:
        key = f"{pair['operator']} @ {pair['engine']}"
        bad = threshold is not None and pair["ewmaError"] > threshold
        cls = ' class="bad"' if bad else ""
        rows.append(
            "<tr>"
            f"<td>{html.escape(pair['operator'])}</td>"
            f"<td>{html.escape(pair['engine'])}</td>"
            f"<td class='num'>{pair['samples']}</td>"
            f"<td class='num'>{pair['mape']:.3f}</td>"
            f"<td class='num'>{pair['bias']:+.3f}</td>"
            f"<td class='num'{cls}>{pair['ewmaError']:.3f}</td>"
            f"<td class='num'>{pair['recentMape']:.3f}</td>"
            "</tr>"
        )
        sections.append(
            f"<h2>{html.escape(key)}</h2>"
            + _trend_svg(pair["trend"], threshold=threshold)
        )
    table = (
        "<table><thead><tr><th>operator</th><th>engine</th>"
        "<th class='num'>samples</th><th class='num'>MAPE</th>"
        "<th class='num'>bias</th><th class='num'>EWMA</th>"
        "<th class='num'>recent MAPE</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
        if rows else "<p class='meta'>ledger is empty</p>"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p class='meta'>{report['entries']} ledger entries, "
        f"{len(report['pairs'])} (operator, engine) pairs. "
        "Signed relative error = (predicted − actual) / actual; "
        "positive means over-prediction.</p>"
        + table
        + "".join(sections)
        + "<script type='application/json' id='accuracy-data'>"
        + json.dumps(report)
        + "</script></body></html>"
    )


def write_html(ledger: AccuracyLedger, path: str,
               title: str = "IReS accuracy report",
               threshold: float | None = None) -> None:
    """Render and write the report to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html(ledger, title=title, threshold=threshold))
