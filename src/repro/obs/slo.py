"""Declarative SLOs with multi-window burn-rate alarms (DESIGN §12).

An :class:`SLOSpec` states an objective over service runs — availability,
p-quantile plan+execute latency, or max queue wait — as a *good-event
fraction*: ``target`` is the fraction of runs that must be good, so the
error budget is ``1 - target``.  A run is good when

- ``availability``: it reached a successful terminal state,
- ``latency``: its submission→terminal latency was ≤ ``threshold_seconds``
  (``target=0.99`` therefore reads "p99 latency ≤ threshold"),
- ``queue_wait``: it waited ≤ ``threshold_seconds`` before starting.

:class:`SLOTracker` keeps the raw run events in sliding windows and, per
spec, computes the **burn rate** — bad-fraction / error-budget — over a
short and a long window (the Google SRE multi-window pattern: the short
window makes alarms fast, the long window keeps them from flapping on a
single bad run).  When both windows burn faster than
``burn_rate_threshold``, the spec enters the ``alarming`` state: a
structured ``slo_alarm`` log line is emitted, ``ires_slo_alarms_total``
increments, and the alarm is kept until the short-window burn drops back
under the threshold (hysteresis).

The clock is injectable so window math is testable under a simulated
clock; the service feeds :meth:`SLOTracker.record_run` with wall-clock
events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.analysis.runtime_check import (
    LockLike,
    make_lock,
    note_access,
    register_shared,
)
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

_LOG = get_logger("slo")

_BURN_RATE = REGISTRY.gauge(
    "ires_slo_burn_rate",
    "Error-budget burn rate per SLO and evaluation window",
    labels=("slo", "window"),
)
_COMPLIANCE = REGISTRY.gauge(
    "ires_slo_compliance",
    "Good-event fraction per SLO over the long window",
    labels=("slo",),
)
_ALARM_ACTIVE = REGISTRY.gauge(
    "ires_slo_alarm_active",
    "1 while an SLO's multi-window burn-rate alarm is firing",
    labels=("slo",),
)
_ALARMS = REGISTRY.counter(
    "ires_slo_alarms_total",
    "Burn-rate alarm activations per SLO",
    labels=("slo",),
)

#: supported objective kinds
KINDS = ("availability", "latency", "queue_wait")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over service runs."""

    name: str
    kind: str
    #: required good-event fraction; the error budget is ``1 - target``
    target: float = 0.99
    #: latency / queue-wait cutoff defining a good event (those kinds only)
    threshold_seconds: float | None = None
    short_window_seconds: float = 300.0
    long_window_seconds: float = 3600.0
    #: both windows must burn the budget this many times faster than
    #: sustainable before the alarm fires
    burn_rate_threshold: float = 2.0
    #: short-window events needed before the alarm may fire (noise floor)
    min_events: int = 3

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"SLO kind must be one of {KINDS}, "
                             f"got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), "
                             f"got {self.target}")
        if self.kind in ("latency", "queue_wait") \
                and self.threshold_seconds is None:
            raise ValueError(f"SLO {self.name!r} ({self.kind}) needs "
                             "threshold_seconds")
        if self.short_window_seconds <= 0 \
                or self.long_window_seconds < self.short_window_seconds:
            raise ValueError("windows must satisfy 0 < short <= long")
        if self.burn_rate_threshold <= 0:
            raise ValueError("burn_rate_threshold must be > 0")

    @property
    def error_budget(self) -> float:
        """The tolerated bad-event fraction."""
        return 1.0 - self.target

    def is_good(self, event: "RunEvent") -> bool:
        """Whether one run event meets this objective."""
        if self.kind == "availability":
            return event.succeeded
        if self.kind == "latency":
            assert self.threshold_seconds is not None
            return event.latency_seconds <= self.threshold_seconds
        assert self.threshold_seconds is not None
        return event.queue_wait_seconds <= self.threshold_seconds

    def to_dict(self) -> dict[str, Any]:
        """JSON-able spec view (the config schema, camel-cased)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "thresholdSeconds": self.threshold_seconds,
            "shortWindowSeconds": self.short_window_seconds,
            "longWindowSeconds": self.long_window_seconds,
            "burnRateThreshold": self.burn_rate_threshold,
            "minEvents": self.min_events,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SLOSpec":
        """Build a spec from its (camel-cased) config dict."""
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            target=float(payload.get("target", 0.99)),
            threshold_seconds=(
                None if payload.get("thresholdSeconds") is None
                else float(payload["thresholdSeconds"])),
            short_window_seconds=float(
                payload.get("shortWindowSeconds", 300.0)),
            long_window_seconds=float(
                payload.get("longWindowSeconds", 3600.0)),
            burn_rate_threshold=float(
                payload.get("burnRateThreshold", 2.0)),
            min_events=int(payload.get("minEvents", 3)),
        )


def default_slos() -> list[SLOSpec]:
    """The out-of-the-box objectives ``ires serve`` tracks."""
    return [
        SLOSpec("availability", "availability", target=0.99),
        SLOSpec("latency-p99", "latency", target=0.99,
                threshold_seconds=30.0),
        SLOSpec("queue-wait", "queue_wait", target=0.95,
                threshold_seconds=10.0),
    ]


def load_slo_config(path: str | Path) -> list[SLOSpec]:
    """Load ``{"slos": [{...}, ...]}`` from a JSON file."""
    payload = json.loads(Path(path).read_text())
    slos = payload.get("slos")
    if not isinstance(slos, list) or not slos:
        raise ValueError(f"{path}: config needs a non-empty 'slos' list")
    specs = [SLOSpec.from_dict(entry) for entry in slos]
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"{path}: duplicate SLO names in {names}")
    return specs


@dataclass(frozen=True)
class RunEvent:
    """One terminal run, as the SLO layer sees it."""

    at: float
    succeeded: bool
    latency_seconds: float
    queue_wait_seconds: float
    tenant: str = ""


@dataclass(frozen=True)
class SLOAlarm:
    """One burn-rate alarm activation."""

    slo: str
    at: float
    burn_rate_short: float
    burn_rate_long: float
    short_window_seconds: float
    long_window_seconds: float
    events_short: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-able alarm view."""
        return {
            "slo": self.slo,
            "at": round(self.at, 6),
            "burnRateShort": round(self.burn_rate_short, 4),
            "burnRateLong": round(self.burn_rate_long, 4),
            "shortWindowSeconds": self.short_window_seconds,
            "longWindowSeconds": self.long_window_seconds,
            "eventsShort": self.events_short,
        }


@dataclass
class SLOStatus:
    """One spec's evaluation at a point in time."""

    spec: SLOSpec
    at: float
    burn_rate_short: float = 0.0
    burn_rate_long: float = 0.0
    compliance: float = 1.0
    events_short: int = 0
    events_long: int = 0
    alarming: bool = False

    def to_dict(self) -> dict[str, Any]:
        """JSON-able status view (one ``GET /slo`` row)."""
        return {
            "slo": self.spec.name,
            "kind": self.spec.kind,
            "target": self.spec.target,
            "thresholdSeconds": self.spec.threshold_seconds,
            "burnRateShort": round(self.burn_rate_short, 4),
            "burnRateLong": round(self.burn_rate_long, 4),
            "burnRateThreshold": self.spec.burn_rate_threshold,
            "compliance": round(self.compliance, 6),
            "eventsShort": self.events_short,
            "eventsLong": self.events_long,
            "state": "alarming" if self.alarming else "ok",
        }


class SLOTracker:  # thread-shared
    """Sliding-window SLO evaluation with multi-window burn-rate alarms."""

    def __init__(
        self,
        specs: Iterable[SLOSpec] | None = None,
        clock: Callable[[], float] | None = None,
        max_alarms: int = 256,
    ) -> None:
        self.specs = list(specs) if specs is not None else default_slos()
        if not self.specs:
            raise ValueError("SLOTracker needs at least one spec")
        import time as _time

        self._clock: Callable[[], float] = (
            clock if clock is not None else _time.time)
        self.max_alarms = max_alarms
        self._lock: LockLike = make_lock("slo")
        self._events: list[RunEvent] = []  # guarded-by: _lock
        self._active: set[str] = set()  # guarded-by: _lock
        self.alarms: list[SLOAlarm] = []  # guarded-by: _lock
        self._horizon = max(s.long_window_seconds for s in self.specs)
        register_shared(self, "obs:slo", self._lock)

    # -- ingestion -----------------------------------------------------------
    def record_run(
        self,
        succeeded: bool,
        latency_seconds: float,
        queue_wait_seconds: float = 0.0,
        at: float | None = None,
        tenant: str = "",
    ) -> None:
        """Record one terminal run (``at`` defaults to the tracker clock)."""
        event = RunEvent(
            at=self._clock() if at is None else at,
            succeeded=succeeded,
            latency_seconds=max(latency_seconds, 0.0),
            queue_wait_seconds=max(queue_wait_seconds, 0.0),
            tenant=tenant,
        )
        with self._lock:
            note_access(self, "record_run")
            self._events.append(event)
            self._prune_locked(event.at)

    def _prune_locked(self, now: float) -> None:
        cutoff = now - self._horizon
        if self._events and self._events[0].at < cutoff:
            self._events = [e for e in self._events if e.at >= cutoff]

    # -- evaluation ----------------------------------------------------------
    @staticmethod
    def _burn(spec: SLOSpec, events: list[RunEvent]) -> tuple[float, int]:
        """(burn rate, event count) of one spec over a window's events."""
        if not events:
            return 0.0, 0
        bad = sum(1 for e in events if not spec.is_good(e))
        bad_fraction = bad / len(events)
        return bad_fraction / max(spec.error_budget, 1e-9), len(events)

    def evaluate(self, now: float | None = None) -> list[SLOStatus]:
        """Evaluate every spec, updating gauges and firing alarm edges."""
        at = self._clock() if now is None else now
        with self._lock:
            events = list(self._events)
        statuses: list[SLOStatus] = []
        fired: list[SLOAlarm] = []
        for spec in self.specs:
            short = [e for e in events
                     if at - spec.short_window_seconds <= e.at <= at]
            long = [e for e in events
                    if at - spec.long_window_seconds <= e.at <= at]
            burn_short, n_short = self._burn(spec, short)
            burn_long, n_long = self._burn(spec, long)
            compliance = (
                sum(1 for e in long if spec.is_good(e)) / n_long
                if n_long else 1.0)
            status = SLOStatus(
                spec=spec, at=at,
                burn_rate_short=burn_short, burn_rate_long=burn_long,
                compliance=compliance,
                events_short=n_short, events_long=n_long,
            )
            over = (burn_short >= spec.burn_rate_threshold
                    and burn_long >= spec.burn_rate_threshold
                    and n_short >= spec.min_events)
            with self._lock:
                was_active = spec.name in self._active
                if over and not was_active:
                    self._active.add(spec.name)
                    alarm = SLOAlarm(
                        slo=spec.name, at=at,
                        burn_rate_short=burn_short, burn_rate_long=burn_long,
                        short_window_seconds=spec.short_window_seconds,
                        long_window_seconds=spec.long_window_seconds,
                        events_short=n_short,
                    )
                    self.alarms.append(alarm)
                    if len(self.alarms) > self.max_alarms:
                        del self.alarms[:len(self.alarms) - self.max_alarms]
                    fired.append(alarm)
                elif was_active and burn_short < spec.burn_rate_threshold:
                    # hysteresis: clear only once the fast window recovers
                    self._active.discard(spec.name)
                status.alarming = spec.name in self._active
            _BURN_RATE.set(burn_short, slo=spec.name, window="short")
            _BURN_RATE.set(burn_long, slo=spec.name, window="long")
            _COMPLIANCE.set(compliance, slo=spec.name)
            _ALARM_ACTIVE.set(1.0 if status.alarming else 0.0, slo=spec.name)
            statuses.append(status)
        for alarm in fired:
            _ALARMS.inc(slo=alarm.slo)
            _LOG.warning(
                "slo_alarm", slo=alarm.slo,
                burn_rate_short=round(alarm.burn_rate_short, 3),
                burn_rate_long=round(alarm.burn_rate_long, 3),
                events_short=alarm.events_short,
            )
        return statuses

    def active_alarms(self) -> list[str]:
        """Names of the specs currently in the alarming state."""
        with self._lock:
            return sorted(self._active)

    def status(self, now: float | None = None) -> dict[str, Any]:
        """JSON-able tracker snapshot (the ``GET /slo`` body)."""
        statuses = self.evaluate(now)
        with self._lock:
            alarms = [a.to_dict() for a in self.alarms[-50:]]
        return {
            "slos": [s.to_dict() for s in statuses],
            "alarms": alarms,
            "activeAlarms": self.active_alarms(),
        }
