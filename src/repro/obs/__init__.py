"""Observability: trace spans, metrics registry, structured logs (DESIGN §7).

Three pillars, one correlation key (the per-run ``run_id``):

- :mod:`repro.obs.tracing` — hierarchical spans over wall *and* simulated
  time, exportable as JSONL or Chrome trace-event JSON (Perfetto);
- :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and fixed-bucket histograms with Prometheus text exposition;
- :mod:`repro.obs.logging` — structured JSON log lines.

Service-level telemetry (DESIGN §12) builds on those pillars:

- :mod:`repro.obs.accounting` — per-tenant cost attribution;
- :mod:`repro.obs.slo` — declarative SLOs with burn-rate alarms;
- :mod:`repro.obs.timeline` — one merged per-run event timeline;
- :mod:`repro.obs.dashboard` — the self-contained ``GET /dashboard`` page;
- :mod:`repro.obs.profiling` — span-attributed sampling profiler with
  speedscope / flamegraph exports (DESIGN §14).
"""

from repro.obs.accounting import (
    RunUsage,
    TenantAccounts,
    TenantUsage,
    usage_from_report,
)
from repro.obs.accuracy import (
    NULL_LEDGER,
    AccuracyLedger,
    LedgerEntry,
    PairStats,
)
from repro.obs.context import (
    bind_run_id,
    bind_tenant,
    current_run_id,
    current_tenant,
    new_run_id,
)
from repro.obs.dashboard import render_dashboard
from repro.obs.drift import DriftAlarm, DriftDetector
from repro.obs.logging import StructuredLogger, configure as configure_logging
from repro.obs.logging import get_logger, recent as recent_logs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
    parse_exposition,
)
from repro.obs.profiling import (
    AllocationTracker,
    DEFAULT_HZ,
    Profile,
    SERVICE_HZ,
    SamplingProfiler,
    flamegraph_html,
    folded_from_speedscope,
    self_times_from_speedscope,
    validate_speedscope,
)
from repro.obs.slo import (
    SLOAlarm,
    SLOSpec,
    SLOStatus,
    SLOTracker,
    default_slos,
    load_slo_config,
)
from repro.obs.timeline import (
    TimelineEvent,
    build_timeline,
    render_text as render_timeline_text,
    timeline_to_dict,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    critical_path,
    load_trace,
    spans_to_chrome,
    summarize_spans,
)

__all__ = [
    "bind_run_id", "bind_tenant", "current_run_id", "current_tenant",
    "new_run_id",
    "StructuredLogger", "configure_logging", "get_logger", "recent_logs",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "get_registry", "parse_exposition",
    "NULL_TRACER", "Span", "Tracer", "critical_path", "load_trace",
    "spans_to_chrome", "summarize_spans",
    "NULL_LEDGER", "AccuracyLedger", "LedgerEntry", "PairStats",
    "DriftAlarm", "DriftDetector",
    "RunUsage", "TenantAccounts", "TenantUsage", "usage_from_report",
    "SLOAlarm", "SLOSpec", "SLOStatus", "SLOTracker", "default_slos",
    "load_slo_config",
    "TimelineEvent", "build_timeline", "render_timeline_text",
    "timeline_to_dict",
    "render_dashboard",
    "AllocationTracker", "DEFAULT_HZ", "Profile", "SERVICE_HZ",
    "SamplingProfiler", "flamegraph_html", "folded_from_speedscope",
    "self_times_from_speedscope", "validate_speedscope",
]
