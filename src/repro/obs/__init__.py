"""Observability: trace spans, metrics registry, structured logs (DESIGN §7).

Three pillars, one correlation key (the per-run ``run_id``):

- :mod:`repro.obs.tracing` — hierarchical spans over wall *and* simulated
  time, exportable as JSONL or Chrome trace-event JSON (Perfetto);
- :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and fixed-bucket histograms with Prometheus text exposition;
- :mod:`repro.obs.logging` — structured JSON log lines.
"""

from repro.obs.accuracy import (
    NULL_LEDGER,
    AccuracyLedger,
    LedgerEntry,
    PairStats,
)
from repro.obs.context import bind_run_id, current_run_id, new_run_id
from repro.obs.drift import DriftAlarm, DriftDetector
from repro.obs.logging import StructuredLogger, configure as configure_logging
from repro.obs.logging import get_logger, recent as recent_logs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
    parse_exposition,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    critical_path,
    load_trace,
    spans_to_chrome,
    summarize_spans,
)

__all__ = [
    "bind_run_id", "current_run_id", "new_run_id",
    "StructuredLogger", "configure_logging", "get_logger", "recent_logs",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "get_registry", "parse_exposition",
    "NULL_TRACER", "Span", "Tracer", "critical_path", "load_trace",
    "spans_to_chrome", "summarize_spans",
    "NULL_LEDGER", "AccuracyLedger", "LedgerEntry", "PairStats",
    "DriftAlarm", "DriftDetector",
]
