"""Run correlation context shared by spans, metrics and log lines.

Every workflow execution gets a ``run_id``; binding it here lets the tracer,
the metrics registry and the structured logger stamp the same identifier on
everything they emit without threading it through every call signature.

Service-submitted runs additionally carry a ``tenant``: the execution
service binds it around the worker-thread execution, so enforcer spans and
journal records can attribute cost to the submitting tenant.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.obs.profiling import ATTRIBUTION

_RUN_ID: ContextVar[str | None] = ContextVar("ires_run_id", default=None)
_TENANT: ContextVar[str | None] = ContextVar("ires_tenant", default=None)


def new_run_id() -> str:
    """A fresh, short, unique run identifier."""
    return uuid.uuid4().hex[:12]


def current_run_id() -> str | None:
    """The run id bound to the current context, or None outside a run."""
    return _RUN_ID.get()


@contextmanager
def bind_run_id(run_id: str) -> Iterator[str]:
    """Bind ``run_id`` for the duration of the block (re-entrant).

    Besides the ContextVar, the id is published to the profiler's
    cross-thread attribution registry so a sampling profiler on another
    thread can attribute this thread's stacks to the run (ContextVars
    are invisible across threads).
    """
    token = _RUN_ID.set(run_id)
    ATTRIBUTION.push_run(run_id)
    try:
        yield run_id
    finally:
        ATTRIBUTION.pop_run()
        _RUN_ID.reset(token)


def current_tenant() -> str | None:
    """The tenant bound to the current context, or None outside a run."""
    return _TENANT.get()


@contextmanager
def bind_tenant(tenant: str) -> Iterator[str]:
    """Bind ``tenant`` for the duration of the block (re-entrant)."""
    token = _TENANT.set(tenant)
    try:
        yield tenant
    finally:
        _TENANT.reset(token)
