"""Prediction-accuracy ledger: predicted vs monitored metrics, per step.

IReS lives or dies by its cost models — the planner trusts
:class:`~repro.core.planner.CostEstimator` predictions and online
refinement silently retrains them — yet none of that is debuggable unless
someone writes down, for every executed step, what the planner *predicted*
next to what the monitor *measured*.  The :class:`AccuracyLedger` is that
record: an append-only store of :class:`LedgerEntry` rows keyed by
``run_id``/operator/engine/step, with rolling per-(operator, engine)
error statistics (:class:`PairStats`: MAPE, signed bias, sample count,
EWMA of the absolute relative error) exposed as gauges in the shared
metrics registry and persistable as JSONL next to the traces.

The default is the disabled :data:`NULL_LEDGER` — the enforcer's hot path
pays a single attribute check per step, mirroring ``NULL_TRACER``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.runtime_check import (
    LockLike,
    make_rlock,
    note_access,
    register_shared,
)
from repro.obs.metrics import REGISTRY

#: relative errors are computed against max(|actual|, EPS) to stay finite
EPS = 1e-9

_MAPE = REGISTRY.gauge(
    "ires_accuracy_mape",
    "Mean absolute percentage error of execTime predictions per pair",
    labels=("operator", "engine"),
)
_BIAS = REGISTRY.gauge(
    "ires_accuracy_bias",
    "Mean signed relative error ((pred-actual)/actual) per pair",
    labels=("operator", "engine"),
)
_EWMA = REGISTRY.gauge(
    "ires_accuracy_ewma_error",
    "EWMA of the absolute relative execTime error per pair",
    labels=("operator", "engine"),
)
_SAMPLES = REGISTRY.gauge(
    "ires_accuracy_samples",
    "Ledger entries per (operator, engine) pair",
    labels=("operator", "engine"),
)


@dataclass
class LedgerEntry:
    """One predicted-vs-actual row: a single enforced plan step."""

    run_id: str
    workflow: str
    step: str          #: materialized operator (or move) name
    operator: str      #: abstract algorithm the models are keyed by
    engine: str
    predicted: dict[str, float]
    actual: dict[str, float]
    at: float          #: simulated clock when the step started
    index: int = 0     #: position of the step within its run
    attempt: int = 1
    success: bool = True

    def relative_error(self, metric: str = "execTime") -> float | None:
        """Signed relative error ``(pred - actual) / actual`` of a metric."""
        pred = self.predicted.get(metric)
        actual = self.actual.get(metric)
        if pred is None or actual is None:
            return None
        return (float(pred) - float(actual)) / max(abs(float(actual)), EPS)

    def to_dict(self) -> dict:
        """JSON-able representation (the JSONL line format)."""
        return {
            "run_id": self.run_id,
            "workflow": self.workflow,
            "step": self.step,
            "operator": self.operator,
            "engine": self.engine,
            "predicted": dict(self.predicted),
            "actual": dict(self.actual),
            "at": self.at,
            "index": self.index,
            "attempt": self.attempt,
            "success": self.success,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerEntry":
        """Rebuild an entry from a JSONL line (unknown keys are dropped)."""
        return cls(
            run_id=str(payload.get("run_id", "")),
            workflow=str(payload.get("workflow", "")),
            step=str(payload.get("step", "")),
            operator=str(payload.get("operator", "")),
            engine=str(payload.get("engine", "")),
            predicted={k: float(v) for k, v in
                       dict(payload.get("predicted", {})).items()},
            actual={k: float(v) for k, v in
                    dict(payload.get("actual", {})).items()},
            at=float(payload.get("at", 0.0)),
            index=int(payload.get("index", 0)),
            attempt=int(payload.get("attempt", 1)),
            success=bool(payload.get("success", True)),
        )


class PairStats:
    """Rolling error statistics of one (operator, engine) pair."""

    __slots__ = ("operator", "engine", "count", "_abs_sum", "_signed_sum",
                 "_ewma", "alpha", "recent")

    def __init__(self, operator: str, engine: str, alpha: float = 0.3,
                 recent_window: int = 32) -> None:
        self.operator = operator
        self.engine = engine
        self.count = 0
        self._abs_sum = 0.0
        self._signed_sum = 0.0
        self._ewma: float | None = None
        self.alpha = alpha
        #: bounded deque of the newest signed relative errors (trend data)
        self.recent: deque[float] = deque(maxlen=recent_window)

    def observe(self, error: float) -> None:
        """Fold one signed relative error into every rolling statistic."""
        self.count += 1
        self._abs_sum += abs(error)
        self._signed_sum += error
        if self._ewma is None:
            self._ewma = abs(error)
        else:
            self._ewma = self.alpha * abs(error) + (1 - self.alpha) * self._ewma
        self.recent.append(error)

    @property
    def mape(self) -> float:
        """Mean absolute percentage error over the pair's whole history."""
        return self._abs_sum / self.count if self.count else 0.0

    @property
    def bias(self) -> float:
        """Mean signed relative error: positive = over-prediction."""
        return self._signed_sum / self.count if self.count else 0.0

    @property
    def ewma_error(self) -> float:
        """Exponentially weighted moving average of the absolute error."""
        return self._ewma if self._ewma is not None else 0.0

    @property
    def recent_mape(self) -> float:
        """MAPE over only the newest ``recent_window`` entries."""
        if not self.recent:
            return 0.0
        return sum(abs(e) for e in self.recent) / len(self.recent)

    def to_dict(self) -> dict:
        """JSON-able statistics snapshot."""
        return {
            "operator": self.operator,
            "engine": self.engine,
            "samples": self.count,
            "mape": self.mape,
            "bias": self.bias,
            "ewmaError": self.ewma_error,
            "recentMape": self.recent_mape,
        }


#: a ledger listener: called synchronously after each recorded entry
Listener = Callable[[LedgerEntry, PairStats], None]


class AccuracyLedger:  # thread-shared
    """Append-only predicted-vs-actual ledger with rolling pair statistics.

    ``path`` (optional) appends every entry as one JSON line as it is
    recorded, so the ledger survives the process next to the trace files;
    :meth:`load` restores entries (and rebuilds statistics) from such a
    file.  ``enabled=False`` turns :meth:`record` into a no-op — the
    shared :data:`NULL_LEDGER` is the default everywhere.
    """

    def __init__(self, enabled: bool = True, path: str | Path | None = None,
                 alpha: float = 0.3, recent_window: int = 32,
                 max_entries: int = 100_000) -> None:
        self.enabled = enabled
        self.path = Path(path) if path is not None else None
        self.alpha = alpha
        self.recent_window = recent_window
        self.max_entries = max_entries
        # concurrent service workers record steps through one shared ledger
        self._lock: LockLike = make_rlock("accuracy")
        self.entries: list[LedgerEntry] = []  # guarded-by: _lock
        self.listeners: list[Listener] = []
        self._stats: dict[tuple[str, str], PairStats] = {}  # guarded-by: _lock
        if enabled:
            register_shared(self, "obs:accuracy-ledger", self._lock)

    # -- recording -----------------------------------------------------------
    def record(self, entry: LedgerEntry) -> PairStats | None:
        """Append one entry, update statistics/gauges, notify listeners."""
        if not self.enabled:
            return None
        with self._lock:
            note_access(self, "record")
            self.entries.append(entry)
            if len(self.entries) > self.max_entries:
                # keep the newest half; stats already folded the older
                # entries in
                del self.entries[: len(self.entries) // 2]
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry.to_dict()) + "\n")
            stats = self._fold_locked(entry)
            listeners = list(self.listeners)
        # listeners (drift detectors, cache invalidation) run outside the
        # lock: they may take their own locks and must not nest under ours
        for listener in listeners:
            listener(entry, stats)
        return stats

    def record_step(
        self,
        run_id: str,
        workflow: str,
        step: str,
        operator: str,
        engine: str,
        predicted: dict[str, float],
        actual: dict[str, float],
        at: float,
        index: int = 0,
        attempt: int = 1,
        success: bool = True,
    ) -> PairStats | None:
        """Convenience wrapper the enforcer calls per executed step."""
        if not self.enabled:
            return None
        return self.record(LedgerEntry(
            run_id=run_id, workflow=workflow, step=step, operator=operator,
            engine=engine, predicted=predicted, actual=actual, at=at,
            index=index, attempt=attempt, success=success,
        ))

    def _fold_locked(self, entry: LedgerEntry) -> PairStats:
        key = (entry.operator, entry.engine)
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = PairStats(
                entry.operator, entry.engine, alpha=self.alpha,
                recent_window=self.recent_window,
            )
        error = entry.relative_error("execTime")
        if error is not None and entry.success:
            stats.observe(error)
            _MAPE.set(stats.mape, operator=entry.operator, engine=entry.engine)
            _BIAS.set(stats.bias, operator=entry.operator, engine=entry.engine)
            _EWMA.set(stats.ewma_error, operator=entry.operator,
                      engine=entry.engine)
            _SAMPLES.set(stats.count, operator=entry.operator,
                         engine=entry.engine)
        return stats

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        with self._lock:
            return iter(list(self.entries))

    def pairs(self) -> list[tuple[str, str]]:
        """Sorted (operator, engine) pairs the ledger has seen."""
        with self._lock:
            return sorted(self._stats)

    def stats_for(self, operator: str, engine: str) -> PairStats | None:
        """Rolling statistics of one pair, or None when never recorded."""
        with self._lock:
            return self._stats.get((operator, engine))

    def entries_for(self, operator: str, engine: str) -> list[LedgerEntry]:
        """The (bounded) retained entries of one pair, oldest first."""
        with self._lock:
            return [e for e in self.entries
                    if e.operator == operator and e.engine == engine]

    def report(self) -> dict:
        """JSON-able accuracy report: per-pair statistics + error trends."""
        pairs = []
        for operator, engine in self.pairs():
            stats = self.stats_for(operator, engine)
            assert stats is not None
            trend = [
                {"at": e.at, "error": e.relative_error("execTime")}
                for e in self.entries_for(operator, engine)
                if e.relative_error("execTime") is not None
            ]
            pairs.append({**stats.to_dict(), "trend": trend})
        return {
            "enabled": self.enabled,
            "entries": len(self.entries),
            "pairs": pairs,
        }

    # -- persistence ---------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Write every retained entry as JSONL; returns the entry count."""
        with self._lock:
            entries = list(self.entries)
        with open(path, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry.to_dict()) + "\n")
        return len(entries)

    def load(self, path: str | Path) -> int:
        """Append entries from a JSONL file (rebuilding statistics).

        Listeners are *not* notified for loaded entries — loading is an
        archival replay, not live execution.
        """
        count = 0
        with open(path, encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"line {line_no}: invalid ledger JSON "
                        f"(truncated file?): {exc}") from exc
                if not isinstance(payload, dict):
                    raise ValueError(
                        f"line {line_no}: not a ledger entry object")
                entry = LedgerEntry.from_dict(payload)
                with self._lock:
                    note_access(self, "load")
                    self.entries.append(entry)
                    self._fold_locked(entry)
                count += 1
        return count

    def clear(self) -> None:
        """Drop every entry and statistic (tests, new sessions)."""
        with self._lock:
            note_access(self, "clear")
            self.entries.clear()
            self._stats.clear()


#: shared disabled ledger — the default for un-wired components
NULL_LEDGER = AccuracyLedger(enabled=False)
