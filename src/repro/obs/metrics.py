"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-flavoured and dependency-free.  Instrumented modules create their
instruments once at import time against the shared :data:`REGISTRY`;
:meth:`MetricsRegistry.render` produces the text exposition format served by
``GET /metrics`` on the REST surface.

Run-scoped series (executor steps, resilience events, planning passes) carry
a ``run_id`` label taken from :mod:`repro.obs.context`, which is how one
workflow execution is correlated across metrics, spans and log lines.
"""

from __future__ import annotations

import math
from typing import Any, TypeVar, cast

from repro.analysis.runtime_check import (
    LockLike,
    make_rlock,
    note_access,
    register_shared,
)

#: default latency buckets (seconds) — spans µs-scale planning to sim hours
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)


_M = TypeVar("_M", bound="Metric")


def _escape(value: object) -> str:
    """Escape a label value for the Prometheus text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    """Escape HELP text (the spec escapes only backslash and line feed)."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_help(value: str) -> str:
    """Invert :func:`_escape_help` (single pass, backslash-aware)."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _unescape_label(value: str) -> str:
    """Invert :func:`_escape` (backslash-aware, single pass)."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:  # unknown escape: the spec says keep it verbatim
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_labels(text: str, line_no: int) -> dict[str, str]:
    """Parse a ``{name="value",...}`` label block, escape-aware."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        if text[i] in ", ":
            i += 1
            continue
        eq = text.find("=", i)
        if eq < 0:
            raise ValueError(f"line {line_no}: malformed label block")
        name = text[i:eq].strip()
        if eq + 1 >= len(text) or text[eq + 1] != '"':
            raise ValueError(f"line {line_no}: label value must be quoted")
        j = eq + 2
        raw: list[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                raw.append(text[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValueError(f"line {line_no}: unterminated label value")
        labels[name] = _unescape_label("".join(raw))
        i = j + 1
    return labels


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text exposition back into structured samples.

    Returns ``{"samples": [(name, labels, value), ...], "help": {...},
    "type": {...}}`` with label values fully unescaped — the inverse of
    :meth:`MetricsRegistry.render`, used by the round-trip tests and any
    scraping consumer that wants structured data without a client library.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            helps[name] = _unescape_help(help_text)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"line {line_no}: unbalanced label braces")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close], line_no)
            value_text = line[close + 1:].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
        value_text = value_text.strip()
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples.append((name, labels, value))
    return {"samples": samples, "help": helps, "type": types}


def _fmt(value: float) -> str:
    """Render a sample value (Prometheus spells infinities +Inf/-Inf)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Metric:
    """Base class: a named instrument with a fixed label-name tuple.

    Worker threads mutate series while scrape threads render them, so every
    value access happens under ``_lock`` — a reentrant lock the owning
    :class:`MetricsRegistry` replaces with its own at registration time (one
    lock guards the whole registry; reentrancy lets :meth:`render_into` run
    under :meth:`MetricsRegistry.render`).
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: tuple = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._lock: LockLike = make_rlock("metrics")
        self._values: dict[tuple, object] = {}  # guarded-by: _lock

    def _key(self, labels: dict) -> tuple:
        unknown = set(labels) - set(self.label_names)
        if unknown:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}, "
                f"got unexpected {sorted(unknown)}"
            )
        return tuple(str(labels.get(n, "")) for n in self.label_names)

    def _series_name(self, key: tuple, suffix: str = "",
                     extra: tuple = ()) -> str:
        pairs = [
            f'{n}="{_escape(v)}"'
            for n, v in list(zip(self.label_names, key)) + list(extra)
        ]
        label_str = "{" + ",".join(pairs) + "}" if pairs else ""
        return f"{self.name}{suffix}{label_str}"

    def clear(self) -> None:
        """Drop every recorded sample (the instrument itself survives)."""
        with self._lock:
            note_access(self, "clear")
            self._values.clear()

    # -- introspection -------------------------------------------------------
    def value(self, **labels: str) -> float:
        """Current value of one series (0.0 when never touched)."""
        with self._lock:
            note_access(self, "read")
            return float(self._values.get(self._key(labels), 0.0))  # type: ignore[arg-type]

    def series(self) -> dict[tuple, object]:
        """Raw (label values → state) mapping (snapshot under the lock)."""
        with self._lock:
            note_access(self, "read")
            return dict(self._values)

    def render_into(self, lines: list[str]) -> None:
        """Append this metric's exposition lines (snapshot under the lock)."""
        with self._lock:
            note_access(self, "read")
            for key in sorted(self._values):
                value = float(self._values[key])  # type: ignore[arg-type]
                lines.append(f"{self._series_name(key)} {_fmt(value)}")


class Counter(Metric):
    """A monotonically increasing sum."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            note_access(self, "write")
            self._values[key] = float(self._values.get(key, 0.0)) + amount  # type: ignore[arg-type]


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            note_access(self, "write")
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = self._key(labels)
        with self._lock:
            note_access(self, "write")
            self._values[key] = float(self._values.get(key, 0.0)) + amount  # type: ignore[arg-type]

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labelled series."""
        self.inc(-amount, **labels)


class Histogram(Metric):
    """Fixed-bucket histogram (cumulative buckets, like Prometheus)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labels: tuple = (),
                 buckets: tuple | None = None) -> None:
        super().__init__(name, help, labels)
        # Drop non-finite bounds: render_into always appends the implicit
        # cumulative +Inf bucket, so an explicit inf bound would emit a
        # duplicate le="+Inf" series (and NaN never sorts meaningfully).
        bounds = tuple(sorted(
            b for b in (buckets if buckets is not None else DEFAULT_BUCKETS)
            if math.isfinite(b)
        ))
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled series."""
        key = self._key(labels)
        with self._lock:
            note_access(self, "write")
            state = self._values.get(key)
            if state is None:
                state = [[0] * len(self.buckets), 0.0, 0]  # counts, sum, total
                self._values[key] = state
            counts, _, _ = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            state[1] += value
            state[2] += 1

    def value(self, **labels: str) -> float:
        """Observation count of one series."""
        with self._lock:
            note_access(self, "read")
            state = self._values.get(self._key(labels))
            return float(state[2]) if state is not None else 0.0  # type: ignore[index]

    def sum(self, **labels: str) -> float:
        """Sum of observed values of one series."""
        with self._lock:
            note_access(self, "read")
            state = self._values.get(self._key(labels))
            return float(state[1]) if state is not None else 0.0  # type: ignore[index]

    def render_into(self, lines: list[str]) -> None:
        """Append cumulative ``_bucket``/``_sum``/``_count`` lines."""
        with self._lock:
            note_access(self, "read")
            self._render_series_locked(lines)

    def _render_series_locked(self, lines: list[str]) -> None:
        for key in sorted(self._values):
            counts, total, count = self._values[key]  # type: ignore[misc]
            running = 0
            for bound, in_bucket in zip(self.buckets, counts):
                running = in_bucket
                lines.append(
                    f"{self._series_name(key, '_bucket', (('le', _fmt(bound)),))}"
                    f" {running}"
                )
            lines.append(
                f"{self._series_name(key, '_bucket', (('le', '+Inf'),))} {count}"
            )
            lines.append(f"{self._series_name(key, '_sum')} {_fmt(total)}")
            lines.append(f"{self._series_name(key, '_count')} {count}")


class MetricsRegistry:  # thread-shared
    """Named instruments, get-or-create, rendered as Prometheus text.

    One reentrant lock guards both the instrument map and (shared into each
    instrument at registration time) every series mutation, so a ``/metrics``
    scrape renders a consistent snapshot while worker threads keep counting.
    """

    def __init__(self) -> None:
        self._lock: LockLike = make_rlock("metrics")
        self._metrics: dict[str, Metric] = {}  # guarded-by: _lock
        register_shared(self, "metrics:registry", self._lock)

    def _register(self, cls: "type[_M]", name: str, help: str, labels: tuple,
                  **kwargs: Any) -> "_M":
        with self._lock:
            note_access(self, "register")
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.label_names != tuple(labels)):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.label_names}"
                    )
                return cast("_M", existing)
            created = cls(name, help, tuple(labels), **kwargs)
            created._lock = self._lock  # one lock guards the whole registry
            self._metrics[name] = created
            return created

    def counter(self, name: str, help: str = "", labels: tuple = ()) -> Counter:
        """Get or create a counter."""
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> Gauge:
        """Get or create a gauge."""
        return self._register(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", labels: tuple = (),
                  buckets: tuple | None = None) -> Histogram:
        """Get or create a histogram."""
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Metric | None:
        """Look an instrument up by name."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        """Sorted names of every registered instrument."""
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every series; instruments stay registered (tests, new runs)."""
        with self._lock:
            note_access(self, "reset")
            for metric in self._metrics.values():
                metric.clear()

    def render(self) -> str:
        """The Prometheus text exposition of every instrument.

        The whole walk happens under the registry lock, so the scrape is one
        consistent snapshot even while workers mutate series concurrently.
        """
        lines: list[str] = []
        with self._lock:
            note_access(self, "render")
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(
                        f"# HELP {metric.name} {_escape_help(metric.help)}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                metric.render_into(lines)
        return "\n".join(lines) + "\n"


#: the process-wide registry every instrumented module shares
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The shared process-wide registry."""
    return REGISTRY
