"""Per-tenant cost accounting for service-submitted runs (DESIGN §12).

The execution service admits runs on behalf of tenants; this module turns
each finished run into a :class:`RunUsage` sample and aggregates them into
per-tenant totals — queued-wait seconds, simulated engine-core-seconds per
engine, retries, replans and journal bytes — the per-task, per-resource
attribution a chargeback report (or a placement recommender) trains on.

Everything is duck-typed against the enforcer's ``ExecutionReport`` so the
obs layer keeps sitting below ``execution`` in the import graph.  The
service calls :func:`usage_from_report` with the report (when the run
produced one) and feeds the result to a process-shared
:class:`TenantAccounts`, whose :meth:`~TenantAccounts.snapshot` is the
``GET /tenants`` body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis.runtime_check import (
    LockLike,
    make_lock,
    note_access,
    register_shared,
)
from repro.obs.metrics import REGISTRY

_CORE_SECONDS = REGISTRY.counter(
    "ires_tenant_engine_core_seconds_total",
    "Simulated engine-core-seconds charged per tenant and engine",
    labels=("tenant", "engine"),
)
_QUEUED_WAIT = REGISTRY.counter(
    "ires_tenant_queued_wait_seconds_total",
    "Wall seconds tenant submissions spent queued before execution",
    labels=("tenant",),
)
_JOURNAL_BYTES = REGISTRY.counter(
    "ires_tenant_journal_bytes_total",
    "Write-ahead journal bytes attributed per tenant",
    labels=("tenant",),
)


@dataclass
class RunUsage:
    """One run's attributable cost, derived from its execution report."""

    run_id: str
    tenant: str
    workflow: str
    state: str
    queued_wait_seconds: float = 0.0
    sim_seconds: float = 0.0
    #: engine name -> simulated seconds * cores of that engine's steps
    engine_core_seconds: dict[str, float] = field(default_factory=dict)
    #: engine name -> simulated seconds of that engine's steps
    engine_sim_seconds: dict[str, float] = field(default_factory=dict)
    steps: int = 0
    retries: int = 0
    replans: int = 0
    journal_bytes: int = 0

    @property
    def total_core_seconds(self) -> float:
        """Engine-core-seconds summed over every engine."""
        return sum(self.engine_core_seconds.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the usage sample."""
        return {
            "runId": self.run_id,
            "tenant": self.tenant,
            "workflow": self.workflow,
            "state": self.state,
            "queuedWaitSeconds": round(self.queued_wait_seconds, 6),
            "simSeconds": round(self.sim_seconds, 6),
            "engineCoreSeconds": {
                k: round(v, 6)
                for k, v in sorted(self.engine_core_seconds.items())
            },
            "engineSimSeconds": {
                k: round(v, 6)
                for k, v in sorted(self.engine_sim_seconds.items())
            },
            "steps": self.steps,
            "retries": self.retries,
            "replans": self.replans,
            "journalBytes": self.journal_bytes,
        }


def usage_from_report(
    run_id: str,
    tenant: str,
    workflow: str,
    state: str,
    report: Any = None,
    queued_wait_seconds: float = 0.0,
    journal_bytes: int = 0,
) -> RunUsage:
    """Build a :class:`RunUsage` from an enforcer ``ExecutionReport``.

    ``report`` is duck-typed (``executions``/``retries``/``replans``/
    ``sim_time``); pass None for runs that died before producing one —
    the queue wait and journal bytes are still attributable.
    """
    usage = RunUsage(
        run_id=run_id, tenant=tenant, workflow=workflow, state=state,
        queued_wait_seconds=max(queued_wait_seconds, 0.0),
        journal_bytes=journal_bytes,
    )
    if report is None:
        return usage
    usage.sim_seconds = float(getattr(report, "sim_time", 0.0) or 0.0)
    usage.retries = int(getattr(report, "retries", 0) or 0)
    usage.replans = int(getattr(report, "replans", 0) or 0)
    executions: Iterable[Any] = getattr(report, "executions", ()) or ()
    for execution in executions:
        engine = str(getattr(execution, "engine", "") or "")
        seconds = float(getattr(execution, "sim_seconds", 0.0) or 0.0)
        cores = int(getattr(execution, "cores", 0) or 0)
        usage.steps += 1
        usage.engine_sim_seconds[engine] = (
            usage.engine_sim_seconds.get(engine, 0.0) + seconds)
        if cores > 0:
            usage.engine_core_seconds[engine] = (
                usage.engine_core_seconds.get(engine, 0.0) + seconds * cores)
    return usage


@dataclass
class TenantUsage:
    """Aggregated totals of one tenant, newest run last."""

    tenant: str
    runs: int = 0
    runs_by_state: dict[str, int] = field(default_factory=dict)
    queued_wait_seconds: float = 0.0
    sim_seconds: float = 0.0
    engine_core_seconds: dict[str, float] = field(default_factory=dict)
    steps: int = 0
    retries: int = 0
    replans: int = 0
    journal_bytes: int = 0

    def add(self, usage: RunUsage) -> None:
        """Fold one run's usage into the totals."""
        self.runs += 1
        self.runs_by_state[usage.state] = (
            self.runs_by_state.get(usage.state, 0) + 1)
        self.queued_wait_seconds += usage.queued_wait_seconds
        self.sim_seconds += usage.sim_seconds
        for engine, core_seconds in usage.engine_core_seconds.items():
            self.engine_core_seconds[engine] = (
                self.engine_core_seconds.get(engine, 0.0) + core_seconds)
        self.steps += usage.steps
        self.retries += usage.retries
        self.replans += usage.replans
        self.journal_bytes += usage.journal_bytes

    def to_dict(self) -> dict[str, Any]:
        """JSON-able per-tenant aggregate (one ``GET /tenants`` row)."""
        return {
            "tenant": self.tenant,
            "runs": self.runs,
            "runsByState": dict(sorted(self.runs_by_state.items())),
            "queuedWaitSeconds": round(self.queued_wait_seconds, 6),
            "simSeconds": round(self.sim_seconds, 6),
            "engineCoreSeconds": {
                k: round(v, 6)
                for k, v in sorted(self.engine_core_seconds.items())
            },
            "totalCoreSeconds": round(
                sum(self.engine_core_seconds.values()), 6),
            "steps": self.steps,
            "retries": self.retries,
            "replans": self.replans,
            "journalBytes": self.journal_bytes,
        }


class TenantAccounts:  # thread-shared
    """Thread-safe per-tenant aggregation of :class:`RunUsage` samples.

    ``history_limit`` bounds the retained per-run samples (newest kept);
    the per-tenant aggregates are never trimmed.
    """

    def __init__(self, history_limit: int = 256) -> None:
        self.history_limit = history_limit
        self._lock: LockLike = make_lock("accounts")
        self._tenants: dict[str, TenantUsage] = {}  # guarded-by: _lock
        self._recent: list[RunUsage] = []  # guarded-by: _lock
        register_shared(self, "obs:accounts", self._lock)

    def record(self, usage: RunUsage) -> None:
        """Fold one run into the tenant's totals and the metrics registry."""
        with self._lock:
            note_access(self, "record")
            agg = self._tenants.get(usage.tenant)
            if agg is None:
                agg = self._tenants[usage.tenant] = TenantUsage(usage.tenant)
            agg.add(usage)
            self._recent.append(usage)
            if len(self._recent) > self.history_limit:
                del self._recent[:len(self._recent) - self.history_limit]
        for engine, core_seconds in usage.engine_core_seconds.items():
            _CORE_SECONDS.inc(core_seconds, tenant=usage.tenant, engine=engine)
        if usage.queued_wait_seconds > 0:
            _QUEUED_WAIT.inc(usage.queued_wait_seconds, tenant=usage.tenant)
        if usage.journal_bytes > 0:
            _JOURNAL_BYTES.inc(usage.journal_bytes, tenant=usage.tenant)

    def tenant(self, name: str) -> TenantUsage | None:
        """One tenant's aggregate, or None when never seen."""
        with self._lock:
            return self._tenants.get(name)

    def recent(self, n: int = 50, tenant: str | None = None) -> list[RunUsage]:
        """The newest ``n`` run samples (optionally one tenant's), oldest first."""
        with self._lock:
            samples = [u for u in self._recent
                       if tenant is None or u.tenant == tenant]
        return samples[-n:]

    def snapshot(self) -> dict[str, Any]:
        """JSON-able accounting snapshot (the ``GET /tenants`` body)."""
        with self._lock:
            tenants = [agg.to_dict()
                       for _, agg in sorted(self._tenants.items())]
            recent = [u.to_dict() for u in self._recent[-50:]]
        return {"tenants": tenants, "recentRuns": recent}
