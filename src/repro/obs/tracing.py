"""Hierarchical trace spans over both wall-clock and the simulated clock.

A :class:`Tracer` produces :class:`Span` trees — planner passes, per-step
enforcement, simulator schedules, model trainings — each stamped with wall
time (``time.perf_counter``) *and* the simulated :class:`~repro.engines.clock
.SimClock` time, plus the ``run_id`` bound in :mod:`repro.obs.context`.

Traces export two ways:

- **JSONL** (:meth:`Tracer.export_jsonl`): one span object per line, the
  machine-readable archive format;
- **Chrome trace-event JSON** (:meth:`Tracer.export_chrome`): loadable in
  Perfetto / ``chrome://tracing``.  Spans appear twice — once on the
  "wall clock" process laid out in real time, and (when they consumed
  simulated time) once on the "simulated clock" process laid out in sim
  seconds, which is the timeline that shows the schedule the paper's
  experiments measure.

:func:`load_trace` reads either format back; :func:`summarize_spans` and
:func:`critical_path` power ``ires trace summarize``.
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Protocol

if TYPE_CHECKING:
    from repro.engines.clock import SimClock

from repro.obs.context import current_run_id
from repro.obs.profiling import ATTRIBUTION

#: Perfetto thread rows, one per instrumented subsystem
CATEGORY_TIDS = {
    "planner": 1,
    "executor": 2,
    "simulator": 3,
    "modeler": 4,
    "resilience": 5,
    "library": 6,
}
_DEFAULT_TID = 9

WALL_PID = 1
SIM_PID = 2

OK = "ok"
ERROR = "error"
IN_PROGRESS = "in_progress"


class Span:
    """One traced operation: ids, two clocks, attributes, events, status."""

    __slots__ = (
        "name", "category", "span_id", "parent_id", "run_id",
        "start_wall", "end_wall", "start_sim", "end_sim",
        "attributes", "events", "status", "error",
    )

    def __init__(self, name: str, category: str, span_id: int,
                 parent_id: int | None, run_id: str | None,
                 start_wall: float, start_sim: float,
                 attributes: dict | None = None) -> None:
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.run_id = run_id
        self.start_wall = start_wall
        self.end_wall = start_wall
        self.start_sim = start_sim
        self.end_sim = start_sim
        self.attributes = dict(attributes) if attributes else {}
        self.events: list[dict] = []
        self.status = IN_PROGRESS
        self.error: str | None = None

    # -- recording ----------------------------------------------------------
    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute (overwrites)."""
        self.attributes[key] = value

    def add_event(self, name: str, wall: float | None = None,
                  sim: float | None = None, **attributes: object) -> None:
        """Record a point-in-time event inside this span.

        ``wall`` defaults to ``time.perf_counter()`` at call time, so point
        events (retries, breaker trips) interleave correctly with other
        wall-stamped telemetry on the unified run timeline.
        """
        self.events.append({
            "name": name,
            "wall": time.perf_counter() if wall is None else wall,
            "sim": sim,
            "attributes": attributes,
        })

    @property
    def wall_seconds(self) -> float:
        """Real seconds the span covers."""
        return max(self.end_wall - self.start_wall, 0.0)

    @property
    def sim_seconds(self) -> float:
        """Simulated seconds the span covers."""
        return max(self.end_sim - self.start_sim, 0.0)

    def to_dict(self) -> dict:
        """JSON-able representation (the JSONL line format)."""
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "run_id": self.run_id,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "status": self.status,
            "error": self.error,
            "attributes": self.attributes,
            "events": self.events,
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"wall={self.wall_seconds:.6f}s, sim={self.sim_seconds:.3f}s, "
                f"{self.status})")


class _NoopSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:  # noqa: D102 - no-op
        pass

    def add_event(self, name: str, wall: float | None = None,
                  sim: float | None = None,
                  **attributes: object) -> None:  # noqa: D102
        pass


NOOP_SPAN = _NoopSpan()


class SpanHook(Protocol):
    """Span-boundary observer contract (see :meth:`Tracer.add_hook`)."""

    def span_started(self, span: Span) -> None: ...

    def span_finished(self, span: Span) -> None: ...


class Tracer:
    """Produces, collects and exports hierarchical spans.

    ``clock`` is the simulated clock to stamp spans with (optional);
    ``enabled=False`` turns every operation into a cheap no-op so
    uninstrumented runs pay almost nothing.
    """

    def __init__(self, clock: "SimClock | None" = None, enabled: bool = True,
                 max_spans: int = 200_000) -> None:
        self.clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._active: ContextVar[tuple] = ContextVar("ires_span_stack",
                                                     default=())
        #: Observers notified at span boundaries (``span_started(span)``
        #: / ``span_finished(span)``), e.g. the allocation tracker.
        self._hooks: list[SpanHook] = []

    # -- hooks --------------------------------------------------------------
    def add_hook(self, hook: "SpanHook") -> None:
        """Register a span-boundary observer (idempotent)."""
        if hook not in self._hooks:
            self._hooks.append(hook)

    def remove_hook(self, hook: "SpanHook") -> None:
        """Unregister a span-boundary observer (missing is fine)."""
        if hook in self._hooks:
            self._hooks.remove(hook)

    # -- clocks -------------------------------------------------------------
    def _wall(self) -> float:
        return time.perf_counter()

    def _sim(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    # -- span production ----------------------------------------------------
    @contextmanager
    def span(self, name: str, category: str = "ires",
             **attributes: object) -> "Iterator[Span | _NoopSpan]":
        """Open a child span of whatever span is active in this context."""
        if not self.enabled:
            yield NOOP_SPAN
            return
        stack = self._active.get()
        parent_id = stack[-1].span_id if stack else None
        span = Span(name, category, next(self._ids), parent_id,
                    current_run_id(), self._wall(), self._sim(), attributes)
        token = self._active.set(stack + (span,))
        # Publish to the profiler's cross-thread registry only while a
        # profiler is sampling (push_span returns False otherwise, so
        # the pop stays balanced).
        published = ATTRIBUTION.push_span(name, category)
        for hook in self._hooks:
            hook.span_started(span)
        try:
            yield span
        except BaseException as exc:
            span.status = ERROR
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            if published:
                ATTRIBUTION.pop_span()
            self._active.reset(token)
            span.end_wall = self._wall()
            span.end_sim = self._sim()
            if span.status == IN_PROGRESS:
                span.status = OK
            for hook in self._hooks:
                hook.span_finished(span)
            self._store(span)

    def record_span(self, name: str, category: str, start_sim: float,
                    end_sim: float, attributes: dict | None = None,
                    parent: Span | None = None,
                    status: str = OK) -> Span | None:
        """Retro-record a span from simulated timestamps (event-loop output).

        Used by the parallel simulator, whose schedule is only known after
        the event loop ran.  Wall timestamps collapse to "now".
        """
        if not self.enabled:
            return None
        if parent is None:
            stack = self._active.get()
            parent = stack[-1] if stack else None
        parent_id = parent.span_id if isinstance(parent, Span) else None
        span = Span(name, category, next(self._ids), parent_id,
                    current_run_id(), self._wall(), start_sim, attributes)
        span.end_wall = span.start_wall
        span.start_sim = start_sim
        span.end_sim = end_sim
        span.status = status
        self._store(span)
        return span

    def _store(self, span: Span) -> None:
        self._spans.append(span)
        if len(self._spans) > self.max_spans:
            # keep the newest half; old spans were exportable before now
            del self._spans[: len(self._spans) // 2]

    # -- access -------------------------------------------------------------
    def spans(self, run_id: str | None = None) -> list[Span]:
        """Finished spans, optionally filtered to one run."""
        if run_id is None:
            return list(self._spans)
        return [s for s in self._spans if s.run_id == run_id]

    def run_ids(self) -> list[str]:
        """Distinct run ids in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            if span.run_id is not None:
                seen.setdefault(span.run_id, None)
        return list(seen)

    def clear(self) -> None:
        """Drop every collected span."""
        self._spans.clear()

    # -- export -------------------------------------------------------------
    def export_jsonl(self, path: str | Path,
                     run_id: str | None = None) -> int:
        """Write one span JSON object per line; returns the span count."""
        spans = self.spans(run_id)
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict()) + "\n")
        return len(spans)

    def chrome_trace(self, run_id: str | None = None) -> dict:
        """The Chrome ``trace_event`` JSON object (Perfetto-loadable)."""
        spans = self.spans(run_id)
        return spans_to_chrome([s.to_dict() for s in spans])

    def export_chrome(self, path: str | Path,
                      run_id: str | None = None) -> int:
        """Write the Chrome trace JSON; returns the span count."""
        spans = self.spans(run_id)
        payload = spans_to_chrome([s.to_dict() for s in spans])
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(spans)


#: shared disabled tracer — the default for un-wired components
NULL_TRACER = Tracer(enabled=False)


# -- chrome trace conversion -------------------------------------------------
def _tid(category: str) -> int:
    return CATEGORY_TIDS.get(category, _DEFAULT_TID)


def spans_to_chrome(spans: list[dict]) -> dict:
    """Convert span dicts into a Chrome trace-event JSON object."""
    events: list[dict] = []
    for pid, label in ((WALL_PID, "IReS wall clock"),
                       (SIM_PID, "IReS simulated clock")):
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": label}})
    for category, tid in sorted(CATEGORY_TIDS.items()):
        for pid in (WALL_PID, SIM_PID):
            events.append({"ph": "M", "pid": pid, "tid": tid,
                           "name": "thread_name", "args": {"name": category}})
    epoch = min((s["start_wall"] for s in spans), default=0.0)
    for span in spans:
        args = {
            "span_id": span["span_id"],
            "parent_id": span["parent_id"],
            "run_id": span["run_id"],
            "status": span["status"],
            "start_sim": span["start_sim"],
            "end_sim": span["end_sim"],
            "start_wall": span["start_wall"],
            "end_wall": span["end_wall"],
        }
        if span.get("error"):
            args["error"] = span["error"]
        args.update(span.get("attributes", {}))
        tid = _tid(span["category"])
        events.append({
            "name": span["name"],
            "cat": span["category"],
            "ph": "X",
            "pid": WALL_PID,
            "tid": tid,
            "ts": (span["start_wall"] - epoch) * 1e6,
            "dur": max(span["end_wall"] - span["start_wall"], 0.0) * 1e6,
            "args": args,
        })
        if span["end_sim"] > span["start_sim"]:
            events.append({
                "name": span["name"],
                "cat": span["category"],
                "ph": "X",
                "pid": SIM_PID,
                "tid": tid,
                "ts": span["start_sim"] * 1e6,
                "dur": (span["end_sim"] - span["start_sim"]) * 1e6,
                "args": args,
            })
        for event in span.get("events", ()):
            events.append({
                "name": f"{span['name']}:{event['name']}",
                "cat": span["category"],
                "ph": "i",
                "pid": WALL_PID,
                "tid": tid,
                "ts": ((event.get("wall") or span["start_wall"]) - epoch) * 1e6,
                "s": "t",
                "args": dict(event.get("attributes", {})),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- loading + summarizing ---------------------------------------------------
#: keys every loaded span must carry for the analysis functions to work
REQUIRED_SPAN_KEYS = ("name", "start_wall", "end_wall", "start_sim", "end_sim")


def _check_span(span: object, where: str) -> dict:
    """Validate one loaded span dict; raise ValueError with its location."""
    if not isinstance(span, dict):
        raise ValueError(f"{where}: not a span object "
                         f"(got {type(span).__name__})")
    missing = [k for k in REQUIRED_SPAN_KEYS if k not in span]
    if missing:
        raise ValueError(
            f"{where}: span is missing {', '.join(missing)} "
            "(empty or truncated trace file?)")
    return span


def load_trace(path: str | Path) -> list[dict]:
    """Load span dicts from a JSONL or Chrome trace-event file.

    Both formats start with ``{``, so the discriminator is whether the
    whole file parses as one JSON object carrying ``traceEvents``.
    Raises :class:`ValueError` naming the offending line when the file is
    empty, truncated, or carries non-span JSON — callers (``ires trace
    summarize``) turn that into a one-line error instead of a traceback.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if not text.strip():
        raise ValueError("trace file is empty")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return [_check_span(s, f"trace event {i}")
                    for i, s in enumerate(
                        _spans_from_chrome(payload["traceEvents"]))]
        return [_check_span(payload, "line 1")]  # a single-span JSONL file
    spans = []
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"line {line_no}: invalid JSON (truncated trace file?): "
                f"{exc}") from exc
        spans.append(_check_span(parsed, f"line {line_no}"))
    return spans


def _spans_from_chrome(events: list[dict]) -> list[dict]:
    """Reconstruct span dicts from the wall-clock complete events."""
    spans = []
    seen: set[int] = set()
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        span_id = args.get("span_id")
        if span_id is None or span_id in seen:
            continue
        seen.add(span_id)
        known = {"span_id", "parent_id", "run_id", "status", "error",
                 "start_sim", "end_sim", "start_wall", "end_wall"}
        spans.append({
            "name": event.get("name", ""),
            "category": event.get("cat", ""),
            "span_id": span_id,
            "parent_id": args.get("parent_id"),
            "run_id": args.get("run_id"),
            "status": args.get("status", OK),
            "error": args.get("error"),
            "start_wall": args.get("start_wall", 0.0),
            "end_wall": args.get("end_wall", 0.0),
            "start_sim": args.get("start_sim", 0.0),
            "end_sim": args.get("end_sim", 0.0),
            "attributes": {k: v for k, v in args.items() if k not in known},
            "events": [],
        })
    return spans


def critical_path(spans: list[dict]) -> tuple[float, list[dict]]:
    """Critical path through the per-step spans, in simulated seconds.

    Step spans carry ``inputs``/``outputs`` dataset-name attributes; a step
    starts once the producers of its inputs finished.  Returns the makespan
    and the chain of step spans on the critical path (execution order).
    """
    steps = [
        s for s in spans
        if isinstance(s.get("attributes", {}).get("outputs"), list)
    ]
    steps.sort(key=lambda s: (s["start_sim"], s["span_id"]))
    finish_by_dataset: dict[str, float] = {}
    maker_by_dataset: dict[str, dict] = {}
    pred: dict[int, dict | None] = {}
    finish_of: dict[int, float] = {}
    for step in steps:
        attrs = step["attributes"]
        start, producer = 0.0, None
        for name in attrs.get("inputs", ()):
            upstream = finish_by_dataset.get(name, 0.0)
            if upstream > start:
                start, producer = upstream, maker_by_dataset.get(name)
        finish = start + max(step["end_sim"] - step["start_sim"], 0.0)
        pred[step["span_id"]] = producer
        finish_of[step["span_id"]] = finish
        for name in attrs["outputs"]:
            if finish >= finish_by_dataset.get(name, -1.0):
                finish_by_dataset[name] = finish
                maker_by_dataset[name] = step
    if not finish_of:
        return 0.0, []
    last_id = max(finish_of, key=lambda sid: finish_of[sid])
    makespan = finish_of[last_id]
    by_id = {s["span_id"]: s for s in steps}
    chain: list[dict] = []
    cursor: dict | None = by_id[last_id]
    while cursor is not None:
        chain.append(cursor)
        cursor = pred[cursor["span_id"]]
    chain.reverse()
    return makespan, chain


def summarize_spans(spans: list[dict],
                    self_times: dict[str, dict[str, float]] | None = None,
                    ) -> dict:
    """Aggregate a trace: per-run, per-phase totals plus the critical path.

    ``self_times`` is an optional ``{run_id: {category: seconds}}`` table
    of profiler-attributed self CPU (see
    :func:`repro.obs.profiling.self_times_from_speedscope`); when given,
    each phase gains a ``self_seconds`` figure.
    """
    runs: dict[str, list[dict]] = {}
    for span in spans:
        runs.setdefault(span.get("run_id") or "-", []).append(span)
    summary: dict = {"runs": []}
    for run_id, run_spans in runs.items():
        run_self = (self_times or {}).get(run_id, {})
        phases: dict[str, dict] = {}
        for span in run_spans:
            phase = phases.setdefault(
                span.get("category") or "ires",
                {"spans": 0, "wall_seconds": 0.0, "sim_seconds": 0.0,
                 "errors": 0},
            )
            phase["spans"] += 1
            phase["wall_seconds"] += max(
                span["end_wall"] - span["start_wall"], 0.0)
            phase["sim_seconds"] += max(
                span["end_sim"] - span["start_sim"], 0.0)
            if span.get("status") == ERROR:
                phase["errors"] += 1
        for category, phase in phases.items():
            if category in run_self:
                phase["self_seconds"] = round(run_self[category], 6)
        makespan, chain = critical_path(run_spans)
        summary["runs"].append({
            "run_id": run_id,
            "spans": len(run_spans),
            "phases": phases,
            "critical_path_seconds": makespan,
            "critical_path": [
                {
                    "name": s["name"],
                    "engine": s.get("attributes", {}).get("engine", ""),
                    "sim_seconds": max(s["end_sim"] - s["start_sim"], 0.0),
                }
                for s in chain
            ],
        })
    return summary
