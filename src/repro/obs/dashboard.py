"""Self-contained live service dashboard (no dependencies, DESIGN §12).

``GET /dashboard`` renders one portable HTML document — same approach as
:mod:`repro.obs.htmlreport`: inline styles, an embedded JSON snapshot, no
external assets — showing queue depth, active runs, per-tenant throughput
and cost, SLO burn rates and recent runs.  A small inline script re-polls
``/service``, ``/slo``, ``/tenants`` and ``/runs`` every few seconds when
the page is served by a live ``ires serve``; opened from a file (a CI
artifact), it simply renders the embedded snapshot.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; width: 100%; font-size: .9rem; }
th, td { text-align: left; padding: .35rem .6rem;
         border-bottom: 1px solid #ddd; }
th { background: #f4f4f8; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.meta { color: #666; font-size: .8rem; }
.tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
.tile { background: #fbfbfd; border: 1px solid #e2e2ea; border-radius: 6px;
        padding: .7rem 1.1rem; min-width: 8.5rem; }
.tile .v { font-size: 1.5rem; font-weight: 600;
           font-variant-numeric: tabular-nums; }
.tile .k { color: #666; font-size: .75rem; text-transform: uppercase;
           letter-spacing: .04em; }
.ok { color: #1e8e3e; font-weight: 600; }
.bad { color: #c0392b; font-weight: 600; }
.state-succeeded { color: #1e8e3e; } .state-failed { color: #c0392b; }
.state-running { color: #2d6cdf; } .state-queued { color: #8a6d1a; }
"""

_SCRIPT = """
function esc(s) {
  return String(s).replace(/[&<>"]/g,
    c => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[c]));
}
function fmt(v, digits) {
  if (v === null || v === undefined) return '-';
  if (typeof v !== 'number') return esc(v);
  return v.toFixed(digits === undefined ? 2 : digits);
}
function tiles(svc) {
  const accepting = svc.accepting
    ? '<span class="ok">yes</span>' : '<span class="bad">no</span>';
  const pairs = [
    ['queue depth', fmt(svc.queueDepth, 0)],
    ['active runs', fmt(svc.active, 0)],
    ['peak active', fmt(svc.peakActive, 0)],
    ['workers', fmt(svc.workers, 0)],
    ['queue wait ewma (s)', fmt(svc.queueWaitEwmaSeconds, 3)],
    ['retry-after hint (s)', fmt(svc.retryAfterHint, 1)],
    ['accepting', accepting],
  ];
  return pairs.map(([k, v]) =>
    `<div class="tile"><div class="v">${v}</div>` +
    `<div class="k">${esc(k)}</div></div>`).join('');
}
function sloRows(slo) {
  return (slo.slos || []).map(s => {
    const cls = s.state === 'ok' ? 'ok' : 'bad';
    return `<tr><td>${esc(s.slo)}</td><td>${esc(s.kind)}</td>` +
      `<td class="num">${fmt(s.target, 3)}</td>` +
      `<td class="num">${fmt(s.compliance, 4)}</td>` +
      `<td class="num">${fmt(s.burnRateShort)}</td>` +
      `<td class="num">${fmt(s.burnRateLong)}</td>` +
      `<td class="num">${fmt(s.eventsShort, 0)}</td>` +
      `<td class="${cls}">${esc(s.state)}</td></tr>`;
  }).join('');
}
function tenantRows(tenants) {
  return (tenants.tenants || []).map(t =>
    `<tr><td>${esc(t.tenant)}</td>` +
    `<td class="num">${fmt(t.runs, 0)}</td>` +
    `<td class="num">${fmt((t.runsByState || {}).succeeded || 0, 0)}</td>` +
    `<td class="num">${fmt((t.runsByState || {}).failed || 0, 0)}</td>` +
    `<td class="num">${fmt(t.totalCoreSeconds)}</td>` +
    `<td class="num">${fmt(t.queuedWaitSeconds, 3)}</td>` +
    `<td class="num">${fmt(t.retries, 0)}</td>` +
    `<td class="num">${fmt(t.replans, 0)}</td>` +
    `<td class="num">${fmt(t.journalBytes, 0)}</td></tr>`).join('');
}
function hotRows(profile) {
  if (!profile || !profile.shared) return '';
  const frames = profile.shared.frames || [];
  const self = new Map(), total = new Map();
  for (const prof of (profile.profiles || [])) {
    const samples = prof.samples || [], weights = prof.weights || [];
    for (let i = 0; i < samples.length; i++) {
      const stack = samples[i], w = weights[i] || 0;
      if (!stack.length) continue;
      const leaf = stack[stack.length - 1];
      self.set(leaf, (self.get(leaf) || 0) + w);
      for (const fi of new Set(stack))
        total.set(fi, (total.get(fi) || 0) + w);
    }
  }
  const label = fi => {
    const f = frames[fi] || {};
    return f.file ? `${f.name} (${f.file}:${f.line})` : (f.name || '?');
  };
  return [...self.entries()].sort((a, b) => b[1] - a[1]).slice(0, 12)
    .map(([fi, s]) =>
      `<tr><td><code>${esc(label(fi))}</code></td>` +
      `<td class="num">${fmt(s, 4)}</td>` +
      `<td class="num">${fmt(total.get(fi) || s, 4)}</td></tr>`).join('');
}
function runRows(runs) {
  const rows = (runs.runs || []).slice(-25).reverse();
  return rows.map(r =>
    `<tr><td><code>${esc(r.runId)}</code></td>` +
    `<td>${esc(r.workflow)}</td><td>${esc(r.tenant)}</td>` +
    `<td class="state-${esc(r.state)}">${esc(r.state)}</td>` +
    `<td class="num">${fmt(r.queuedWaitSeconds, 3)}</td>` +
    `<td>${esc(r.error || '')}</td></tr>`).join('');
}
function render(data) {
  document.getElementById('tiles').innerHTML = tiles(data.service || {});
  document.getElementById('slo-body').innerHTML = sloRows(data.slo || {});
  document.getElementById('tenant-body').innerHTML =
    tenantRows(data.tenants || {});
  document.getElementById('run-body').innerHTML = runRows(data.runs || {});
  document.getElementById('hot-body').innerHTML = hotRows(data.profile);
  const prof = ((data.profile || {}).ires || {});
  document.getElementById('profiler-line').textContent = prof.hz
    ? `sampling at ${prof.hz} Hz (${prof.mode}), `
      + `${prof.sampleCount} samples, `
      + `overhead ${fmt(prof.overheadSeconds, 3)}s`
    : 'profiler disabled';
  const active = ((data.slo || {}).activeAlarms || []);
  document.getElementById('alarm-line').innerHTML = active.length
    ? `<span class="bad">ALARMING: ${active.map(esc).join(', ')}</span>`
    : '<span class="ok">no active SLO alarms</span>';
}
async function poll() {
  try {
    const [service, slo, tenants, runs] = await Promise.all(
      ['/service', '/slo', '/tenants', '/runs'].map(
        p => fetch(p).then(r => r.json())));
    // the profile endpoint 404s when the profiler is off — fetch it
    // separately and tolerate failure
    let profile = null;
    try {
      const r = await fetch('/profile');
      if (r.ok) profile = await r.json();
    } catch (e) { /* keep the seed profile */ }
    render({service, slo, tenants, runs, profile});
    document.getElementById('freshness').textContent =
      'live, refreshed ' + new Date().toLocaleTimeString();
  } catch (err) {
    document.getElementById('freshness').textContent =
      'static snapshot (no live service reachable)';
  }
}
const seed = JSON.parse(
  document.getElementById('dashboard-data').textContent);
render(seed);
if (location.protocol.startsWith('http')) {
  poll();
  setInterval(poll, 3000);
}
"""


def render_dashboard(
    service: dict[str, Any],
    slo: dict[str, Any],
    tenants: dict[str, Any],
    runs: dict[str, Any],
    title: str = "IReS service dashboard",
    profile: dict[str, Any] | None = None,
) -> str:
    """The full self-contained dashboard document for one snapshot.

    ``profile`` is an optional speedscope document from the service's
    always-on profiler; when present it feeds the hot-functions panel.
    """
    snapshot = {"service": service, "slo": slo, "tenants": tenants,
                "runs": runs, "profile": profile}
    # </script> inside the data island would end it early; escape the slash
    data = json.dumps(snapshot).replace("</", "<\\/")
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{_html.escape(title)}</h1>"
        "<p class='meta' id='freshness'>embedded snapshot</p>"
        "<p id='alarm-line'></p>"
        "<div class='tiles' id='tiles'></div>"
        "<h2>Service-level objectives</h2>"
        "<table><thead><tr><th>SLO</th><th>kind</th>"
        "<th class='num'>target</th><th class='num'>compliance</th>"
        "<th class='num'>burn (short)</th><th class='num'>burn (long)</th>"
        "<th class='num'>events</th><th>state</th></tr></thead>"
        "<tbody id='slo-body'></tbody></table>"
        "<h2>Tenants</h2>"
        "<table><thead><tr><th>tenant</th><th class='num'>runs</th>"
        "<th class='num'>ok</th><th class='num'>failed</th>"
        "<th class='num'>core-seconds</th><th class='num'>queued wait (s)</th>"
        "<th class='num'>retries</th><th class='num'>replans</th>"
        "<th class='num'>journal bytes</th></tr></thead>"
        "<tbody id='tenant-body'></tbody></table>"
        "<h2>Hot functions (profiler)</h2>"
        "<p class='meta' id='profiler-line'></p>"
        "<table><thead><tr><th>function</th>"
        "<th class='num'>self (s)</th><th class='num'>total (s)</th>"
        "</tr></thead><tbody id='hot-body'></tbody></table>"
        "<h2>Recent runs</h2>"
        "<table><thead><tr><th>run</th><th>workflow</th><th>tenant</th>"
        "<th>state</th><th class='num'>queued wait (s)</th><th>error</th>"
        "</tr></thead><tbody id='run-body'></tbody></table>"
        "<script type='application/json' id='dashboard-data'>"
        + data
        + f"</script><script>{_SCRIPT}</script></body></html>"
    )
