"""Span-attributed statistical sampling profiler (DESIGN.md §14).

A dependency-free continuous profiler for the IReS runtime.  A daemon
thread walks :func:`sys._current_frames` at a configurable rate and
attributes every sample to the run / span that the sampled thread was
executing, using a cross-thread attribution registry fed by
``obs/context.py`` (run ids) and the tracer's span stack.

Design notes
------------
- **Attribution.**  ContextVars are invisible from a foreign thread, so
  :class:`_ThreadAttribution` keeps an explicit ``thread ident -> stack``
  map.  ``bind_run_id`` always publishes (cheap: one dict op per run);
  the tracer only publishes spans while at least one profiler is running
  (the lock-free ``active`` flag), because spans are orders of magnitude
  more frequent.
- **Overhead.**  One pass per tick: grab frames, snapshot attribution,
  unwind, append to a bounded ring under a single lock.  The ≤5% budget
  at the default service rate is enforced by
  ``benchmarks/bench_extension_profile.py``.
- **Formats.**  The on-disk format is speedscope-compatible JSON with an
  ``"ires"`` extension block; folded stacks and the self-contained HTML
  flamegraph are derived views.  ``validate_speedscope`` structurally
  checks documents without needing a jsonschema dependency.
"""

from __future__ import annotations

import html as _html
import json
import os
import sys
import threading
import time
import tracemalloc
from collections import OrderedDict, deque
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.analysis.runtime_check import make_lock, note_access, register_shared
from repro.obs.metrics import get_registry

__all__ = [
    "ATTRIBUTION",
    "AllocationTracker",
    "CPU",
    "DEFAULT_HZ",
    "Profile",
    "Sample",
    "SERVICE_HZ",
    "SamplingProfiler",
    "WALL",
    "flamegraph_html",
    "folded_from_speedscope",
    "self_times_from_speedscope",
    "validate_speedscope",
]

WALL = "wall"
CPU = "cpu"

#: Default rate for explicit recordings (``ires profile record``,
#: ``ires execute --profile``): high enough that short CI runs still
#: collect a useful number of samples.
DEFAULT_HZ = 199.0

#: Default rate for the always-on service profiler — the rate at which
#: the ≤5% overhead budget is enforced.
SERVICE_HZ = 19.0

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

_MAX_STACK_DEPTH = 128

#: (file basename, function name) pairs whose presence at the leaf of a
#: stack marks the thread as idle (blocked in a wait primitive); such
#: stacks are skipped unless ``include_idle`` is set.
_IDLE_LEAVES = frozenset({
    ("threading.py", "wait"),
    ("threading.py", "_wait_for_tstate_lock"),
    ("selectors.py", "select"),
    ("selectors.py", "_poll"),
    ("queue.py", "get"),
    ("queue.py", "put"),
    ("socket.py", "accept"),
    ("socketserver.py", "serve_forever"),
    ("base_events.py", "_run_once"),
    ("base_events.py", "run_forever"),
    ("thread.py", "_worker"),
    ("connection.py", "wait"),
    ("profiling.py", "_loop"),
})

_REGISTRY = get_registry()
_SAMPLES = _REGISTRY.counter(
    "ires_profiler_samples_total",
    help="Stack samples collected by the sampling profiler.",
    labels=("mode",))
_DROPPED = _REGISTRY.counter(
    "ires_profiler_dropped_total",
    help="Profiler samples dropped, by reason.",
    labels=("reason",))
_OVERHEAD = _REGISTRY.counter(
    "ires_profiler_overhead_seconds_total",
    help="Wall seconds the profiler spent collecting samples.")

# A frame is (function name, short file path, line number).
Frame = tuple[str, str, int]


def _short_path(path: str) -> str:
    """Collapse an absolute path to its last two components."""
    parts = path.replace("\\", "/").rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else path


class _ThreadAttribution:
    """Cross-thread run-id / span registry read by the sampler thread.

    ContextVars set inside worker threads cannot be read from the
    sampler thread, so ``bind_run_id`` and ``Tracer.span`` publish their
    state here keyed by thread ident.  Reads and writes are tiny
    critical sections; the sampler snapshots the whole map once per
    tick.
    """

    def __init__(self) -> None:
        self._lock = make_lock("profiler_attribution")
        # guarded-by: _lock
        self._runs: dict[int, list[str]] = {}
        # guarded-by: _lock
        self._spans: dict[int, list[tuple[str, str]]] = {}
        # guarded-by: _lock
        self._profilers = 0
        #: Lock-free fast-path flag: True while >=1 profiler is running.
        #: Written under ``_lock``; read without it (a stale read only
        #: means one span push is skipped or wasted, never corruption).
        self.active = False
        register_shared(self, "profiler_attribution", guard=self._lock)

    def push_run(self, run_id: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            note_access(self, "write")
            self._runs.setdefault(ident, []).append(run_id)

    def pop_run(self) -> None:
        ident = threading.get_ident()
        with self._lock:
            note_access(self, "write")
            stack = self._runs.get(ident)
            if stack:
                stack.pop()
                if not stack:
                    del self._runs[ident]

    def push_span(self, name: str, category: str) -> bool:
        """Publish a span for this thread; returns False when inactive.

        The caller must balance a True return with :meth:`pop_span`.
        """
        if not self.active:
            return False
        ident = threading.get_ident()
        with self._lock:
            note_access(self, "write")
            self._spans.setdefault(ident, []).append((name, category))
        return True

    def pop_span(self) -> None:
        ident = threading.get_ident()
        with self._lock:
            note_access(self, "write")
            stack = self._spans.get(ident)
            if stack:
                stack.pop()
                if not stack:
                    del self._spans[ident]

    def profiler_started(self) -> None:
        with self._lock:
            note_access(self, "write")
            self._profilers += 1
            self.active = True

    def profiler_stopped(self) -> None:
        with self._lock:
            note_access(self, "write")
            self._profilers = max(0, self._profilers - 1)
            if self._profilers == 0:
                self.active = False
                # Span stacks are only pushed while active; drop any
                # leftovers so a future profiler starts from a clean map.
                self._spans.clear()

    def snapshot(self) -> tuple[dict[int, str], dict[int, tuple[str, str]]]:
        """Return ``{ident: run_id}`` and ``{ident: (span, category)}``."""
        with self._lock:
            note_access(self, "read")
            runs = {i: s[-1] for i, s in self._runs.items() if s}
            spans = {i: s[-1] for i, s in self._spans.items() if s}
        return runs, spans


#: Process-wide singleton used by ``obs/context.py`` and the tracer.
ATTRIBUTION = _ThreadAttribution()


class Sample:
    """One stack sample from one thread at one tick."""

    __slots__ = ("wall_time", "thread_name", "run_id", "span", "category",
                 "frames", "weight")

    def __init__(self, wall_time: float, thread_name: str,
                 run_id: str | None, span: str | None, category: str | None,
                 frames: tuple[Frame, ...], weight: float) -> None:
        self.wall_time = wall_time
        self.thread_name = thread_name
        self.run_id = run_id
        self.span = span
        self.category = category
        self.frames = frames  # root-first
        self.weight = weight  # seconds represented by this sample


class Profile:
    """An immutable bag of samples plus recording metadata."""

    def __init__(self, samples: Sequence[Sample], *, mode: str, hz: float,
                 started_at: float, duration: float, overhead: float,
                 dropped: Mapping[str, int] | None = None,
                 allocations: Mapping[str, Any] | None = None) -> None:
        self.samples = tuple(samples)
        self.mode = mode
        self.hz = hz
        self.started_at = started_at
        self.duration = duration
        self.overhead = overhead
        self.dropped = dict(dropped or {})
        self.allocations = dict(allocations or {})

    # -- derived views -------------------------------------------------

    def filter_run(self, run_id: str) -> "Profile":
        """A new profile containing only samples for ``run_id``."""
        kept = [s for s in self.samples if s.run_id == run_id]
        return Profile(kept, mode=self.mode, hz=self.hz,
                       started_at=self.started_at, duration=self.duration,
                       overhead=self.overhead, dropped=self.dropped,
                       allocations=self.allocations)

    def folded(self) -> str:
        """Brendan-Gregg folded stacks: ``a;b;c <weight-ms>`` lines."""
        merged: dict[str, float] = {}
        for sample in self.samples:
            key = ";".join(f"{f[0]} ({f[1]}:{f[2]})" for f in sample.frames)
            merged[key] = merged.get(key, 0.0) + sample.weight
        lines = [f"{stack} {weight * 1000.0:.3f}"
                 for stack, weight in sorted(merged.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def self_seconds(self) -> dict[str, float]:
        """Self (leaf) seconds per function, ``name (file:line)`` keyed."""
        out: dict[str, float] = {}
        for sample in self.samples:
            if not sample.frames:
                continue
            f = sample.frames[-1]
            key = f"{f[0]} ({f[1]}:{f[2]})"
            out[key] = out.get(key, 0.0) + sample.weight
        return out

    def total_seconds(self) -> dict[str, float]:
        """Total seconds per function (counted once per stack)."""
        out: dict[str, float] = {}
        for sample in self.samples:
            seen = set()
            for f in sample.frames:
                key = f"{f[0]} ({f[1]}:{f[2]})"
                if key in seen:
                    continue
                seen.add(key)
                out[key] = out.get(key, 0.0) + sample.weight
        return out

    def hot_functions(self, limit: int = 15) -> list[dict[str, Any]]:
        """Top functions by self time, with total time alongside."""
        self_s = self.self_seconds()
        total_s = self.total_seconds()
        ranked = sorted(self_s.items(), key=lambda kv: -kv[1])[:limit]
        return [{"function": name,
                 "selfSeconds": round(secs, 6),
                 "totalSeconds": round(total_s.get(name, secs), 6)}
                for name, secs in ranked]

    def run_breakdown(self) -> dict[str, dict[str, Any]]:
        """Per-run sample counts and per-category / per-span self time."""
        runs: dict[str, dict[str, Any]] = {}
        for sample in self.samples:
            key = sample.run_id or "(unattributed)"
            entry = runs.setdefault(key, {
                "samples": 0,
                "selfSecondsByCategory": {},
                "selfSecondsBySpan": {},
            })
            entry["samples"] += 1
            if sample.category:
                cats = entry["selfSecondsByCategory"]
                cats[sample.category] = (
                    cats.get(sample.category, 0.0) + sample.weight)
            if sample.span:
                spans = entry["selfSecondsBySpan"]
                spans[sample.span] = spans.get(sample.span, 0.0) + sample.weight
        for entry in runs.values():
            for field in ("selfSecondsByCategory", "selfSecondsBySpan"):
                entry[field] = {k: round(v, 6)
                                for k, v in entry[field].items()}
        return runs

    def speedscope(self, *, name: str = "ires profile") -> dict[str, Any]:
        """Speedscope-compatible document with an ``ires`` extension."""
        frame_index: dict[Frame, int] = {}
        frames: list[dict[str, Any]] = []
        stacks: list[list[int]] = []
        weights: list[float] = []
        for sample in self.samples:
            stack = []
            for frame in sample.frames:
                idx = frame_index.get(frame)
                if idx is None:
                    idx = len(frames)
                    frame_index[frame] = idx
                    frames.append({"name": frame[0], "file": frame[1],
                                   "line": frame[2]})
                stack.append(idx)
            stacks.append(stack)
            weights.append(round(sample.weight, 9))
        end_value = round(sum(weights), 9)
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "activeProfileIndex": 0,
            "exporter": "ires-profiler",
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": end_value,
                "samples": stacks,
                "weights": weights,
            }],
            "ires": {
                "mode": self.mode,
                "hz": self.hz,
                "startedAt": self.started_at,
                "durationSeconds": round(self.duration, 6),
                "overheadSeconds": round(self.overhead, 6),
                "sampleCount": len(self.samples),
                "dropped": dict(self.dropped),
                "runs": self.run_breakdown(),
                "allocations": dict(self.allocations),
            },
        }

    def save(self, path: str, *, name: str = "ires profile") -> None:
        doc = self.speedscope(name=name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=None, separators=(",", ":"))
            fh.write("\n")


class SamplingProfiler:
    """Background statistical sampler over ``sys._current_frames``.

    ``start()`` spawns a daemon thread that ticks at ``hz``; each tick
    walks every thread's stack, attributes it via :data:`ATTRIBUTION`,
    and appends to a bounded ring.  ``snapshot()`` materialises a
    :class:`Profile` at any time; ``stop()`` returns the final one.
    """

    def __init__(self, hz: float = DEFAULT_HZ, *, mode: str = WALL,
                 max_samples: int = 200_000, include_idle: bool = False,
                 run_history: int = 64, run_samples_limit: int = 50_000,
                 track_allocations: bool = False) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        if mode not in (WALL, CPU):
            raise ValueError(f"mode must be {WALL!r} or {CPU!r}, got {mode!r}")
        self.hz = float(hz)
        self.mode = mode
        self.include_idle = include_idle
        self._interval = 1.0 / self.hz
        self._max_samples = max_samples
        self._run_history = run_history
        self._run_samples_limit = run_samples_limit
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = make_lock("profiler")
        # guarded-by: _lock
        self._ring: deque[Sample] = deque(maxlen=max_samples)
        # guarded-by: _lock
        self._by_run: OrderedDict[str, list[Sample]] = OrderedDict()
        # guarded-by: _lock
        self._dropped: dict[str, int] = {}
        # guarded-by: _lock
        self._overhead = 0.0
        # guarded-by: _lock
        self._collected = 0
        # guarded-by: _lock
        self._started_at = 0.0
        # guarded-by: _lock
        self._stopped_at: float | None = None
        self._alloc: AllocationTracker | None = (
            AllocationTracker() if track_allocations else None)
        register_shared(self, "profiler", guard=self._lock)

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def allocation_tracker(self) -> "AllocationTracker | None":
        """The span-boundary tracker when ``track_allocations`` is on.

        Register it as a tracer hook (``tracer.add_hook(...)``) so span
        finishes stamp ``allocNetBytes`` and feed the per-category table.
        """
        return self._alloc

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop_event.clear()
        with self._lock:
            note_access(self, "write")
            self._started_at = time.time()
            self._stopped_at = None
        ATTRIBUTION.profiler_started()
        if self._alloc is not None:
            self._alloc.start()
        self._thread = threading.Thread(
            target=self._loop, name="ires-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> Profile:
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=5.0)
            self._thread = None
            ATTRIBUTION.profiler_stopped()
        allocations = (
            self._alloc.stop() if self._alloc is not None else None)
        with self._lock:
            note_access(self, "write")
            if self._stopped_at is None:
                self._stopped_at = time.time()
        return self.snapshot(allocations=allocations)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- views ---------------------------------------------------------

    def snapshot(self, run_id: str | None = None,
                 allocations: Mapping[str, Any] | None = None) -> Profile:
        """Materialise a :class:`Profile` of what the ring holds now."""
        with self._lock:
            note_access(self, "read")
            if run_id is not None:
                samples: list[Sample] = list(self._by_run.get(run_id, ()))
            else:
                samples = list(self._ring)
            dropped = dict(self._dropped)
            overhead = self._overhead
            started = self._started_at
            stopped = self._stopped_at
        duration = (stopped if stopped is not None else time.time()) - started
        allocs = allocations
        if allocs is None and self._alloc is not None:
            allocs = self._alloc.summary()
        return Profile(samples, mode=self.mode, hz=self.hz,
                       started_at=started, duration=max(0.0, duration),
                       overhead=overhead, dropped=dropped,
                       allocations=allocs)

    def take_run(self, run_id: str) -> Profile:
        """Snapshot and release the per-run sample bucket for ``run_id``."""
        with self._lock:
            note_access(self, "write")
            samples = self._by_run.pop(run_id, [])
            dropped = dict(self._dropped)
            overhead = self._overhead
            started = self._started_at
        duration = time.time() - started
        return Profile(samples, mode=self.mode, hz=self.hz,
                       started_at=started, duration=max(0.0, duration),
                       overhead=overhead, dropped=dropped)

    def status(self) -> dict[str, Any]:
        with self._lock:
            note_access(self, "read")
            collected = self._collected
            ring_size = len(self._ring)
            dropped = dict(self._dropped)
            overhead = self._overhead
        return {
            "running": self.running,
            "mode": self.mode,
            "hz": self.hz,
            "samples": collected,
            "ringSize": ring_size,
            "dropped": dropped,
            "overheadSeconds": round(overhead, 6),
        }

    # -- sampler thread ------------------------------------------------

    def _loop(self) -> None:
        interval = self._interval
        next_tick = time.perf_counter() + interval
        last_cpu = time.process_time()
        while not self._stop_event.is_set():
            delay = next_tick - time.perf_counter()
            if delay > 0:
                if self._stop_event.wait(delay):
                    break
            else:
                # We are behind schedule; count overruns and resync so
                # a long GC pause does not trigger a burst of ticks.
                missed = int(-delay / interval)
                if missed > 0:
                    self._note_dropped("overrun", missed)
                    next_tick += missed * interval
            next_tick += interval
            tick_start = time.perf_counter()
            try:
                cpu_now = time.process_time()
                cpu_busy = (cpu_now - last_cpu) >= 0.1 * interval
                last_cpu = cpu_now
                if self.mode == CPU and not cpu_busy:
                    continue
                self._sample_once(tick_start)
            except Exception:
                # The conftest promotes uncaught worker-thread exceptions
                # to test failures; the sampler must never take the
                # process (or suite) down because one tick went wrong.
                self._note_dropped("error", 1)
            finally:
                elapsed = time.perf_counter() - tick_start
                with self._lock:
                    note_access(self, "write")
                    self._overhead += elapsed
                _OVERHEAD.inc(elapsed)

    def _sample_once(self, tick_start: float) -> None:
        my_ident = threading.get_ident()
        frames_by_ident = sys._current_frames()
        runs, spans = ATTRIBUTION.snapshot()
        names = {t.ident: t.name for t in threading.enumerate()
                 if t.ident is not None}
        now = time.time()
        weight = self._interval
        batch: list[Sample] = []
        for ident, frame in frames_by_ident.items():
            if ident == my_ident:
                continue
            stack = self._unwind(frame)
            if not stack:
                continue
            if not self.include_idle:
                leaf = stack[-1]
                base = leaf[1].rsplit("/", 1)[-1]
                if (base, leaf[0]) in _IDLE_LEAVES:
                    continue
            span, category = spans.get(ident, (None, None))
            batch.append(Sample(
                wall_time=now,
                thread_name=names.get(ident, f"thread-{ident}"),
                run_id=runs.get(ident),
                span=span,
                category=category,
                frames=tuple(stack),
                weight=weight,
            ))
        del frames_by_ident
        if not batch:
            return
        evicted = 0
        with self._lock:
            note_access(self, "write")
            for sample in batch:
                if len(self._ring) == self._ring.maxlen:
                    evicted += 1
                self._ring.append(sample)
                self._collected += 1
                if sample.run_id is not None:
                    bucket = self._by_run.get(sample.run_id)
                    if bucket is None:
                        bucket = []
                        self._by_run[sample.run_id] = bucket
                        while len(self._by_run) > self._run_history:
                            self._by_run.popitem(last=False)
                    if len(bucket) < self._run_samples_limit:
                        bucket.append(sample)
            if evicted:
                self._dropped["ring_full"] = (
                    self._dropped.get("ring_full", 0) + evicted)
        _SAMPLES.inc(len(batch), mode=self.mode)
        if evicted:
            _DROPPED.inc(evicted, reason="ring_full")

    def _note_dropped(self, reason: str, count: int) -> None:
        with self._lock:
            note_access(self, "write")
            self._dropped[reason] = self._dropped.get(reason, 0) + count
        _DROPPED.inc(count, reason=reason)

    @staticmethod
    def _unwind(frame: Any) -> list[Frame]:
        stack: list[Frame] = []
        depth = 0
        while frame is not None and depth < _MAX_STACK_DEPTH:
            code = frame.f_code
            stack.append((code.co_name, _short_path(code.co_filename),
                          frame.f_lineno))
            frame = frame.f_back
            depth += 1
        stack.reverse()  # root first
        return stack


class AllocationTracker:
    """Opt-in tracemalloc accounting at span boundaries.

    Installed as a tracer hook (``tracer.add_hook(tracker)``): on span
    start it records the current traced-memory figure, on span finish it
    stamps the net allocated bytes onto the span as ``allocNetBytes``
    and folds the delta into a per-category table.  ``summary()`` also
    reports the top allocation sites from a final tracemalloc snapshot.
    """

    def __init__(self, top: int = 10) -> None:
        self._top = top
        self._lock = make_lock("profiler_alloc")
        # guarded-by: _lock
        self._open_spans: dict[int, int] = {}
        # guarded-by: _lock
        self._by_category: dict[str, int] = {}
        # guarded-by: _lock
        self._started = False
        self._was_tracing = False
        register_shared(self, "profiler_alloc", guard=self._lock)

    def start(self) -> None:
        with self._lock:
            note_access(self, "write")
            if self._started:
                return
            self._started = True
            self._was_tracing = tracemalloc.is_tracing()
        if not self._was_tracing:
            tracemalloc.start()

    def stop(self) -> dict[str, Any]:
        summary = self.summary()
        with self._lock:
            note_access(self, "write")
            started = self._started
            self._started = False
            self._open_spans.clear()
        if started and not self._was_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        return summary

    # -- tracer hook interface ----------------------------------------

    def span_started(self, span: Any) -> None:
        if not tracemalloc.is_tracing():
            return
        current, _peak = tracemalloc.get_traced_memory()
        with self._lock:
            note_access(self, "write")
            if self._started:
                self._open_spans[id(span)] = current

    def span_finished(self, span: Any) -> None:
        if not tracemalloc.is_tracing():
            return
        current, _peak = tracemalloc.get_traced_memory()
        with self._lock:
            note_access(self, "write")
            baseline = self._open_spans.pop(id(span), None)
            if baseline is None:
                return
            net = current - baseline
            category = getattr(span, "category", None) or "uncategorized"
            self._by_category[category] = (
                self._by_category.get(category, 0) + net)
        try:
            span.attributes["allocNetBytes"] = net
        except Exception:
            pass

    def summary(self) -> dict[str, Any]:
        with self._lock:
            note_access(self, "read")
            by_category = dict(self._by_category)
            started = self._started
        top_sites: list[dict[str, Any]] = []
        if started and tracemalloc.is_tracing():
            snapshot = tracemalloc.take_snapshot()
            stats = snapshot.statistics("lineno")[:self._top]
            for stat in stats:
                frame = stat.traceback[0]
                top_sites.append({
                    "site": f"{_short_path(frame.filename)}:{frame.lineno}",
                    "sizeBytes": stat.size,
                    "count": stat.count,
                })
        return {
            "netBytesByCategory": by_category,
            "topSites": top_sites,
        }


# ---------------------------------------------------------------------------
# Module-level helpers over saved speedscope documents
# ---------------------------------------------------------------------------


def validate_speedscope(doc: Any) -> list[str]:
    """Structurally validate a speedscope document; return problems.

    A pure-stdlib stand-in for jsonschema validation against the
    speedscope file-format schema: checks the fields the speedscope app
    actually requires to load a sampled profile.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        problems.append(f"$schema != {SPEEDSCOPE_SCHEMA}")
    shared = doc.get("shared")
    if not isinstance(shared, dict) or not isinstance(
            shared.get("frames"), list):
        problems.append("shared.frames missing or not a list")
        frames: list[Any] = []
    else:
        frames = shared["frames"]
        for i, frame in enumerate(frames):
            if not isinstance(frame, dict) or "name" not in frame:
                problems.append(f"shared.frames[{i}] lacks a name")
                break
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        problems.append("profiles missing or empty")
        return problems
    for p, prof in enumerate(profiles):
        if not isinstance(prof, dict):
            problems.append(f"profiles[{p}] is not an object")
            continue
        if prof.get("type") != "sampled":
            problems.append(f"profiles[{p}].type != 'sampled'")
        for field in ("name", "unit", "startValue", "endValue",
                      "samples", "weights"):
            if field not in prof:
                problems.append(f"profiles[{p}].{field} missing")
        samples = prof.get("samples")
        weights = prof.get("weights")
        if isinstance(samples, list) and isinstance(weights, list):
            if len(samples) != len(weights):
                problems.append(
                    f"profiles[{p}]: {len(samples)} samples"
                    f" vs {len(weights)} weights")
            nframes = len(frames)
            for s, stack in enumerate(samples):
                if not isinstance(stack, list) or any(
                        not isinstance(i, int) or i < 0 or i >= nframes
                        for i in stack):
                    problems.append(
                        f"profiles[{p}].samples[{s}] has frame index"
                        " out of range")
                    break
    return problems


def _frame_label(frame: Mapping[str, Any]) -> str:
    name = frame.get("name", "?")
    file = frame.get("file")
    line = frame.get("line")
    if file:
        return f"{name} ({file}:{line})"
    return str(name)


def _iter_stacks(doc: Mapping[str, Any]) -> Iterator[tuple[list[str], float]]:
    frames = [_frame_label(f) for f in doc.get("shared", {}).get("frames", [])]
    for prof in doc.get("profiles", []):
        samples = prof.get("samples", [])
        weights = prof.get("weights", [])
        for stack, weight in zip(samples, weights):
            yield [frames[i] for i in stack], float(weight)


def folded_from_speedscope(doc: Mapping[str, Any]) -> str:
    """Recover folded stacks from a saved speedscope document."""
    merged: dict[str, float] = {}
    for labels, weight in _iter_stacks(doc):
        key = ";".join(labels)
        merged[key] = merged.get(key, 0.0) + weight
    lines = [f"{stack} {weight * 1000.0:.3f}"
             for stack, weight in sorted(merged.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def self_times_from_speedscope(
        doc: Mapping[str, Any]) -> dict[str, dict[str, float]]:
    """Per-run per-category self seconds from the ``ires`` extension.

    Keyed ``{run_id: {category: seconds}}`` — the shape consumed by
    ``summarize_spans(..., self_times=...)`` and ``build_timeline``.
    """
    out: dict[str, dict[str, float]] = {}
    runs = doc.get("ires", {}).get("runs", {})
    if not isinstance(runs, Mapping):
        return out
    for run_id, entry in runs.items():
        cats = entry.get("selfSecondsByCategory", {})
        if isinstance(cats, Mapping):
            out[str(run_id)] = {str(k): float(v) for k, v in cats.items()}
    return out


def span_self_times_from_speedscope(
        doc: Mapping[str, Any]) -> dict[str, dict[str, float]]:
    """Per-run per-span-name self seconds from the ``ires`` extension."""
    out: dict[str, dict[str, float]] = {}
    runs = doc.get("ires", {}).get("runs", {})
    if not isinstance(runs, Mapping):
        return out
    for run_id, entry in runs.items():
        spans = entry.get("selfSecondsBySpan", {})
        if isinstance(spans, Mapping):
            out[str(run_id)] = {str(k): float(v) for k, v in spans.items()}
    return out


def hot_functions_from_speedscope(
        doc: Mapping[str, Any], limit: int = 15) -> list[dict[str, Any]]:
    """Top functions by self (leaf) time from a saved document."""
    self_s: dict[str, float] = {}
    total_s: dict[str, float] = {}
    for labels, weight in _iter_stacks(doc):
        if not labels:
            continue
        leaf = labels[-1]
        self_s[leaf] = self_s.get(leaf, 0.0) + weight
        for label in set(labels):
            total_s[label] = total_s.get(label, 0.0) + weight
    ranked = sorted(self_s.items(), key=lambda kv: -kv[1])[:limit]
    return [{"function": name,
             "selfSeconds": round(secs, 6),
             "totalSeconds": round(total_s.get(name, secs), 6)}
            for name, secs in ranked]


def diff_speedscope(base: Mapping[str, Any], other: Mapping[str, Any],
                    limit: int = 20) -> list[dict[str, Any]]:
    """Self-time deltas (other - base) per function, largest |delta| first."""

    def _self(doc: Mapping[str, Any]) -> dict[str, float]:
        out: dict[str, float] = {}
        for labels, weight in _iter_stacks(doc):
            if labels:
                out[labels[-1]] = out.get(labels[-1], 0.0) + weight
        return out

    a, b = _self(base), _self(other)
    rows = []
    for name in set(a) | set(b):
        delta = b.get(name, 0.0) - a.get(name, 0.0)
        rows.append({"function": name,
                     "baseSeconds": round(a.get(name, 0.0), 6),
                     "otherSeconds": round(b.get(name, 0.0), 6),
                     "deltaSeconds": round(delta, 6)})
    rows.sort(key=lambda r: -abs(r["deltaSeconds"]))
    return rows[:limit]


# ---------------------------------------------------------------------------
# Flamegraph HTML (self-contained, no external assets — dashboard.py idiom)
# ---------------------------------------------------------------------------


def _merge_tree(doc: Mapping[str, Any]) -> dict[str, Any]:
    root: dict[str, Any] = {"name": "all", "value": 0.0, "children": {}}
    for labels, weight in _iter_stacks(doc):
        root["value"] += weight
        node = root
        for label in labels:
            child = node["children"].get(label)
            if child is None:
                child = {"name": label, "value": 0.0, "children": {}}
                node["children"][label] = child
            child["value"] += weight
            node = child

    def _finish(node: dict[str, Any]) -> dict[str, Any]:
        children = [_finish(c) for c in node["children"].values()]
        children.sort(key=lambda c: -c["value"])
        return {"name": node["name"], "value": round(node["value"], 6),
                "children": children}

    return _finish(root)


_FLAME_CSS = """
  body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 0;
         background: #10141a; color: #d8dee9; }
  header { padding: 12px 20px; border-bottom: 1px solid #2a3038; }
  header h1 { font-size: 16px; margin: 0 0 4px; }
  header .meta { font-size: 12px; color: #7b8794; }
  #flame { margin: 12px 20px; }
  .frame { position: absolute; box-sizing: border-box; height: 18px;
           overflow: hidden; white-space: nowrap; font-size: 11px;
           line-height: 18px; padding: 0 3px; cursor: pointer;
           border-radius: 2px; border: 1px solid #10141a; color: #1c2128; }
  .frame:hover { filter: brightness(1.15); }
  #detail { padding: 6px 20px; font-size: 12px; color: #a3b1bf;
            min-height: 18px; }
"""

_FLAME_JS = """
  const data = JSON.parse(
      document.getElementById('flame-data').textContent);
  const container = document.getElementById('flame');
  const detail = document.getElementById('detail');
  const palette = t => `hsl(${20 + 35 * t}, 75%, ${62 - 12 * t}%)`;
  let zoomed = data.tree;

  function depthOf(node) {
    let d = 1;
    for (const c of node.children) d = Math.max(d, 1 + depthOf(c));
    return d;
  }

  function render() {
    container.innerHTML = '';
    const width = container.clientWidth || 960;
    const total = zoomed.value || 1;
    container.style.position = 'relative';
    container.style.height = (depthOf(zoomed) * 19 + 4) + 'px';
    const walk = (node, x, depth) => {
      const w = node.value / total * width;
      if (w < 1.2) return;
      const div = document.createElement('div');
      div.className = 'frame';
      div.style.left = x + 'px';
      div.style.top = (depth * 19) + 'px';
      div.style.width = Math.max(1, w - 1) + 'px';
      div.style.background = palette((node.name.length % 13) / 13);
      div.textContent = node.name;
      div.title = `${node.name} — ${node.value.toFixed(4)}s`
          + ` (${(100 * node.value / (data.tree.value || 1)).toFixed(1)}%)`;
      div.onclick = (ev) => { ev.stopPropagation(); zoomed = node; render(); };
      div.onmouseenter = () => { detail.textContent = div.title; };
      container.appendChild(div);
      let cx = x;
      for (const child of node.children) {
        walk(child, cx, depth + 1);
        cx += child.value / total * width;
      }
    };
    walk(zoomed, 0, 0);
  }
  document.body.onclick = () => { zoomed = data.tree; render(); };
  window.onresize = render;
  render();
"""


def flamegraph_html(doc: Mapping[str, Any], *,
                    title: str = "IReS flamegraph") -> str:
    """Render a saved speedscope document as a standalone HTML page."""
    tree = _merge_tree(doc)
    meta = doc.get("ires", {})
    payload = {"tree": tree}
    island = json.dumps(payload, separators=(",", ":")).replace("</", "<\\/")
    bits = [
        f"mode={meta.get('mode', '?')}",
        f"hz={meta.get('hz', '?')}",
        f"samples={meta.get('sampleCount', '?')}",
        f"duration={meta.get('durationSeconds', '?')}s",
        f"overhead={meta.get('overheadSeconds', '?')}s",
    ]
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_html.escape(title)}</title>
<style>{_FLAME_CSS}</style>
</head>
<body>
<header>
  <h1>{_html.escape(title)}</h1>
  <div class="meta">{_html.escape(" · ".join(bits))}</div>
</header>
<div id="detail">click a frame to zoom; click the background to reset</div>
<div id="flame"></div>
<script type="application/json" id="flame-data">{island}</script>
<script>{_FLAME_JS}</script>
</body>
</html>
"""


def load_profile(path: str) -> dict[str, Any]:
    """Load and structurally validate a saved profile document."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    problems = validate_speedscope(doc)
    if problems:
        raise ValueError(
            f"{path} is not a valid speedscope document: {problems[0]}")
    return doc


def find_profile_for_trace(trace_path: str) -> str | None:
    """Locate ``<trace>.profile.json`` next to a trace file, if present."""
    base, _ext = os.path.splitext(trace_path)
    candidate = base + ".profile.json"
    return candidate if os.path.exists(candidate) else None
