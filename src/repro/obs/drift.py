"""Model-drift detection over the prediction-accuracy ledger.

The Fig 16.b scenario of the paper — an engine's hardware changes under a
trained model (HDD upgraded to SSD), so predictions that used to be within
a few percent suddenly miss by a factor — is invisible without a monitor
on the ledger's rolling error.  :class:`DriftDetector` subscribes to an
:class:`~repro.obs.accuracy.AccuracyLedger` and raises a typed
:class:`DriftAlarm` whenever a pair's EWMA absolute relative error crosses
the configured threshold.  Alarms funnel into the structured log ring
(logger ``drift``, event ``drift_alarm``) and the
``ires_model_drift_alarms_total{operator,engine}`` counter, and can
optionally trigger an early, windowed refit through a
:class:`~repro.core.refinement.ModelRefiner` plus a replan hint that the
executor consumes between steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.obs.accuracy import AccuracyLedger, LedgerEntry, PairStats
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:  # no runtime import: obs sits below core in the layering
    from repro.core.refinement import ModelRefiner

_LOG = get_logger("drift")
_ALARMS = REGISTRY.counter(
    "ires_model_drift_alarms_total",
    "Drift alarms raised per (operator, engine) pair",
    labels=("operator", "engine"),
)
_REFITS = REGISTRY.counter(
    "ires_model_drift_refits_total",
    "Early refits triggered by drift alarms",
    labels=("operator", "engine"),
)


@dataclass(frozen=True)
class DriftAlarm:
    """One threshold crossing of a pair's EWMA prediction error."""

    operator: str
    engine: str
    ewma_error: float    #: EWMA absolute relative error at alarm time
    threshold: float
    samples: int         #: pair sample count at alarm time
    run_id: str          #: run whose step tipped the EWMA over
    at: float            #: simulated clock of that step
    refit_triggered: bool = False

    def to_dict(self) -> dict:
        """JSON-able representation (REST / report payloads)."""
        return {
            "operator": self.operator,
            "engine": self.engine,
            "ewmaError": self.ewma_error,
            "threshold": self.threshold,
            "samples": self.samples,
            "run_id": self.run_id,
            "at": self.at,
            "refitTriggered": self.refit_triggered,
        }


#: alarm callback signature for external subscribers
AlarmHook = Callable[[DriftAlarm], None]


class DriftDetector:
    """Watches ledger statistics and raises :class:`DriftAlarm` events.

    Parameters
    ----------
    threshold:
        EWMA absolute relative error above which a pair is drifting.
    min_samples:
        Ignore pairs with fewer ledger samples (EWMA is noise at n=1).
    cooldown:
        After alarming on a pair, skip that many further samples of the
        same pair before it may alarm again — refits need fresh actuals
        to pull the EWMA back down, and re-alarming on every step of a
        known-bad pair is noise.
    refit:
        When True and a :class:`ModelRefiner` is attached, an alarm
        triggers an immediate ``refit_now(operator, engine,
        window=refit_window)``.
    refit_window:
        Number of newest monitoring records to train the early refit on
        (None = all records; a window biases the model to post-drift
        reality, which is the point).
    replan_hint:
        When True, an alarm also sets a hint the executor may consume
        (:meth:`take_replan_hint`) to re-plan the remaining steps.
    """

    def __init__(self, threshold: float = 0.5, min_samples: int = 3,
                 cooldown: int = 5, refit: bool = True,
                 refit_window: int | None = None,
                 replan_hint: bool = False) -> None:
        self.threshold = threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.refit = refit
        self.refit_window = refit_window
        self.replan_hint = replan_hint
        self.refiner: "ModelRefiner | None" = None
        self.alarms: list[DriftAlarm] = []
        self.hooks: list[AlarmHook] = []
        self._cooldown_left: dict[tuple[str, str], int] = {}
        self._pending_replan = False

    def attach(self, ledger: AccuracyLedger) -> "DriftDetector":
        """Subscribe to a ledger; returns self for chaining."""
        ledger.listeners.append(self.observe)
        return self

    # -- listener ------------------------------------------------------------
    def observe(self, entry: LedgerEntry, stats: PairStats) -> None:
        """Ledger listener: check one freshly folded entry's pair."""
        if not entry.success:
            return
        key = (entry.operator, entry.engine)
        left = self._cooldown_left.get(key, 0)
        if left > 0:
            self._cooldown_left[key] = left - 1
            return
        if stats.count < self.min_samples:
            return
        if stats.ewma_error <= self.threshold:
            return
        self._raise_alarm(entry, stats)

    def _raise_alarm(self, entry: LedgerEntry, stats: PairStats) -> None:
        refit_done = False
        if self.refit and self.refiner is not None:
            refit_done = bool(self.refiner.refit_now(
                entry.operator, entry.engine, window=self.refit_window))
            if refit_done:
                _REFITS.inc(operator=entry.operator, engine=entry.engine)
        alarm = DriftAlarm(
            operator=entry.operator,
            engine=entry.engine,
            ewma_error=stats.ewma_error,
            threshold=self.threshold,
            samples=stats.count,
            run_id=entry.run_id,
            at=entry.at,
            refit_triggered=refit_done,
        )
        self.alarms.append(alarm)
        self._cooldown_left[(entry.operator, entry.engine)] = self.cooldown
        if self.replan_hint:
            self._pending_replan = True
        _ALARMS.inc(operator=entry.operator, engine=entry.engine)
        _LOG.warning(
            "drift_alarm",
            operator=entry.operator,
            engine=entry.engine,
            ewma_error=round(stats.ewma_error, 6),
            threshold=self.threshold,
            samples=stats.count,
            refit_triggered=refit_done,
        )
        for hook in self.hooks:
            hook(alarm)

    # -- executor integration ------------------------------------------------
    def take_replan_hint(self) -> bool:
        """Consume the pending replan hint (True at most once per alarm)."""
        if self._pending_replan:
            self._pending_replan = False
            return True
        return False

    def alarms_for(self, operator: str, engine: str) -> list[DriftAlarm]:
        """Alarms of one pair, oldest first."""
        return [a for a in self.alarms
                if a.operator == operator and a.engine == engine]
