"""Ensemble regressors: bagging (Breiman 1996) and random subspace (Ho 1998)."""

from __future__ import annotations

import numpy as np

from repro.models.base import Model
from repro.models.tree import RegressionTree


class Bagging(Model):
    """Bootstrap-aggregated regression trees (WEKA ``Bagging``)."""

    standardize = False

    def __init__(
        self, n_estimators: int = 20, max_depth: int = 8, seed: int = 13
    ) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self._trees: list[RegressionTree] = []

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self._trees = []
        for i in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = RegressionTree(max_depth=self.max_depth, seed=self.seed + i)
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        preds = np.stack([t.predict(X) for t in self._trees])
        return preds.mean(axis=0)


class RandomSubspace(Model):
    """Random-subspace decision forest (WEKA ``RandomSubSpace``).

    Each tree is trained on a random subset of the features (default half of
    them, at least one), then predictions are averaged.
    """

    standardize = False

    def __init__(
        self,
        n_estimators: int = 20,
        subspace_fraction: float = 0.5,
        max_depth: int = 8,
        seed: int = 17,
    ) -> None:
        super().__init__()
        if not 0.0 < subspace_fraction <= 1.0:
            raise ValueError("subspace_fraction must be in (0, 1]")
        self.n_estimators = n_estimators
        self.subspace_fraction = subspace_fraction
        self.max_depth = max_depth
        self.seed = seed
        self._trees: list[RegressionTree] = []
        self._subspaces: list[np.ndarray] = []

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        d = X.shape[1]
        k = max(1, int(round(self.subspace_fraction * d)))
        self._trees = []
        self._subspaces = []
        for i in range(self.n_estimators):
            features = np.sort(rng.choice(d, size=k, replace=False))
            tree = RegressionTree(max_depth=self.max_depth, seed=self.seed + i)
            tree.fit(X[:, features], y)
            self._trees.append(tree)
            self._subspaces.append(features)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        preds = np.stack(
            [t.predict(X[:, f]) for t, f in zip(self._trees, self._subspaces)]
        )
        return preds.mean(axis=0)
