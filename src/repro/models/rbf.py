"""Radial basis function network (Broomhead & Lowe)."""

from __future__ import annotations

import numpy as np

from repro.models.base import Model
from repro.models.gaussian_process import rbf_kernel


def _kmeans_centers(
    X: np.ndarray, k: int, rng: np.random.Generator, iters: int = 25
) -> np.ndarray:
    """Lightweight k-means used only to place RBF centers."""
    n = X.shape[0]
    centers = X[rng.choice(n, size=k, replace=False)].copy()
    for _ in range(iters):
        d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        assign = d2.argmin(axis=1)
        moved = False
        for j in range(k):
            members = X[assign == j]
            if len(members):
                new_center = members.mean(axis=0)
                if not np.allclose(new_center, centers[j]):
                    centers[j] = new_center
                    moved = True
        if not moved:
            break
    return centers


class RBFNetwork(Model):
    """RBF network (WEKA ``RBFNetwork``): k-means centers + ridge output layer."""

    def __init__(self, n_centers: int = 10, ridge: float = 1e-3, seed: int = 5) -> None:
        super().__init__()
        self.n_centers = n_centers
        self.ridge = ridge
        self.seed = seed
        self._centers: np.ndarray | None = None
        self._width = 1.0
        self._coef: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        k = min(self.n_centers, X.shape[0])
        self._centers = _kmeans_centers(X, k, rng)
        # Width = average inter-center distance (classic heuristic).
        if k > 1:
            d2 = ((self._centers[:, None, :] - self._centers[None, :, :]) ** 2).sum(-1)
            self._width = float(np.sqrt(d2[d2 > 0].mean())) or 1.0
        else:
            self._width = 1.0
        Phi = rbf_kernel(X, self._centers, self._width)
        Phi = np.hstack([Phi, np.ones((Phi.shape[0], 1))])
        A = Phi.T @ Phi + self.ridge * np.eye(Phi.shape[1])
        self._coef = np.linalg.solve(A, Phi.T @ y)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        Phi = rbf_kernel(X, self._centers, self._width)
        Phi = np.hstack([Phi, np.ones((Phi.shape[0], 1))])
        return Phi @ self._coef
