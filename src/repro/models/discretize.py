"""Regression by discretization (WEKA ``RegressionByDiscretization``)."""

from __future__ import annotations

import numpy as np

from repro.models.base import Model
from repro.models.tree import RegressionTree


class RegressionByDiscretization(Model):
    """Discretize the target into equal-frequency bins, classify, predict bin means.

    WEKA's scheme wraps a classifier over a discretized target domain; here
    the classifier is a regression tree fitted to bin indices, whose rounded
    prediction selects a bin whose mean target value is returned.
    """

    standardize = False

    def __init__(self, n_bins: int = 10, max_depth: int = 8, seed: int = 19) -> None:
        super().__init__()
        self.n_bins = n_bins
        self.max_depth = max_depth
        self.seed = seed
        self._bin_means: np.ndarray | None = None
        self._classifier: RegressionTree | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_bins = min(self.n_bins, max(1, len(np.unique(y))))
        # Equal-frequency bin edges over y.
        quantiles = np.linspace(0, 100, n_bins + 1)
        edges = np.percentile(y, quantiles)
        edges = np.unique(edges)
        if len(edges) < 2:
            labels = np.zeros(len(y), dtype=int)
            self._bin_means = np.array([float(y.mean())])
        else:
            labels = np.clip(np.searchsorted(edges, y, side="right") - 1, 0, len(edges) - 2)
            self._bin_means = np.array(
                [
                    y[labels == b].mean() if (labels == b).any() else y.mean()
                    for b in range(len(edges) - 1)
                ]
            )
        self._classifier = RegressionTree(max_depth=self.max_depth, seed=self.seed)
        self._classifier.fit(X, labels.astype(float))

    def _predict(self, X: np.ndarray) -> np.ndarray:
        raw = self._classifier.predict(X)
        bins = np.clip(np.rint(raw).astype(int), 0, len(self._bin_means) - 1)
        return self._bin_means[bins]
