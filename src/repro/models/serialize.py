"""Model persistence: save and load fitted estimators without pickle.

The paper keeps the trained cost/performance models "stored and updated in
an IReS library" so they survive restarts and are shared across planner
invocations.  This module serializes every model of the zoo to a plain
``dict`` of JSON-able values + numpy arrays (written with ``np.savez``),
avoiding pickle's code-execution hazards — a deliberate choice for a
service that loads model files from disk.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.models.base import Model
from repro.models.discretize import RegressionByDiscretization
from repro.models.ensemble import Bagging, RandomSubspace
from repro.models.gaussian_process import GaussianProcess
from repro.models.linear import LeastMedianSquares, LinearRegression
from repro.models.mlp import MultilayerPerceptron
from repro.models.rbf import RBFNetwork
from repro.models.tree import RegressionTree, _Node

MODEL_CLASSES = {
    cls.__name__: cls
    for cls in (
        LinearRegression, LeastMedianSquares, GaussianProcess,
        MultilayerPerceptron, RBFNetwork, RegressionTree, Bagging,
        RandomSubspace, RegressionByDiscretization,
    )
}


class SerializationError(ValueError):
    """The model cannot be (de)serialized."""


# -- regression trees flatten to parallel arrays ---------------------------

def _flatten_tree(root: _Node) -> dict[str, np.ndarray]:
    features, thresholds, values, lefts, rights = [], [], [], [], []

    def visit(node: _Node) -> int:
        index = len(features)
        features.append(node.feature)
        thresholds.append(node.threshold)
        values.append(node.value)
        lefts.append(-1)
        rights.append(-1)
        if not node.is_leaf:
            lefts[index] = visit(node.left)
            rights[index] = visit(node.right)
        return index

    visit(root)
    return {
        "feature": np.asarray(features, dtype=np.int64),
        "threshold": np.asarray(thresholds, dtype=float),
        "value": np.asarray(values, dtype=float),
        "left": np.asarray(lefts, dtype=np.int64),
        "right": np.asarray(rights, dtype=np.int64),
    }


def _unflatten_tree(arrays: dict[str, np.ndarray]) -> _Node:
    def build(index: int) -> _Node:
        node = _Node(
            feature=int(arrays["feature"][index]),
            threshold=float(arrays["threshold"][index]),
            value=float(arrays["value"][index]),
        )
        if arrays["left"][index] >= 0:
            node.left = build(int(arrays["left"][index]))
            node.right = build(int(arrays["right"][index]))
        return node

    return build(0)


# -- per-class state extraction ------------------------------------------------

def _model_state(model: Model) -> dict:
    """Class-specific fitted state as a flat {key: array-or-scalar} dict."""
    if isinstance(model, (LinearRegression, LeastMedianSquares)):
        return {"coef_": model.coef_}
    if isinstance(model, GaussianProcess):
        return {"X": model._X, "alpha": model._alpha, "L": model._L,
                "ls": model._ls, "noise": model.noise}
    if isinstance(model, MultilayerPerceptron):
        state: dict = {"n_layers": len(model._weights)}
        for i, (W, b) in enumerate(zip(model._weights, model._biases)):
            state[f"W{i}"] = W
            state[f"b{i}"] = b
        return state
    if isinstance(model, RBFNetwork):
        return {"centers": model._centers, "width": model._width,
                "coef": model._coef}
    if isinstance(model, RegressionTree):
        return {f"tree/{k}": v for k, v in _flatten_tree(model._root).items()}
    if isinstance(model, (Bagging, RandomSubspace)):
        state = {"n_trees": len(model._trees)}
        for i, tree in enumerate(model._trees):
            for key, value in _flatten_tree(tree._root).items():
                state[f"tree{i}/{key}"] = value
            state[f"tree{i}/n_features"] = tree.n_features_
        if isinstance(model, RandomSubspace):
            for i, features in enumerate(model._subspaces):
                state[f"subspace{i}"] = features
        return state
    if isinstance(model, RegressionByDiscretization):
        state = {"bin_means": model._bin_means,
                 "classifier/n_features": model._classifier.n_features_}
        for key, value in _flatten_tree(model._classifier._root).items():
            state[f"classifier/{key}"] = value
        return state
    raise SerializationError(f"cannot serialize {type(model).__name__}")


def _restore_state(model: Model, state: dict) -> None:
    if isinstance(model, (LinearRegression, LeastMedianSquares)):
        model.coef_ = state["coef_"]
    elif isinstance(model, GaussianProcess):
        model._X = state["X"]
        model._alpha = state["alpha"]
        model._L = state["L"]
        model._ls = float(state["ls"])
        model.noise = float(state["noise"])
    elif isinstance(model, MultilayerPerceptron):
        n = int(state["n_layers"])
        model._weights = [state[f"W{i}"] for i in range(n)]
        model._biases = [state[f"b{i}"] for i in range(n)]
    elif isinstance(model, RBFNetwork):
        model._centers = state["centers"]
        model._width = float(state["width"])
        model._coef = state["coef"]
    elif isinstance(model, RegressionTree):
        arrays = {k.split("/", 1)[1]: v for k, v in state.items()
                  if k.startswith("tree/")}
        model._root = _unflatten_tree(arrays)
    elif isinstance(model, (Bagging, RandomSubspace)):
        n = int(state["n_trees"])
        model._trees = []
        for i in range(n):
            prefix = f"tree{i}/"
            arrays = {k[len(prefix):]: v for k, v in state.items()
                      if k.startswith(prefix) and not k.endswith("n_features")}
            tree = RegressionTree(max_depth=model.max_depth)
            tree._root = _unflatten_tree(arrays)
            tree._fitted = True
            tree.n_features_ = int(state[f"tree{i}/n_features"])
            model._trees.append(tree)
        if isinstance(model, RandomSubspace):
            model._subspaces = [state[f"subspace{i}"] for i in range(n)]
    elif isinstance(model, RegressionByDiscretization):
        model._bin_means = state["bin_means"]
        arrays = {k.split("/", 1)[1]: v for k, v in state.items()
                  if k.startswith("classifier/") and not k.endswith("n_features")}
        classifier = RegressionTree(max_depth=model.max_depth)
        classifier._root = _unflatten_tree(arrays)
        classifier._fitted = True
        classifier.n_features_ = int(state["classifier/n_features"])
        model._classifier = classifier
    else:
        raise SerializationError(f"cannot restore {type(model).__name__}")


# -- public API -----------------------------------------------------------

def save_model(model: Model, path) -> None:
    """Persist a fitted model to a ``.npz`` file."""
    if not model._fitted:
        raise SerializationError("cannot save an unfitted model")
    payload: dict = {
        "__class__": np.array(type(model).__name__),
        "__n_features__": np.array(model.n_features_ if model.n_features_
                                   is not None else -1),
        "__standardize__": np.array(int(model.standardize)),
    }
    if model.standardize:
        payload["__x_mean__"] = model._x_mean
        payload["__x_std__"] = model._x_std
        payload["__y_mean__"] = np.array(model._y_mean)
        payload["__y_std__"] = np.array(model._y_std)
    for key, value in _model_state(model).items():
        payload[f"state/{key}"] = np.asarray(value)
    np.savez(Path(path), **payload)


def load_model(path) -> Model:
    """Load a model saved by :func:`save_model`."""
    with np.load(Path(path), allow_pickle=False) as data:
        class_name = str(data["__class__"])
        cls = MODEL_CLASSES.get(class_name)
        if cls is None:
            raise SerializationError(f"unknown model class {class_name!r}")
        model = cls()
        n_features = int(data["__n_features__"])
        model.n_features_ = n_features if n_features >= 0 else None
        if int(data["__standardize__"]):
            model._x_mean = data["__x_mean__"]
            model._x_std = data["__x_std__"]
            model._y_mean = float(data["__y_mean__"])
            model._y_std = float(data["__y_std__"])
        state = {key[len("state/"):]: data[key]
                 for key in data.files if key.startswith("state/")}
        _restore_state(model, state)
        model._fitted = True
        return model
