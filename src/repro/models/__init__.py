"""Regression model zoo used by the IReS profiler/modeler.

The paper delegates operator performance modeling to WEKA and lists the
approximation techniques it uses (D3.3 §2.2.1).  This package provides
from-scratch numpy implementations of each of them:

- :class:`GaussianProcess` — GP regression with an RBF kernel.
- :class:`MultilayerPerceptron` — a feed-forward neural network.
- :class:`LeastMedianSquares` — robust linear regression (Rousseeuw).
- :class:`Bagging` — bootstrap-aggregated regression trees (Breiman).
- :class:`RandomSubspace` — trees over random feature subsets (Ho).
- :class:`RegressionByDiscretization` — classify into y-bins, predict means.
- :class:`RBFNetwork` — radial basis function network (Broomhead & Lowe).

Plus the plain :class:`LinearRegression` baseline and the cross-validation
machinery (:func:`cross_val_score`, :func:`select_best_model`) the paper uses
to "maintain the model that best fits the available data".
"""

from repro.models.base import Model, UserFunction
from repro.models.linear import LeastMedianSquares, LinearRegression
from repro.models.gaussian_process import GaussianProcess
from repro.models.mlp import MultilayerPerceptron
from repro.models.rbf import RBFNetwork
from repro.models.tree import RegressionTree
from repro.models.ensemble import Bagging, RandomSubspace
from repro.models.discretize import RegressionByDiscretization
from repro.models.validation import (
    KFold,
    cross_val_score,
    default_model_zoo,
    fast_model_zoo,
    rmse,
    select_best_model,
)

__all__ = [
    "Model",
    "UserFunction",
    "LinearRegression",
    "LeastMedianSquares",
    "GaussianProcess",
    "MultilayerPerceptron",
    "RBFNetwork",
    "RegressionTree",
    "Bagging",
    "RandomSubspace",
    "RegressionByDiscretization",
    "KFold",
    "cross_val_score",
    "default_model_zoo",
    "fast_model_zoo",
    "rmse",
    "select_best_model",
]
