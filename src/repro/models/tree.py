"""CART-style regression tree, the base learner for the ensemble models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import Model


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split."""
        return self.left is None


class RegressionTree(Model):
    """Binary regression tree grown by variance reduction.

    ``max_features`` restricts the features examined per split (used by the
    random-subspace and bagging ensembles); ``None`` means all features.
    """

    standardize = False

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        seed: int = 3,
    ) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, y, depth=0)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        n, d = X.shape
        if depth >= self.max_depth or n < 2 * self.min_samples_leaf or np.ptp(y) == 0:
            return node
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features, replace=False)
        best = self._best_split(X, y, features)
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> tuple[int, float] | None:
        n = len(y)
        parent_sse = float(((y - y.mean()) ** 2).sum())
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        for f in features:
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            # Prefix sums let us evaluate every split point in O(n).
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys * ys)
            total, total2 = csum[-1], csum2[-1]
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue
                left_sse = csum2[i - 1] - csum[i - 1] ** 2 / i
                right_n = n - i
                if right_n == 0:
                    continue
                right_sum = total - csum[i - 1]
                right_sse = (total2 - csum2[i - 1]) - right_sum**2 / right_n
                gain = parent_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    threshold = (xs[i - 1] + xs[min(i, n - 1)]) / 2.0
                    best = (int(f), float(threshold))
        return best

    def _predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the grown tree (useful in tests)."""

        def _depth(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)
