"""Gaussian-process regression with an RBF kernel."""

from __future__ import annotations

import numpy as np

from repro.models.base import Model


def rbf_kernel(A: np.ndarray, B: np.ndarray, length_scale: float) -> np.ndarray:
    """Squared-exponential kernel matrix between row sets ``A`` and ``B``."""
    a2 = (A * A).sum(axis=1)[:, None]
    b2 = (B * B).sum(axis=1)[None, :]
    d2 = np.maximum(a2 + b2 - 2.0 * A @ B.T, 0.0)
    return np.exp(-0.5 * d2 / (length_scale * length_scale))


class GaussianProcess(Model):
    """GP regression (WEKA ``GaussianProcesses``): exact inference, RBF kernel.

    Profiling datasets are small (tens to a few hundred runs), so the cubic
    Cholesky solve is cheap.  ``noise`` is the observation-noise variance;
    the length scale is set by the median heuristic unless given.
    """

    def __init__(self, length_scale: float | None = None, noise: float = 0.1) -> None:
        super().__init__()
        self.length_scale = length_scale
        self.noise = noise
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._ls = 1.0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._X = X
        if self.length_scale is not None:
            self._ls = self.length_scale
        else:
            # Median pairwise distance heuristic.
            n = X.shape[0]
            if n > 1:
                idx = np.random.default_rng(0).choice(n, size=min(n, 256), replace=False)
                S = X[idx]
                d2 = ((S[:, None, :] - S[None, :, :]) ** 2).sum(-1)
                med = float(np.median(np.sqrt(d2[d2 > 0]))) if (d2 > 0).any() else 1.0
                self._ls = med or 1.0
            else:
                self._ls = 1.0
        K = rbf_kernel(X, X, self._ls)
        K[np.diag_indices_from(K)] += self.noise
        L = np.linalg.cholesky(K)
        self._L = L
        self._alpha = np.linalg.solve(L.T, np.linalg.solve(L, y))

    def _predict(self, X: np.ndarray) -> np.ndarray:
        Ks = rbf_kernel(X, self._X, self._ls)
        return Ks @ self._alpha

    def predict_std(self, X) -> np.ndarray:
        """Posterior predictive standard deviation (standardized-target units).

        Drives uncertainty-guided sampling: the adaptive profiler probes the
        configuration where the model is least sure (PANIC-style).
        """
        from repro.models.base import NotFittedError, as_2d

        if self._L is None:
            raise NotFittedError("GaussianProcess has not been fitted")
        X = as_2d(X)
        if self.standardize:
            X = (X - self._x_mean) / self._x_std
        Ks = rbf_kernel(X, self._X, self._ls)
        v = np.linalg.solve(self._L, Ks.T)
        var = 1.0 + self.noise - (v * v).sum(axis=0)
        return np.sqrt(np.maximum(var, 0.0))
