"""Multilayer perceptron regressor trained with Adam (numpy backprop)."""

from __future__ import annotations

import numpy as np

from repro.models.base import Model


class MultilayerPerceptron(Model):
    """Feed-forward network (WEKA ``MultilayerPerceptron``): tanh hidden layers.

    A small fully-connected network trained by mini-batch Adam on the
    standardized profiling samples.  Sized for the small, low-dimensional
    datasets the IReS profiler produces.
    """

    def __init__(
        self,
        hidden: tuple[int, ...] = (32, 16),
        epochs: int = 400,
        lr: float = 0.01,
        batch_size: int = 32,
        l2: float = 1e-4,
        seed: int = 11,
    ) -> None:
        super().__init__()
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []

    def _init_params(self, n_in: int, rng: np.random.Generator) -> None:
        sizes = [n_in, *self.hidden, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        h = X
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            z = h @ W + b
            h = z if i == len(self._weights) - 1 else np.tanh(z)
            activations.append(h)
        return h, activations

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self._init_params(X.shape[1], rng)
        # Adam state.
        m_w = [np.zeros_like(W) for W in self._weights]
        v_w = [np.zeros_like(W) for W in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = X[idx], y[idx]
                out, acts = self._forward(xb)
                delta = (out.ravel() - yb).reshape(-1, 1) * (2.0 / len(idx))
                grads_w: list[np.ndarray] = [None] * len(self._weights)
                grads_b: list[np.ndarray] = [None] * len(self._biases)
                for layer in range(len(self._weights) - 1, -1, -1):
                    a_prev = acts[layer]
                    grads_w[layer] = a_prev.T @ delta + self.l2 * self._weights[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T) * (1 - acts[layer] ** 2)
                step += 1
                for layer in range(len(self._weights)):
                    for params, grads, ms, vs in (
                        (self._weights, grads_w, m_w, v_w),
                        (self._biases, grads_b, m_b, v_b),
                    ):
                        ms[layer] = beta1 * ms[layer] + (1 - beta1) * grads[layer]
                        vs[layer] = beta2 * vs[layer] + (1 - beta2) * grads[layer] ** 2
                        m_hat = ms[layer] / (1 - beta1**step)
                        v_hat = vs[layer] / (1 - beta2**step)
                        params[layer] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        out, _ = self._forward(X)
        return out.ravel()
