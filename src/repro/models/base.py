"""Common interface for the performance-estimation models."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


def as_2d(X) -> np.ndarray:
    """Coerce input features to a float ``(n_samples, n_features)`` array."""
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D feature array, got shape {arr.shape}")
    return arr


def as_1d(y) -> np.ndarray:
    """Coerce targets to a float ``(n_samples,)`` array."""
    arr = np.asarray(y, dtype=float).ravel()
    return arr


class Model:
    """Base class for all estimation models.

    Subclasses implement :meth:`_fit` and :meth:`_predict` over standardized
    inputs; this base class handles validation, input/output scaling and the
    fitted-state bookkeeping so each model only contains its core math.
    """

    #: whether inputs are z-scored before :meth:`_fit` (models that are
    #: scale-sensitive, e.g. neural networks and GPs, keep this True).
    standardize = True

    def __init__(self) -> None:
        self._fitted = False
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self.n_features_: int | None = None

    @property
    def name(self) -> str:
        """The model's class name (used in CV score tables)."""
        return type(self).__name__

    def fit(self, X, y) -> "Model":
        """Validate, standardize and fit; returns self."""
        X = as_2d(X)
        y = as_1d(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} samples but y has {y.shape[0]}"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit a model on zero samples")
        self.n_features_ = X.shape[1]
        if self.standardize:
            self._x_mean = X.mean(axis=0)
            self._x_std = X.std(axis=0)
            self._x_std[self._x_std == 0.0] = 1.0
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
            X = (X - self._x_mean) / self._x_std
            y = (y - self._y_mean) / self._y_std
        self._fit(X, y)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        """Predict targets for a feature matrix."""
        if not self._fitted:
            raise NotFittedError(f"{self.name} has not been fitted")
        X = as_2d(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"{self.name} was fitted on {self.n_features_} features, "
                f"got {X.shape[1]}"
            )
        if self.standardize:
            X = (X - self._x_mean) / self._x_std
        y = self._predict(X)
        if self.standardize:
            y = y * self._y_std + self._y_mean
        return np.asarray(y, dtype=float).ravel()

    def predict_one(self, x: Sequence[float]) -> float:
        """Predict a single sample given as a flat feature sequence."""
        return float(self.predict(np.asarray(x, dtype=float).reshape(1, -1))[0])

    # -- subclass hooks ----------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class UserFunction(Model):
    """A developer-supplied cost function wrapped as a model.

    The paper's operator descriptions may name
    ``gr.ntua.ece.cslab.panic.core.models.UserFunction`` as the estimation
    model — a closed-form function provided by the operator developer instead
    of a trained regressor.  ``fit`` is a no-op.
    """

    standardize = False

    def __init__(self, fn: Callable[[np.ndarray], float]) -> None:
        super().__init__()
        self._fn = fn
        self._fitted = True
        self.n_features_ = None

    def fit(self, X, y) -> "UserFunction":
        """No-op: the developer-supplied function needs no training."""
        return self

    def predict(self, X) -> np.ndarray:
        """Evaluate the wrapped function row by row."""
        X = as_2d(X)
        return np.array([float(self._fn(row)) for row in X])
