"""Linear regression models: ordinary least squares and least median of squares."""

from __future__ import annotations

import numpy as np

from repro.models.base import Model


def _design(X: np.ndarray) -> np.ndarray:
    """Append the intercept column."""
    return np.hstack([X, np.ones((X.shape[0], 1))])


class LinearRegression(Model):
    """Ordinary least-squares linear regression (the WEKA baseline)."""

    standardize = False

    def __init__(self) -> None:
        super().__init__()
        self.coef_: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        # Solve on the centered design so the intercept is exactly
        # mean(y) - mean(X) @ w: a constant shift of the target then moves
        # the intercept alone, even for ill-conditioned designs.
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        # rcond truncates near-degenerate singular values: a feature column
        # that is (numerically) constant must not amplify ulp-level noise
        # in the centered target into visible coefficient swings.
        w, *_ = np.linalg.lstsq(X - x_mean, y - y_mean, rcond=1e-8)
        self.coef_ = np.append(w, y_mean - x_mean @ w)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return _design(X) @ self.coef_


class LeastMedianSquares(Model):
    """Least Median of Squares robust regression (Rousseeuw & Leroy).

    WEKA's ``LeastMedSq`` classifier: repeatedly fit OLS to small random
    subsamples, keep the fit with the lowest *median* squared residual, then
    refit OLS on the inliers of that fit.  Robust to up to ~50% outliers,
    which matters when profiling runs include interference spikes.
    """

    standardize = False

    def __init__(self, n_trials: int = 200, seed: int = 7) -> None:
        super().__init__()
        self.n_trials = n_trials
        self.seed = seed
        self.coef_: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        A = _design(X)
        n, p = A.shape
        if n <= p + 1:
            # Too few samples for subsampling: plain OLS.
            self.coef_, *_ = np.linalg.lstsq(A, y, rcond=None)
            return
        best_coef = None
        best_median = np.inf
        sample_size = min(n, p + 1)
        for _ in range(self.n_trials):
            idx = rng.choice(n, size=sample_size, replace=False)
            coef, *_ = np.linalg.lstsq(A[idx], y[idx], rcond=None)
            resid2 = (y - A @ coef) ** 2
            med = float(np.median(resid2))
            if med < best_median:
                best_median = med
                best_coef = coef
        # Reweighted least squares on the inliers of the best LMS fit.
        resid2 = (y - A @ best_coef) ** 2
        scale = 1.4826 * (1 + 5.0 / max(n - p, 1)) * np.sqrt(best_median)
        if scale <= 0:
            self.coef_ = best_coef
            return
        inliers = resid2 <= (2.5 * scale) ** 2
        if inliers.sum() >= p:
            self.coef_, *_ = np.linalg.lstsq(A[inliers], y[inliers], rcond=None)
        else:
            self.coef_ = best_coef

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return _design(X) @ self.coef_
