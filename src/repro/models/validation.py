"""Cross-validation and model selection.

The paper keeps "the model that best fits the available data" via k-fold
cross-validation (D3.3 §2.2.1, citing Kohavi 1995).  :func:`select_best_model`
scores every candidate in the zoo and returns the winner fitted on all data.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.models.base import Model, as_1d, as_2d
from repro.models.discretize import RegressionByDiscretization
from repro.models.ensemble import Bagging, RandomSubspace
from repro.models.gaussian_process import GaussianProcess
from repro.models.linear import LeastMedianSquares, LinearRegression
from repro.models.mlp import MultilayerPerceptron
from repro.models.rbf import RBFNetwork


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    y_true = as_1d(y_true)
    y_pred = as_1d(y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


class KFold:
    """Shuffled k-fold splitter over ``n`` samples."""

    def __init__(self, n_splits: int = 5, seed: int = 23) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) per fold."""
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


def cross_val_score(
    model_factory: Callable[[], Model],
    X,
    y,
    n_splits: int = 5,
    seed: int = 23,
) -> float:
    """Mean RMSE of a model class across k folds (lower is better)."""
    X = as_2d(X)
    y = as_1d(y)
    kf = KFold(n_splits=min(n_splits, max(2, len(y) // 2)), seed=seed)
    scores = []
    for train, test in kf.split(len(y)):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(rmse(y[test], model.predict(X[test])))
    return float(np.mean(scores))


def default_model_zoo() -> dict[str, Callable[[], Model]]:
    """Factories for every approximation technique the paper lists."""
    return {
        "GaussianProcess": GaussianProcess,
        "MultilayerPerceptron": lambda: MultilayerPerceptron(epochs=150),
        "LinearRegression": LinearRegression,
        "LeastMedianSquares": LeastMedianSquares,
        "Bagging": Bagging,
        "RandomSubspace": RandomSubspace,
        "RegressionByDiscretization": RegressionByDiscretization,
        "RBFNetwork": RBFNetwork,
    }


def fast_model_zoo() -> dict[str, Callable[[], Model]]:
    """Cheaper configurations of the same techniques, for frequent retraining.

    Online refinement retrains after (batches of) executions; this zoo trades
    a little accuracy for an order of magnitude less fitting time.
    """
    return {
        "GaussianProcess": GaussianProcess,
        "MultilayerPerceptron": lambda: MultilayerPerceptron(
            hidden=(16,), epochs=60, batch_size=64
        ),
        "LinearRegression": LinearRegression,
        "LeastMedianSquares": lambda: LeastMedianSquares(n_trials=60),
        "Bagging": lambda: Bagging(n_estimators=8, max_depth=6),
        "RBFNetwork": RBFNetwork,
    }


def select_best_model(
    X,
    y,
    zoo: dict[str, Callable[[], Model]] | None = None,
    n_splits: int = 5,
    seed: int = 23,
) -> tuple[Model, str, dict[str, float]]:
    """Cross-validate every candidate model and fit the winner on all data.

    Returns ``(fitted_model, winner_name, {name: cv_rmse})``.  With fewer
    than four samples CV is meaningless, so the linear baseline is used.
    """
    X = as_2d(X)
    y = as_1d(y)
    if zoo is None:
        zoo = default_model_zoo()
    if len(y) < 4:
        model = LinearRegression().fit(X, y)
        return model, "LinearRegression", {}
    scores: dict[str, float] = {}
    for name, factory in zoo.items():
        try:
            scores[name] = cross_val_score(factory, X, y, n_splits=n_splits, seed=seed)
        except (np.linalg.LinAlgError, ValueError):
            scores[name] = float("inf")
    winner = min(scores, key=scores.get)
    model = zoo[winner]().fit(X, y)
    return model, winner, scores
