"""Discrete simulation clock for the multi-engine cloud.

The paper measures workflow execution on a real 16-VM cluster; the
reproduction charges engine work against this clock instead (see DESIGN.md
§2).  Planner/optimizer overheads are measured in real wall-clock because
those code paths really run.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}")
        self._now += seconds
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (tests only)."""
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.3f}s)"
