"""Simulated multi-engine cloud: the substrate IReS schedules over.

See DESIGN.md §2 for the substitution rationale: calibrated analytic
performance models replace the paper's real 16-VM OpenStack deployment while
preserving the cost *shapes* (per-engine crossovers, memory cliffs,
resource/time trade-offs) the evaluation depends on.
"""

from repro.engines.base import COMPUTE, DATASTORE, OFF, ON, Engine, ExecutionResult
from repro.engines.clock import SimClock
from repro.engines.cluster import Cluster, Node, HEALTHY, UNHEALTHY
from repro.engines.containers import Container, ContainerRequest, ContainerScheduler
from repro.engines.errors import (
    EngineError,
    EngineUnavailableError,
    InsufficientResourcesError,
    MemoryExceededError,
)
from repro.engines.faults import FaultInjector, ScheduledFault
from repro.engines.hdfs import HDFSError, SimHDFS
from repro.engines.monitoring import MetricRecord, MetricsCollector
from repro.engines.profiles import (
    DEFAULT_PROFILES,
    Infrastructure,
    PerfModel,
    Resources,
    Workload,
    get_profile,
)
from repro.engines.registry import MultiEngineCloud, build_default_cloud

__all__ = [
    "COMPUTE",
    "Cluster",
    "Container",
    "ContainerRequest",
    "ContainerScheduler",
    "DATASTORE",
    "DEFAULT_PROFILES",
    "Engine",
    "EngineError",
    "EngineUnavailableError",
    "ExecutionResult",
    "FaultInjector",
    "HDFSError",
    "HEALTHY",
    "Infrastructure",
    "InsufficientResourcesError",
    "MemoryExceededError",
    "MetricRecord",
    "MetricsCollector",
    "MultiEngineCloud",
    "Node",
    "OFF",
    "ON",
    "PerfModel",
    "Resources",
    "ScheduledFault",
    "SimClock",
    "SimHDFS",
    "UNHEALTHY",
    "Workload",
    "build_default_cloud",
    "get_profile",
]
