"""Execution monitoring: per-run metric records and cluster timelines.

The paper's profiler monitors 45 metrics per run — execution time, input and
output sizes/counts, the experiment date, operator-specific parameters and a
ganglia-sourced timeline of system metrics (CPU, RAM, network, IOPS) for the
whole cluster (D3.3 §2.2.1).  :class:`MetricRecord` carries the same
information; :class:`MetricsCollector` is the store the modeler reads.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.obs.context import current_run_id
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

_LOG = get_logger("monitoring")

#: sampling period of the synthesized ganglia timeline (seconds)
TIMELINE_PERIOD = 5.0
#: cap on timeline samples per run, to bound memory
TIMELINE_MAX_SAMPLES = 200


@dataclass
class MetricRecord:
    """The monitored metrics of one operator execution."""

    operator: str
    algorithm: str
    engine: str
    exec_time: float
    started_at: float
    success: bool = True
    error: str | None = None
    input_size: float = 0.0
    input_count: float = 0.0
    output_size: float = 0.0
    output_cardinality: float = 0.0
    cores: int = 0
    memory_gb: float = 0.0
    params: dict = field(default_factory=dict)
    #: synthesized cluster timeline: {"cpu": [...], "ram": [...], ...}
    timeline: dict = field(default_factory=dict)

    def features(self) -> dict[str, float]:
        """Flat numeric feature view used for model training."""
        feats = {
            "input_size": self.input_size,
            "input_count": self.input_count,
            "cores": float(self.cores),
            "memory_gb": self.memory_gb,
        }
        for key, value in self.params.items():
            try:
                feats[f"param_{key}"] = float(value)
            except (TypeError, ValueError):
                continue
        return feats


#: pseudo-algorithm tag of resilience events (retries, breaker transitions,
#: speculation outcomes) — never collides with real operator algorithms, so
#: model training and per-operator queries are unaffected.
RESILIENCE_ALGORITHM = "__resilience__"

_RESILIENCE_EVENTS = REGISTRY.counter(
    "ires_resilience_events_total",
    "Resilience events (retries, breaker transitions, speculation outcomes)",
    labels=("kind", "engine", "run_id"),
)


def resilience_event(
    kind: str, engine: str, at: float, success: bool = True, detail: str = ""
) -> MetricRecord:
    """Build the MetricRecord for one resilience event (retry, breaker, …).

    Both producers (the enforcer's :class:`ResilienceManager` and the
    parallel simulator) funnel through here, so the
    ``ires_resilience_events_total`` counter sees every event exactly once.
    """
    _RESILIENCE_EVENTS.inc(kind=kind, engine=engine,
                           run_id=current_run_id() or "")
    return MetricRecord(
        operator=f"resilience.{kind}",
        algorithm=RESILIENCE_ALGORITHM,
        engine=engine,
        exec_time=0.0,
        started_at=at,
        success=success,
        error=detail or None,
        params={"kind": kind},
    )


def timeline_seed(operator: str, engine: str, started_at: float) -> int:
    """Deterministic seed for one run's synthesized timeline.

    Derived from ``(operator, engine, started_at)`` so the same run always
    regenerates the same timeline, while distinct runs — even the same
    operator re-executed later — get distinct noise.
    """
    key = f"{operator}|{engine}|{started_at!r}".encode()
    return zlib.crc32(key)


def synthesize_timeline(
    exec_time: float, cores: int, memory_gb: float, seed: int = 0
) -> dict[str, list[float]]:
    """Generate a plausible ganglia-style system-metric timeline for a run."""
    n = int(min(max(exec_time / TIMELINE_PERIOD, 1), TIMELINE_MAX_SAMPLES))
    rng = np.random.default_rng(seed)
    ramp = np.minimum(np.linspace(0.3, 1.0, n) * 1.4, 1.0)
    cpu = np.clip(ramp * 0.8 + rng.normal(0, 0.05, n), 0, 1)
    ram = np.clip(np.linspace(0.2, 0.85, n) + rng.normal(0, 0.03, n), 0, 1)
    net = np.clip(rng.gamma(2.0, 12.0, n) * cores, 0, None)
    iops = np.clip(rng.gamma(2.0, 40.0, n), 0, None)
    return {
        "cpu": cpu.round(4).tolist(),
        "ram": (ram * memory_gb).round(3).tolist(),
        "net_mbps": net.round(2).tolist(),
        "iops": iops.round(1).tolist(),
    }


class MetricsCollector:
    """Append-only store of execution records, queryable by operator/engine."""

    def __init__(self) -> None:
        self._records: list[MetricRecord] = []

    def record(self, record: MetricRecord) -> None:
        """Append one execution record."""
        self._records.append(record)

    def all(self) -> list[MetricRecord]:
        """Every stored record (copy)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def for_operator(
        self, algorithm: str, engine: str | None = None, successes_only: bool = True
    ) -> list[MetricRecord]:
        """Records of one (algorithm, engine) pair."""
        out = []
        for r in self._records:
            if r.algorithm != algorithm:
                continue
            if engine is not None and r.engine != engine:
                continue
            if successes_only and not r.success:
                continue
            out.append(r)
        return out

    def failures(self) -> list[MetricRecord]:
        """Records of failed runs (OOM etc.)."""
        return [r for r in self._records if not r.success]

    def resilience_events(self, kind: str | None = None) -> list[MetricRecord]:
        """Resilience events (retry/breaker/speculation), optionally by kind."""
        out = []
        for r in self._records:
            if r.algorithm != RESILIENCE_ALGORITHM:
                continue
            if kind is not None and r.params.get("kind") != kind:
                continue
            out.append(r)
        return out

    # -- persistence --------------------------------------------------------
    def save(self, path) -> int:
        """Persist the record store as JSON lines; returns the record count.

        Profiling is expensive, so the collected runs — like the trained
        models — live in the IReS library across sessions.
        """
        import dataclasses
        import json

        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                payload = dataclasses.asdict(record)
                exec_time = payload["exec_time"]
                # JSON has no NaN/Infinity: map every non-finite value (an
                # OOM sentinel +inf, a corrupted NaN, a -inf) to a string.
                if isinstance(exec_time, float) and not math.isfinite(exec_time):
                    if math.isnan(exec_time):
                        payload["exec_time"] = "nan"
                    else:
                        payload["exec_time"] = "inf" if exec_time > 0 else "-inf"
                handle.write(json.dumps(payload, allow_nan=False) + "\n")
        return len(self._records)

    def load(self, path) -> int:
        """Append records saved by :meth:`save`; returns how many were read.

        Unknown keys are dropped so an older collector can load files written
        by newer code that added fields (forward-compatible persistence);
        missing keys fall back to the dataclass defaults.

        A malformed *final* line is skipped with a warning instead of
        raising: a crash mid-:meth:`save` (or mid-append) can only tear the
        last line, and losing one record beats losing the whole store.
        Malformed lines anywhere else still raise — that is corruption, not
        a torn tail.
        """
        import dataclasses
        import json

        known = {f.name for f in dataclasses.fields(MetricRecord)}
        count = 0
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1)
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if payload.get("exec_time") in ("inf", "-inf", "nan"):
                    payload["exec_time"] = float(payload["exec_time"])
                payload = {k: v for k, v in payload.items() if k in known}
                record = MetricRecord(**payload)
            except (ValueError, TypeError) as exc:
                if i >= last_content:
                    _LOG.warning("torn_metrics_line", path=str(path),
                                 line=i + 1, error=str(exc))
                    break
                raise ValueError(
                    f"{path}: malformed record on line {i + 1}: {exc}"
                ) from exc
            self._records.append(record)
            count += 1
        return count

    def training_matrix(
        self, algorithm: str, engine: str, feature_names: Iterable[str] | None = None,
        window: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Build (X, y, feature_names) for model fitting from stored runs.

        ``window`` keeps only the newest N records — drift-triggered refits
        use it to train on post-drift reality instead of the mixed history.
        """
        records = self.for_operator(algorithm, engine)
        if window is not None and window > 0:
            records = records[-window:]
        if not records:
            return np.empty((0, 0)), np.empty(0), []
        if feature_names is None:
            names: list[str] = sorted({k for r in records for k in r.features()})
        else:
            names = list(feature_names)
        X = np.array([[r.features().get(n, 0.0) for n in names] for r in records])
        y = np.array([r.exec_time for r in records])
        return X, y, names
