"""Fault injection for the fault-tolerance experiments (D3.3 §4.5).

The original evaluation kills the engine a plan chose for a given operator
and lets IReS detect the failure, replan the remainder and reuse
intermediates.  :class:`FaultInjector` scripts such *permanent* events
against the simulated cloud, and additionally models the *transient*
faults real multi-engine clouds mostly throw: seeded probabilistic flaky
failures (``fail_rate``), slowdown/straggler factors, and
crash-after-fraction-of-work.  Transient outcomes are drawn from one seeded
RNG stream per engine, so a chaos sweep is reproducible run to run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.engines.registry import MultiEngineCloud


@dataclass
class ScheduledFault:
    """A fault that fires when a trigger operator starts executing."""

    kind: str  # "kill_engine" | "node_unhealthy"
    target: str  # engine name or node id
    trigger_operator: str | None = None  # fire when this abstract op starts
    fired: bool = False


@dataclass
class TransientFaultProfile:
    """Per-engine transient misbehaviour knobs.

    - ``fail_rate``: probability an execution crashes transiently, after
      ``crash_fraction`` of its work was already done (and charged);
    - ``slowdown`` × ``straggler_rate``: probability an execution runs
      ``slowdown`` times slower than nominal (a straggler).
    """

    fail_rate: float = 0.0
    crash_fraction: float = 0.5
    slowdown: float = 1.0
    straggler_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_rate <= 1.0:
            raise ValueError(f"fail_rate must be in [0, 1], got {self.fail_rate}")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(
                f"crash_fraction must be in [0, 1], got {self.crash_fraction}")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError(
                f"straggler_rate must be in [0, 1], got {self.straggler_rate}")


@dataclass(frozen=True)
class TransientOutcome:
    """What the injector decided for one execution attempt."""

    fails: bool = False
    work_fraction: float = 0.0  # fraction of the step's work done before crash
    slowdown: float = 1.0  # straggler multiplier on the execution time

    @property
    def nominal(self) -> bool:
        """True when the execution proceeds entirely undisturbed."""
        return not self.fails and self.slowdown == 1.0


@dataclass
class FaultInjector:
    """Holds scheduled faults and applies them when the executor asks."""

    cloud: MultiEngineCloud
    faults: list[ScheduledFault] = field(default_factory=list)
    transients: dict[str, TransientFaultProfile] = field(default_factory=dict)
    seed: int = 0
    _rngs: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    # -- permanent faults (the §4.5 kills) -----------------------------------
    def kill_engine_at(self, engine: str, trigger_operator: str) -> ScheduledFault:
        """Schedule an engine kill for when an operator starts."""
        fault = ScheduledFault("kill_engine", engine, trigger_operator)
        self.faults.append(fault)
        return fault

    def mark_node_unhealthy_at(self, node_id: str, trigger_operator: str) -> ScheduledFault:
        """Schedule a node-health failure for an operator start."""
        fault = ScheduledFault("node_unhealthy", node_id, trigger_operator)
        self.faults.append(fault)
        return fault

    def kill_engine_now(self, engine: str) -> None:
        """Kill an engine immediately."""
        self.cloud.kill_engine(engine)

    def on_operator_start(self, abstract_name: str) -> list[ScheduledFault]:
        """Fire any faults triggered by this operator; return what fired."""
        fired = []
        for fault in self.faults:
            if fault.fired or fault.trigger_operator != abstract_name:
                continue
            if fault.kind == "kill_engine":
                self.cloud.kill_engine(fault.target)
            elif fault.kind == "node_unhealthy":
                self.cloud.cluster.mark_unhealthy(fault.target)
            fault.fired = True
            fired.append(fault)
        return fired

    def reset(self) -> None:
        """Undo all fired faults (restart engines, heal nodes)."""
        for fault in self.faults:
            if not fault.fired:
                continue
            if fault.kind == "kill_engine":
                self.cloud.restart_engine(fault.target)
            elif fault.kind == "node_unhealthy":
                self.cloud.cluster.mark_healthy(fault.target)
            fault.fired = False

    # -- transient faults -----------------------------------------------------
    def make_flaky(
        self, engine: str, fail_rate: float, crash_fraction: float = 0.5
    ) -> TransientFaultProfile:
        """Make an engine fail transiently with the given probability."""
        old = self.transients.get(engine, TransientFaultProfile())
        profile = TransientFaultProfile(
            fail_rate=fail_rate, crash_fraction=crash_fraction,
            slowdown=old.slowdown, straggler_rate=old.straggler_rate,
        )
        self.transients[engine] = profile
        return profile

    def make_straggler(
        self, engine: str, slowdown: float, straggler_rate: float = 1.0
    ) -> TransientFaultProfile:
        """Make an engine's executions run ``slowdown``× slower sometimes."""
        old = self.transients.get(engine, TransientFaultProfile())
        profile = TransientFaultProfile(
            fail_rate=old.fail_rate, crash_fraction=old.crash_fraction,
            slowdown=slowdown, straggler_rate=straggler_rate,
        )
        self.transients[engine] = profile
        return profile

    def make_all_flaky(self, fail_rate: float, crash_fraction: float = 0.5) -> None:
        """Chaos mode: every deployed engine becomes flaky at ``fail_rate``."""
        for name in self.cloud.engines:
            self.make_flaky(name, fail_rate, crash_fraction)

    def clear_transients(self, engine: str | None = None) -> None:
        """Remove transient profiles (one engine, or all) and their RNGs."""
        if engine is None:
            self.transients.clear()
            self._rngs.clear()
        else:
            self.transients.pop(engine, None)
            self._rngs.pop(engine, None)

    def _rng(self, engine: str) -> np.random.Generator:
        rng = self._rngs.get(engine)
        if rng is None:
            stream = zlib.crc32(engine.encode()) ^ (self.seed * 0x9E3779B9)
            rng = np.random.default_rng(stream & 0xFFFFFFFF)
            self._rngs[engine] = rng
        return rng

    def transient_outcome(self, engine: str) -> TransientOutcome:
        """Draw the transient fate of one execution attempt on ``engine``.

        Each call consumes the engine's RNG stream, so attempt k of a retry
        loop sees an independent (but reproducible) draw — exactly how a
        flaky service behaves.
        """
        profile = self.transients.get(engine)
        if profile is None:
            return TransientOutcome()
        rng = self._rng(engine)
        fails = bool(profile.fail_rate > 0 and rng.random() < profile.fail_rate)
        slowdown = 1.0
        if profile.straggler_rate > 0 and rng.random() < profile.straggler_rate:
            slowdown = profile.slowdown
        return TransientOutcome(
            fails=fails,
            work_fraction=profile.crash_fraction if fails else 0.0,
            slowdown=slowdown,
        )
