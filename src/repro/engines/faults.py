"""Fault injection for the fault-tolerance experiments (D3.3 §4.5).

The evaluation kills the engine a plan chose for a given operator and lets
IReS detect the failure, replan the remainder and reuse intermediates.
:class:`FaultInjector` scripts such events against the simulated cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.registry import MultiEngineCloud


@dataclass
class ScheduledFault:
    """A fault that fires when a trigger operator starts executing."""

    kind: str  # "kill_engine" | "node_unhealthy"
    target: str  # engine name or node id
    trigger_operator: str | None = None  # fire when this abstract op starts
    fired: bool = False


@dataclass
class FaultInjector:
    """Holds scheduled faults and applies them when the executor asks."""

    cloud: MultiEngineCloud
    faults: list[ScheduledFault] = field(default_factory=list)

    def kill_engine_at(self, engine: str, trigger_operator: str) -> ScheduledFault:
        """Schedule an engine kill for when an operator starts."""
        fault = ScheduledFault("kill_engine", engine, trigger_operator)
        self.faults.append(fault)
        return fault

    def mark_node_unhealthy_at(self, node_id: str, trigger_operator: str) -> ScheduledFault:
        """Schedule a node-health failure for an operator start."""
        fault = ScheduledFault("node_unhealthy", node_id, trigger_operator)
        self.faults.append(fault)
        return fault

    def kill_engine_now(self, engine: str) -> None:
        """Kill an engine immediately."""
        self.cloud.kill_engine(engine)

    def on_operator_start(self, abstract_name: str) -> list[ScheduledFault]:
        """Fire any faults triggered by this operator; return what fired."""
        fired = []
        for fault in self.faults:
            if fault.fired or fault.trigger_operator != abstract_name:
                continue
            if fault.kind == "kill_engine":
                self.cloud.kill_engine(fault.target)
            elif fault.kind == "node_unhealthy":
                self.cloud.cluster.mark_unhealthy(fault.target)
            fault.fired = True
            fired.append(fault)
        return fired

    def reset(self) -> None:
        """Undo all fired faults (restart engines, heal nodes)."""
        for fault in self.faults:
            if not fault.fired:
                continue
            if fault.kind == "kill_engine":
                self.cloud.restart_engine(fault.target)
            elif fault.kind == "node_unhealthy":
                self.cloud.cluster.mark_healthy(fault.target)
            fault.fired = False
