"""Physical substrate: nodes, the cluster, and node health.

Models the paper's 16-VM OpenStack deployment.  Health is probed by
customizable "health scripts" run against every node, mirroring the
``yarn.nodemanager.services-running.*`` mechanism of D3.3 §2.3/§3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

HEALTHY = "HEALTHY"
UNHEALTHY = "UNHEALTHY"


@dataclass
class Node:
    """One cluster node (VM) with its resource capacity."""

    node_id: str
    cores: int = 4
    memory_gb: float = 8.0
    health: str = HEALTHY
    #: resources currently granted to containers
    cores_used: int = 0
    memory_used: float = 0.0
    #: arbitrary attributes health scripts may inspect (disk type, load, ...)
    attributes: dict = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """True when the node's health state is HEALTHY."""
        return self.health == HEALTHY

    @property
    def cores_free(self) -> int:
        """Cores not granted to containers."""
        return self.cores - self.cores_used

    @property
    def memory_free(self) -> float:
        """Memory (GB) not granted to containers."""
        return self.memory_gb - self.memory_used


class Cluster:
    """A named collection of nodes with aggregate accounting."""

    def __init__(self, nodes: Iterable[Node]) -> None:
        self.nodes: dict[str, Node] = {}
        for node in nodes:
            if node.node_id in self.nodes:
                raise ValueError(f"duplicate node id {node.node_id!r}")
            self.nodes[node.node_id] = node
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")

    @classmethod
    def homogeneous(cls, n_nodes: int, cores: int = 4, memory_gb: float = 8.0) -> "Cluster":
        """Build a uniform cluster, e.g. the paper's 16 VMs."""
        return cls(Node(f"vm{i:02d}", cores, memory_gb) for i in range(n_nodes))

    # -- capacity ---------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Sum of all nodes' cores."""
        return sum(n.cores for n in self.nodes.values())

    @property
    def total_memory_gb(self) -> float:
        """Sum of all nodes' memory."""
        return sum(n.memory_gb for n in self.nodes.values())

    def healthy_nodes(self) -> list[Node]:
        """Nodes currently reporting HEALTHY."""
        return [n for n in self.nodes.values() if n.healthy]

    @property
    def available_cores(self) -> int:
        """Unallocated cores on healthy nodes."""
        return sum(n.cores_free for n in self.healthy_nodes())

    @property
    def available_memory_gb(self) -> float:
        """Unallocated memory on healthy nodes."""
        return sum(n.memory_free for n in self.healthy_nodes())

    def max_node_memory_gb(self) -> float:
        """Largest single-node memory — the centralized-engine ceiling."""
        return max(n.memory_gb for n in self.nodes.values())

    # -- health -----------------------------------------------------------
    def mark_unhealthy(self, node_id: str) -> None:
        """Force a node into the UNHEALTHY state."""
        self.nodes[node_id].health = UNHEALTHY

    def mark_healthy(self, node_id: str) -> None:
        """Return a node to the HEALTHY state."""
        self.nodes[node_id].health = HEALTHY

    def run_health_checks(
        self, health_script: Callable[[Node], bool] | None = None
    ) -> dict[str, str]:
        """Execute the health script on every node; update and report states.

        The default script just reports the current flag; custom scripts can
        inspect ``node.attributes`` (the paper's "customizable and
        parametrized health scripts").
        """
        report: dict[str, str] = {}
        for node in self.nodes.values():
            if health_script is not None:
                node.health = HEALTHY if health_script(node) else UNHEALTHY
            report[node.node_id] = node.health
        return report

    def clone(self) -> "Cluster":
        """A capacity-equal copy with fresh usage counters (for what-if
        scheduling that must not disturb live allocations)."""
        return Cluster(
            Node(n.node_id, n.cores, n.memory_gb, n.health,
                 attributes=dict(n.attributes))
            for n in self.nodes.values()
        )

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        healthy = len(self.healthy_nodes())
        return (
            f"Cluster({len(self.nodes)} nodes, {healthy} healthy, "
            f"{self.total_cores} cores, {self.total_memory_gb:.0f} GB)"
        )
