"""Simulated execution engines and datastores.

An :class:`Engine` binds a set of (algorithm → :class:`PerfModel`) ground
truths to the shared cluster, clock and container scheduler.  Executing an
operator allocates YARN-like containers, charges the true (noisy) execution
time to the simulated clock, records a full metric record, and releases the
containers — the same life cycle the paper's enforcer drives on real YARN.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines.clock import SimClock
from repro.engines.containers import ContainerRequest, ContainerScheduler
from repro.engines.errors import EngineUnavailableError, MemoryExceededError
from repro.engines.monitoring import (
    MetricRecord,
    MetricsCollector,
    synthesize_timeline,
    timeline_seed,
)
from repro.engines.profiles import Infrastructure, PerfModel, Resources, Workload

ON = "ON"
OFF = "OFF"

COMPUTE = "compute"
DATASTORE = "datastore"


@dataclass
class ExecutionResult:
    """What an engine returns for one operator run."""

    record: MetricRecord
    output: object | None = None  # real artifact when an impl callable ran


class Engine:
    """One deployed engine (or datastore) of the multi-engine cloud."""

    def __init__(
        self,
        name: str,
        kind: str,
        clock: SimClock,
        scheduler: ContainerScheduler,
        collector: MetricsCollector,
        infra: Infrastructure,
        profiles: dict[str, PerfModel],
        default_request: ContainerRequest,
        centralized: bool = False,
        noise_sigma: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.kind = kind
        self.clock = clock
        self.scheduler = scheduler
        self.collector = collector
        self.infra = infra
        self.profiles = dict(profiles)
        self.default_request = default_request
        self.centralized = centralized
        self.noise_sigma = noise_sigma
        self.status = ON
        self._rng = np.random.default_rng(seed)
        self._runs = 0

    # -- service availability (§2.3) --------------------------------------
    @property
    def available(self) -> bool:
        """Service-availability flag (§2.3's ON/OFF check)."""
        return self.status == ON

    def stop(self) -> None:
        """Kill the engine service (planning will exclude it)."""
        self.status = OFF

    def start(self) -> None:
        """Restart the engine service."""
        self.status = ON

    # -- profiles ----------------------------------------------------------
    def supports(self, algorithm: str) -> bool:
        """Whether the engine implements the given algorithm."""
        return algorithm in self.profiles

    def add_profile(self, algorithm: str, model: PerfModel) -> None:
        """Attach a performance profile for an algorithm."""
        self.profiles[algorithm] = model

    def true_seconds(
        self, algorithm: str, workload: Workload, resources: Resources | None = None
    ) -> float:
        """Noise-free ground-truth runtime (used by tests and oracles)."""
        model = self.profiles[algorithm]
        res = resources if resources is not None else self.default_resources()
        return model.seconds(workload, res, self.infra)

    def default_resources(self) -> Resources:
        """Total resources of the engine's default container shape."""
        req = self.default_request
        return Resources(cores=req.cores * req.instances,
                         memory_gb=req.memory_gb * req.instances)

    def request_for(self, resources: Resources | None) -> ContainerRequest:
        """Translate a resource ask into a container request shape."""
        if resources is None:
            return self.default_request
        if self.centralized:
            return ContainerRequest(
                cores=resources.cores, memory_gb=resources.memory_gb, instances=1
            )
        per = self.default_request
        instances = max(
            1,
            int(np.ceil(resources.cores / per.cores)),
            int(np.ceil(resources.memory_gb / per.memory_gb)),
        )
        return ContainerRequest(per.cores, per.memory_gb, instances)

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        algorithm: str,
        workload: Workload,
        resources: Resources | None = None,
        operator_name: str | None = None,
        impl=None,
        impl_input=None,
    ) -> ExecutionResult:
        """Run one operator: allocate containers, charge time, record metrics.

        ``impl``/``impl_input`` optionally run a real Python implementation
        (repro.analytics) so the result carries a genuine artifact; timing
        always comes from the calibrated profile.
        """
        if not self.available:
            raise EngineUnavailableError(f"engine {self.name} is OFF")
        if algorithm not in self.profiles:
            raise KeyError(f"engine {self.name} has no {algorithm!r} implementation")
        res = resources if resources is not None else self.default_resources()
        request = self.request_for(res)
        containers = self.scheduler.allocate(request)
        started = self.clock.now
        self._runs += 1
        try:
            true_time = self.profiles[algorithm].seconds(workload, res, self.infra)
        except MemoryExceededError as exc:
            self.scheduler.release_all_of(containers)
            failure = MetricRecord(
                operator=operator_name or algorithm,
                algorithm=algorithm,
                engine=self.name,
                exec_time=float("inf"),
                started_at=started,
                success=False,
                error=str(exc),
                input_size=workload.size_gb * 1e9,
                input_count=workload.count,
                cores=res.cores,
                memory_gb=res.memory_gb,
                params=dict(workload.params),
            )
            self.collector.record(failure)
            raise
        noise = float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        exec_time = true_time * noise
        self.clock.advance(exec_time)
        output = impl(impl_input) if impl is not None else None
        record = MetricRecord(
            operator=operator_name or algorithm,
            algorithm=algorithm,
            engine=self.name,
            exec_time=exec_time,
            started_at=started,
            input_size=workload.size_gb * 1e9,
            input_count=workload.count,
            output_size=workload.size_gb * 1e9 * 0.5,
            output_cardinality=workload.count,
            cores=res.cores,
            memory_gb=res.memory_gb,
            params=dict(workload.params),
            timeline=synthesize_timeline(
                exec_time, res.cores, res.memory_gb,
                seed=timeline_seed(operator_name or algorithm, self.name,
                                   started),
            ),
        )
        self.collector.record(record)
        self.scheduler.release_all_of(containers)
        return ExecutionResult(record=record, output=output)

    def __repr__(self) -> str:
        return f"Engine({self.name!r}, {self.kind}, {self.status})"
