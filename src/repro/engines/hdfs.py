"""A simulated HDFS: block-based namespace with replication over the cluster.

The paper's datasets and intermediate results live in HDFS; this substrate
gives the executor a real place to put artifacts, with the properties that
matter to a scheduler — per-node capacity accounting, block placement,
replication, and under-replication when nodes turn unhealthy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.engines.cluster import Cluster

DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024  # 128 MB
DEFAULT_REPLICATION = 3


class HDFSError(RuntimeError):
    """Namespace or capacity errors of the simulated filesystem."""


@dataclass
class Block:
    """One replicated block: id, size and replica node ids."""
    block_id: int
    size: int
    replicas: list[str]  # node ids


@dataclass
class HDFSFile:
    """A namespace entry: path, size, blocks, optional payload."""
    path: str
    size: int
    replication: int
    blocks: list[Block] = field(default_factory=list)
    payload: object | None = None  # optional real artifact


class SimHDFS:
    """Block storage spread across the cluster's healthy nodes."""

    def __init__(
        self,
        cluster: Cluster,
        disk_gb_per_node: float = 200.0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
    ) -> None:
        self.cluster = cluster
        self.block_size = block_size
        self.replication = replication
        self._capacity = {n: disk_gb_per_node * 1e9 for n in cluster.nodes}
        self._used = {n: 0.0 for n in cluster.nodes}
        self._files: dict[str, HDFSFile] = {}
        self._block_ids = itertools.count(1)

    # -- namespace --------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether a path exists in the namespace."""
        return path in self._files

    def ls(self, prefix: str = "/") -> list[str]:
        """Paths under a prefix, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def stat(self, path: str) -> HDFSFile:
        """File metadata (HDFSError if absent)."""
        try:
            return self._files[path]
        except KeyError:
            raise HDFSError(f"no such file: {path}") from None

    # -- write/read ---------------------------------------------------------
    def put(
        self,
        path: str,
        size_bytes: float,
        payload: object | None = None,
        overwrite: bool = False,
    ) -> HDFSFile:
        """Write a file: split into blocks, place replicas on distinct nodes."""
        if size_bytes < 0:
            raise HDFSError("negative file size")
        if self.exists(path):
            if not overwrite:
                raise HDFSError(f"file exists: {path}")
            self.rm(path)
        size = int(size_bytes)
        n_blocks = max(1, -(-size // self.block_size))
        replication = min(self.replication, len(self.cluster.healthy_nodes()))
        if replication == 0:
            raise HDFSError("no healthy datanodes")
        file = HDFSFile(path, size, replication, payload=payload)
        written: list[Block] = []
        try:
            remaining = size
            for _ in range(n_blocks):
                block_size = min(self.block_size, remaining) or min(
                    self.block_size, size)
                block = self._place_block(block_size, replication)
                written.append(block)
                file.blocks.append(block)
                remaining -= block_size
        except HDFSError:
            for block in written:
                self._free_block(block)
            raise
        self._files[path] = file
        return file

    def get(self, path: str) -> object | None:
        """Read a file's payload (None when only the size was simulated)."""
        return self.stat(path).payload

    def rm(self, path: str) -> None:
        """Delete a file and free its blocks."""
        file = self._files.pop(path, None)
        if file is None:
            raise HDFSError(f"no such file: {path}")
        for block in file.blocks:
            self._free_block(block)

    # -- block management ------------------------------------------------------
    def _place_block(self, size: int, replication: int) -> Block:
        candidates = [
            n.node_id for n in self.cluster.healthy_nodes()
            if self._capacity[n.node_id] - self._used[n.node_id] >= size
        ]
        if len(candidates) < replication:
            raise HDFSError(
                f"cannot place a {size}-byte block with replication "
                f"{replication}: only {len(candidates)} nodes have space"
            )
        candidates.sort(key=lambda n: self._used[n])
        replicas = candidates[:replication]
        for node in replicas:
            self._used[node] += size
        return Block(next(self._block_ids), size, replicas)

    def _free_block(self, block: Block) -> None:
        for node in block.replicas:
            if node in self._used:
                self._used[node] = max(0.0, self._used[node] - block.size)
        block.replicas = []

    # -- health interaction ----------------------------------------------------
    def under_replicated_blocks(self) -> list[Block]:
        """Blocks with replicas on unhealthy nodes (what the namenode flags)."""
        healthy = {n.node_id for n in self.cluster.healthy_nodes()}
        out = []
        for file in self._files.values():
            for block in file.blocks:
                live = [r for r in block.replicas if r in healthy]
                if len(live) < file.replication:
                    out.append(block)
        return out

    def re_replicate(self) -> int:
        """Restore replication of degraded blocks; returns blocks healed."""
        healthy = {n.node_id for n in self.cluster.healthy_nodes()}
        healed = 0
        for file in self._files.values():
            for block in file.blocks:
                live = [r for r in block.replicas if r in healthy]
                missing = file.replication - len(live)
                if missing <= 0:
                    continue
                candidates = [
                    n for n in sorted(healthy, key=lambda x: self._used[x])
                    if n not in live
                    and self._capacity[n] - self._used[n] >= block.size
                ]
                new_nodes = candidates[:missing]
                for node in new_nodes:
                    self._used[node] += block.size
                # drop dead replicas from the accounting view
                block.replicas = live + new_nodes
                if len(block.replicas) >= file.replication:
                    healed += 1
        return healed

    # -- capacity ----------------------------------------------------------------
    def df(self) -> dict[str, dict[str, float]]:
        """Per-node usage report (bytes)."""
        return {
            node: {"capacity": self._capacity[node], "used": self._used[node]}
            for node in self._capacity
        }

    @property
    def total_used(self) -> float:
        """Raw bytes used across all datanodes (replicas counted)."""
        return sum(self._used.values())

    @property
    def total_capacity(self) -> float:
        """Raw capacity across all datanodes."""
        return sum(self._capacity.values())
