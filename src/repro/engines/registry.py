"""The multi-engine cloud: cluster + clock + engine catalogue + data movement.

``build_default_cloud()`` reproduces the paper's deployment over 16 VMs:
Hadoop/MapReduce, Spark (with MLlib and SparkSQL), Hama, centralized Java,
Python and scikit runtimes, plus PostgreSQL, MemSQL, Hive and HDFS stores
(D3.3 §4, footnote 9).
"""

from __future__ import annotations

from repro.engines.base import COMPUTE, DATASTORE, Engine
from repro.engines.clock import SimClock
from repro.engines.cluster import Cluster
from repro.engines.containers import ContainerRequest, ContainerScheduler
from repro.engines.monitoring import MetricsCollector
from repro.engines.profiles import DEFAULT_PROFILES, Infrastructure, PerfModel

#: effective inter-store transfer bandwidth (bytes/second)
DEFAULT_BANDWIDTH = 100e6
#: fixed per-transfer latency (connection setup, job submit)
MOVE_LATENCY = 0.5


class MultiEngineCloud:
    """Shared substrate binding cluster, clock, scheduler and engines."""

    def __init__(
        self,
        cluster: Cluster | None = None,
        bandwidth: float = DEFAULT_BANDWIDTH,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster if cluster is not None else Cluster.homogeneous(16, 4, 8.0)
        self.clock = SimClock()
        self.scheduler = ContainerScheduler(self.cluster)
        self.collector = MetricsCollector()
        self.infra = Infrastructure()
        self.bandwidth = bandwidth
        self.seed = seed
        self.engines: dict[str, Engine] = {}
        # the HDFS substrate backing datasets and intermediate artifacts
        from repro.engines.hdfs import SimHDFS

        self.hdfs = SimHDFS(self.cluster)

    # -- engine management -------------------------------------------------
    def add_engine(
        self,
        name: str,
        kind: str = COMPUTE,
        profiles: dict[str, PerfModel] | None = None,
        default_request: ContainerRequest | None = None,
        centralized: bool = False,
        noise_sigma: float = 0.05,
    ) -> Engine:
        """Deploy an engine over the shared cluster/clock/monitoring."""
        if name in self.engines:
            raise ValueError(f"engine {name!r} already deployed")
        if profiles is None:
            profiles = {
                alg: model for (alg, eng), model in DEFAULT_PROFILES.items() if eng == name
            }
        if default_request is None:
            default_request = (
                ContainerRequest(cores=4, memory_gb=8.0, instances=1)
                if centralized
                else ContainerRequest(cores=4, memory_gb=8.0, instances=8)
            )
        engine = Engine(
            name=name,
            kind=kind,
            clock=self.clock,
            scheduler=self.scheduler,
            collector=self.collector,
            infra=self.infra,
            profiles=profiles,
            default_request=default_request,
            centralized=centralized,
            noise_sigma=noise_sigma,
            seed=self.seed + len(self.engines),
        )
        self.engines[name] = engine
        return engine

    def engine(self, name: str) -> Engine:
        """Look an engine up by name."""
        return self.engines[name]

    def available_engines(self) -> set[str]:
        """Names of engines whose service-availability check reports ON."""
        return {name for name, e in self.engines.items() if e.available}

    def kill_engine(self, name: str) -> None:
        """Turn an engine's service OFF."""
        self.engines[name].stop()

    def restart_engine(self, name: str) -> None:
        """Turn an engine's service back ON."""
        self.engines[name].start()

    # -- data movement -------------------------------------------------------
    def move_seconds(self, size_bytes: float, src: str | None, dst: str | None) -> float:
        """True cost of moving data between stores (same store = free)."""
        if src == dst or size_bytes <= 0:
            return 0.0
        return MOVE_LATENCY + size_bytes / (self.bandwidth * self.infra.io_factor ** 0)

    def move(self, size_bytes: float, src: str | None, dst: str | None) -> float:
        """Perform a move: charge the clock, return the elapsed seconds."""
        seconds = self.move_seconds(size_bytes, src, dst)
        self.clock.advance(seconds)
        return seconds

    # -- infrastructure events ----------------------------------------------
    def upgrade_disks_to_ssd(self, io_factor: float = 0.4) -> None:
        """The Figure 16.b event: HDD→SSD swap accelerating IO-bound work."""
        self.infra.io_factor = io_factor

    def degrade_cpu(self, cpu_factor: float) -> None:
        """Temporal degradation (collocated load) slowing all compute."""
        self.infra.cpu_factor = cpu_factor


def build_default_cloud(
    n_nodes: int = 16, cores: int = 4, memory_gb: float = 8.0, seed: int = 0
) -> MultiEngineCloud:
    """The paper's evaluation deployment: all engines over one 16-VM cluster."""
    cloud = MultiEngineCloud(Cluster.homogeneous(n_nodes, cores, memory_gb), seed=seed)
    dist = ContainerRequest(cores=4, memory_gb=8.0, instances=8)
    single = ContainerRequest(cores=4, memory_gb=8.0, instances=1)
    cloud.add_engine("Spark", COMPUTE, default_request=dist)
    cloud.add_engine("MLlib", COMPUTE, default_request=dist)
    cloud.add_engine("SparkSQL", COMPUTE, default_request=dist)
    cloud.add_engine("MapReduce", COMPUTE, default_request=dist)
    cloud.add_engine("Hama", COMPUTE, default_request=dist)
    cloud.add_engine("Hive", COMPUTE, default_request=dist)
    cloud.add_engine("Java", COMPUTE, default_request=single, centralized=True)
    cloud.add_engine("Python", COMPUTE, default_request=single, centralized=True)
    cloud.add_engine("scikit", COMPUTE, default_request=single, centralized=True)
    cloud.add_engine("PostgreSQL", DATASTORE, default_request=single, centralized=True)
    cloud.add_engine("MemSQL", DATASTORE, default_request=dist)
    cloud.add_engine("HDFS", DATASTORE, profiles={}, default_request=dist)
    return cloud
