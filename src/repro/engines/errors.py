"""Failure modes of the simulated multi-engine cloud."""


class EngineError(RuntimeError):
    """Base class for engine-side failures."""


class MemoryExceededError(EngineError):
    """The working set exceeded the engine's usable memory (simulated OOM).

    Mirrors the paper's observations that the centralized Java Pagerank and
    MemSQL fail once inputs outgrow single-node / aggregate cluster memory.
    """


class EngineUnavailableError(EngineError):
    """The engine service is OFF (killed or not deployed)."""


class InsufficientResourcesError(EngineError):
    """The YARN-like scheduler cannot satisfy a container request."""


class TransientEngineError(EngineError):
    """A transient engine-side fault (flaky RPC, momentary pressure, crash).

    Unlike a permanent kill, the engine stays deployed and a retry of the
    same step may well succeed — the resilience layer retries these with
    backoff before escalating to a replan.
    """


class StepTimeoutError(TransientEngineError):
    """A step exceeded its per-step timeout (straggler detection).

    Raised when a step's (projected) runtime blows past the resilience
    policy's deadline; treated as transient because re-execution — possibly
    on another engine — usually finishes in nominal time.
    """
