"""Failure modes of the simulated multi-engine cloud."""


class EngineError(RuntimeError):
    """Base class for engine-side failures."""


class MemoryExceededError(EngineError):
    """The working set exceeded the engine's usable memory (simulated OOM).

    Mirrors the paper's observations that the centralized Java Pagerank and
    MemSQL fail once inputs outgrow single-node / aggregate cluster memory.
    """


class EngineUnavailableError(EngineError):
    """The engine service is OFF (killed or not deployed)."""


class InsufficientResourcesError(EngineError):
    """The YARN-like scheduler cannot satisfy a container request."""
