"""Calibrated ground-truth performance models of the simulated engines.

The paper measured real engines on a 16-VM OpenStack cluster; here each
(algorithm, engine) pair gets an analytic cost model calibrated to reproduce
the *shape* of the paper's Figures 11–13 and 17: which engine wins at which
input scale, where memory cliffs sit, and how resources trade off against
time.  IReS never reads these models directly — it profiles the engines and
learns its own estimators, exactly as it would against real systems.

Model form (per operator run)::

    seconds = cpu_factor * (fixed + variable)
    variable = per_unit * units * param  ·  [ref_cores/cores if parallel]
                                         ·  [io mix with infra.io_factor]
    working set = mem_bytes_per_unit * units  — OOM or spill when exceeded

``Infrastructure`` captures global infrastructure state; the Figure 16.b
experiment flips ``io_factor`` (HDD→SSD upgrade) mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.errors import MemoryExceededError

GB = 1e9


@dataclass
class Infrastructure:
    """Global infrastructure state the performance models depend on."""

    #: multiplier on IO-bound work (1.0 = HDDs; the SSD upgrade of Fig 16.b
    #: sets this to ~0.4)
    io_factor: float = 1.0
    #: multiplier on all compute (temporal degradations, collocation, load)
    cpu_factor: float = 1.0


@dataclass
class Workload:
    """What an operator run processes: a count, a byte size and parameters."""

    count: float = 0.0
    size_gb: float = 0.0
    params: dict = field(default_factory=dict)

    @classmethod
    def of_count(cls, count: float, bytes_per_item: float = 100.0, **params) -> "Workload":
        """Workload from an item count and a bytes-per-item factor."""
        return cls(count=count, size_gb=count * bytes_per_item / GB, params=params)


@dataclass
class Resources:
    """Resources granted to one operator execution."""

    cores: int = 4
    memory_gb: float = 8.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_gb <= 0:
            raise ValueError(f"invalid resources {self}")


@dataclass
class PerfModel:
    """Analytic cost model for one (algorithm, engine) pair."""

    fixed: float
    per_unit: float
    unit: str = "count"  # "count" | "size_gb"
    parallel: bool = False
    ref_cores: int = 4
    mem_bytes_per_unit: float = 0.0
    spill: bool = False  # exceeding memory slows down instead of failing
    io_fraction: float = 0.0
    param_scale: str | None = None  # e.g. "iterations" multiplies the variable part

    def units(self, workload: Workload) -> float:
        """The model's unit measure of a workload (count or GB)."""
        return workload.count if self.unit == "count" else workload.size_gb

    def memory_needed_gb(self, workload: Workload) -> float:
        """Working-set size of a workload under this model."""
        return self.mem_bytes_per_unit * self.units(workload) / GB

    def seconds(
        self,
        workload: Workload,
        resources: Resources,
        infra: Infrastructure | None = None,
    ) -> float:
        """True execution time; raises MemoryExceededError on simulated OOM."""
        infra = infra if infra is not None else Infrastructure()
        units = self.units(workload)
        param = 1.0
        if self.param_scale is not None:
            param = float(workload.params.get(self.param_scale, 1.0))
        variable = self.per_unit * units * param
        if self.parallel:
            variable *= self.ref_cores / max(resources.cores, 1)
        if self.io_fraction:
            variable *= (
                self.io_fraction * infra.io_factor + (1.0 - self.io_fraction)
            )
        needed = self.memory_needed_gb(workload)
        if needed > resources.memory_gb:
            if not self.spill:
                raise MemoryExceededError(
                    f"working set {needed:.2f} GB exceeds {resources.memory_gb:.2f} GB"
                )
            variable *= 1.0 + 0.8 * (needed / resources.memory_gb - 1.0)
        return infra.cpu_factor * (self.fixed + variable)


# ---------------------------------------------------------------------------
# Calibrated catalogue.  Units: pagerank=edges, tf-idf/k-means=documents,
# wordcount/linecount/SQL=GB.  Calibration targets are documented inline and
# cross-checked by tests/test_profiles.py and the figure benchmarks.
# ---------------------------------------------------------------------------

DEFAULT_PROFILES: dict[tuple[str, str], PerfModel] = {
    # -- Figure 11: Pagerank.  Java wins below ~7M edges, Hama 7M–90M
    # (in-memory BSP, dies past aggregate memory), Spark scales (spills).
    ("pagerank", "Java"): PerfModel(
        fixed=2.0, per_unit=2.0e-7, param_scale="iterations",
        mem_bytes_per_unit=800.0,  # heap-object-heavy: 8 GB node tops at 1e7 edges
    ),
    ("pagerank", "Hama"): PerfModel(
        fixed=12.0, per_unit=6.0e-8, parallel=True, ref_cores=32,
        param_scale="iterations",
        mem_bytes_per_unit=700.0,  # 64 GB aggregate tops at ~9e7 edges
    ),
    ("pagerank", "Spark"): PerfModel(
        fixed=20.0, per_unit=9.0e-8, parallel=True, ref_cores=32,
        param_scale="iterations", mem_bytes_per_unit=500.0, spill=True,
        io_fraction=0.4,
    ),
    # -- Figure 12: tf-idf + k-means.  scikit centralized wins small inputs;
    # crossovers at ~37k (tf-idf) and ~11k docs (k-means) make the hybrid
    # scikit→Spark plan optimal in the 10k–40k band.
    ("TF_IDF", "scikit"): PerfModel(
        fixed=1.0, per_unit=4.0e-4, mem_bytes_per_unit=6.0e4,
    ),
    ("TF_IDF", "Spark"): PerfModel(
        fixed=15.0, per_unit=1.0e-4, parallel=True, ref_cores=32,
        mem_bytes_per_unit=3.0e4, spill=True, io_fraction=0.3,
    ),
    ("kmeans", "scikit"): PerfModel(
        fixed=1.0, per_unit=8.0e-4, param_scale="k_factor",
        mem_bytes_per_unit=5.0e4,
    ),
    ("kmeans", "Spark"): PerfModel(
        fixed=7.0, per_unit=1.0e-4, parallel=True, ref_cores=32,
        param_scale="k_factor", mem_bytes_per_unit=2.0e4, spill=True,
    ),
    # -- Figure 13: TPC-H-derived queries.  q1 touches small legacy tables
    # (PostgreSQL-resident), q2 medium in-memory tables (MemSQL), q3 the
    # big HDFS facts.  MemSQL OOMs past ~2 GB of intermediate state on q3.
    ("tpch_q1", "PostgreSQL"): PerfModel(fixed=0.5, per_unit=3.0, unit="size_gb",
                                         io_fraction=0.7),
    ("tpch_q1", "MemSQL"): PerfModel(fixed=0.3, per_unit=1.2, unit="size_gb"),
    ("tpch_q1", "SparkSQL"): PerfModel(fixed=8.0, per_unit=0.8, unit="size_gb",
                                       parallel=True, ref_cores=32),
    ("tpch_q2", "PostgreSQL"): PerfModel(fixed=0.5, per_unit=6.0, unit="size_gb",
                                         io_fraction=0.7),
    ("tpch_q2", "MemSQL"): PerfModel(fixed=0.3, per_unit=1.0, unit="size_gb",
                                     mem_bytes_per_unit=0.35 * GB),
    ("tpch_q2", "SparkSQL"): PerfModel(fixed=8.0, per_unit=1.0, unit="size_gb",
                                       parallel=True, ref_cores=32),
    ("tpch_q3", "PostgreSQL"): PerfModel(fixed=0.5, per_unit=10.0, unit="size_gb",
                                         io_fraction=0.7),
    ("tpch_q3", "MemSQL"): PerfModel(fixed=0.3, per_unit=1.5, unit="size_gb",
                                     mem_bytes_per_unit=28.0 * GB),  # OOM > ~2 GB scale
    ("tpch_q3", "SparkSQL"): PerfModel(fixed=9.0, per_unit=1.6, unit="size_gb",
                                       parallel=True, ref_cores=32, spill=True,
                                       io_fraction=0.5),
    # -- Figure 16: profiled single-operator workloads.
    ("wordcount", "MapReduce"): PerfModel(
        fixed=3.0, per_unit=65.0, unit="size_gb", parallel=True, ref_cores=16,
        io_fraction=0.65, mem_bytes_per_unit=0.15 * GB, spill=True,
    ),
    ("LineCount", "Spark"): PerfModel(fixed=6.0, per_unit=4.0, unit="size_gb",
                                      parallel=True, ref_cores=16),
    ("LineCount", "Python"): PerfModel(fixed=0.2, per_unit=11.0, unit="size_gb",
                                       io_fraction=0.8),
    # -- Figures 18-22: the HelloWorld fault-tolerance chain (Table 1).
    ("HelloWorld", "Python"): PerfModel(fixed=2.0, per_unit=0.0),
    ("HelloWorld1", "Spark"): PerfModel(fixed=14.0, per_unit=0.5, unit="size_gb",
                                        parallel=True, ref_cores=16),
    ("HelloWorld1", "Python"): PerfModel(fixed=6.0, per_unit=4.0, unit="size_gb"),
    ("HelloWorld2", "Spark"): PerfModel(fixed=12.0, per_unit=0.6, unit="size_gb",
                                        parallel=True, ref_cores=16),
    ("HelloWorld2", "MLlib"): PerfModel(fixed=9.0, per_unit=0.8, unit="size_gb",
                                        parallel=True, ref_cores=16),
    ("HelloWorld2", "PostgreSQL"): PerfModel(fixed=1.0, per_unit=7.0, unit="size_gb",
                                             io_fraction=0.7),
    ("HelloWorld2", "Hive"): PerfModel(fixed=18.0, per_unit=2.0, unit="size_gb",
                                       parallel=True, ref_cores=16),
    ("HelloWorld3", "Spark"): PerfModel(fixed=13.0, per_unit=0.5, unit="size_gb",
                                        parallel=True, ref_cores=16),
    ("HelloWorld3", "Python"): PerfModel(fixed=4.0, per_unit=5.0, unit="size_gb"),
}


def get_profile(algorithm: str, engine: str) -> PerfModel:
    """Look up the calibrated profile of an (algorithm, engine) pair."""
    try:
        return DEFAULT_PROFILES[(algorithm, engine)]
    except KeyError:
        raise KeyError(
            f"no performance profile for algorithm {algorithm!r} on engine {engine!r}"
        ) from None
