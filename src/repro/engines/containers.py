"""YARN-like container allocation (D3.3 §2.3).

The paper's enforcer asks YARN for container resources per workflow operator
(extending Cloudera Kitten to run operator DAGs).  This module reproduces the
request/grant/release life cycle against the simulated cluster with a
first-fit-decreasing placement policy over healthy nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.engines.cluster import Cluster, Node
from repro.engines.errors import InsufficientResourcesError


@dataclass(frozen=True)
class ContainerRequest:
    """Resources asked for one operator, Kitten-style."""

    cores: int = 1
    memory_gb: float = 1.0
    instances: int = 1

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_gb <= 0 or self.instances < 1:
            raise ValueError(f"invalid container request {self}")


@dataclass
class Container:
    """A granted container pinned to a node."""

    container_id: str
    node: Node
    cores: int
    memory_gb: float
    released: bool = False


class ContainerScheduler:
    """Grants containers on healthy nodes; releases return capacity."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._ids = itertools.count(1)
        self._live: dict[str, Container] = {}

    def allocate(self, request: ContainerRequest) -> list[Container]:
        """Grant all instances of a request or raise (all-or-nothing).

        Placement is first-fit over healthy nodes sorted by free cores
        (descending), the usual YARN-ish spreading heuristic.
        """
        granted: list[Container] = []
        for _ in range(request.instances):
            node = self._pick_node(request)
            if node is None:
                for c in granted:
                    self.release(c)
                raise InsufficientResourcesError(
                    f"cannot place {request} (available: "
                    f"{self.cluster.available_cores} cores, "
                    f"{self.cluster.available_memory_gb:.1f} GB)"
                )
            node.cores_used += request.cores
            node.memory_used += request.memory_gb
            container = Container(
                f"container_{next(self._ids):06d}", node, request.cores, request.memory_gb
            )
            self._live[container.container_id] = container
            granted.append(container)
        return granted

    def _pick_node(self, request: ContainerRequest) -> Node | None:
        candidates = [
            n
            for n in self.cluster.healthy_nodes()
            if n.cores_free >= request.cores and n.memory_free >= request.memory_gb
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda n: (n.cores_free, n.memory_free))

    def release(self, container: Container) -> None:
        """Return a container's resources (idempotent)."""
        if container.released:
            return
        container.node.cores_used -= container.cores
        container.node.memory_used -= container.memory_gb
        container.released = True
        self._live.pop(container.container_id, None)

    def release_all_of(self, containers: list[Container]) -> None:
        """Release a specific set of containers."""
        for container in containers:
            self.release(container)

    def release_all(self) -> None:
        """Release every live container."""
        for container in list(self._live.values()):
            self.release(container)

    @property
    def live_containers(self) -> list[Container]:
        """Containers currently granted."""
        return list(self._live.values())

    def utilization(self) -> dict[str, float]:
        """Cluster-wide fraction of cores/memory currently granted."""
        total_c = self.cluster.total_cores or 1
        total_m = self.cluster.total_memory_gb or 1.0
        used_c = sum(n.cores_used for n in self.cluster.nodes.values())
        used_m = sum(n.memory_used for n in self.cluster.nodes.values())
        return {"cores": used_c / total_c, "memory": used_m / total_m}
