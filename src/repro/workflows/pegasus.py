"""Pegasus-style scientific workflow generators.

The planner-performance experiments (Figures 14–15) use the Pegasus workflow
generator's five categories (Bharathi et al., "Characterization of scientific
workflows", 2008).  These generators reproduce their structural skeletons:

- **Montage** (astronomy): highly connected — mProjectPP fan-out, pairwise
  mDiffFit over overlapping images, global mConcatFit/mBgModel, mBackground
  fan-out, aggregation chain.  Multiple nodes with high in-/out-degree.
- **CyberShake** (earthquake science): ExtractSGT fan-out, per-SGT synthesis
  fan-out, two global zips.
- **Epigenomics** (biology): parallel 4-stage pipelines between a global
  split and merge — "pipelined applications that split up input datasets and
  operate on different chunks in parallel".
- **Inspiral** (gravitational physics): template-bank/matched-filter stages
  with group-wise coincidence tests.
- **Sipht** (biology): wide Patser fan-in plus a fixed side-chain, "a
  relatively fixed structure performing identical analyses on multiple
  inputs".

Each generator targets an approximate *operator* count; the paper's x-axis
("number of workflow nodes") is matched by ``len(wf.operators)``.
:func:`synthetic_library` then builds ``m`` alternative implementations per
abstract operator so the planner's ``O(op·m²·k)`` behaviour can be measured.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.library import OperatorLibrary
from repro.core.operators import AbstractOperator, MaterializedOperator
from repro.core.workflow import AbstractWorkflow


class _Builder:
    """Small helper assembling operator→dataset chains without name clashes."""

    def __init__(self, name: str) -> None:
        self.wf = AbstractWorkflow(name)
        self._n = 0

    def source(self, name: str, size: float = 1e8) -> str:
        """Add a materialized input dataset."""
        self.wf.add_dataset(Dataset(name, {
            "Constraints.type": "data",
            "Optimization.size": size,
        }, materialized=True))
        return name

    def op(self, algorithm: str, inputs: list[str]) -> str:
        """Add one operator of the given stage consuming ``inputs``;
        returns the name of its (fresh) output dataset."""
        self._n += 1
        op_name = f"{algorithm}_{self._n}"
        out_name = f"d_{op_name}"
        self.wf.add_operator(AbstractOperator(op_name, {
            "Constraints.OpSpecification.Algorithm.name": algorithm,
            "Constraints.Input.number": len(inputs),
            "Constraints.Output.number": 1,
        }))
        self.wf.add_dataset(Dataset(out_name))
        for ds in inputs:
            self.wf.connect(ds, op_name)
        self.wf.connect(op_name, out_name)
        return out_name

    def finish(self, target: str) -> AbstractWorkflow:
        """Set the target, validate, return the workflow."""
        self.wf.set_target(target)
        self.wf.validate()
        return self.wf


def montage(n_tasks: int = 30, seed: int = 0) -> AbstractWorkflow:
    """Montage: ~4.5k+4 operators for k input images; densely connected."""
    k = max(2, round((n_tasks - 4) / 4.5))
    rng = np.random.default_rng(seed)
    b = _Builder(f"montage-{n_tasks}")
    raw = [b.source(f"img{i}", size=2e8) for i in range(k)]
    proj = [b.op("mProjectPP", [raw[i]]) for i in range(k)]
    # adjacent overlaps + ~50% extra random overlaps -> high degrees
    pairs = [(i, i + 1) for i in range(k - 1)]
    extra = max(0, round(0.5 * k))
    for _ in range(extra):
        i, j = rng.choice(k, size=2, replace=False)
        pairs.append((int(min(i, j)), int(max(i, j))))
    diffs = [b.op("mDiffFit", [proj[i], proj[j]]) for i, j in pairs]
    concat = b.op("mConcatFit", diffs)
    bg_model = b.op("mBgModel", [concat])
    backgrounds = [b.op("mBackground", [proj[i], bg_model]) for i in range(k)]
    img_tbl = b.op("mImgTbl", backgrounds)
    madd = b.op("mAdd", [img_tbl])
    shrink = b.op("mShrink", [madd])
    return b.finish(b.op("mJPEG", [shrink]))


def cybershake(n_tasks: int = 30, seed: int = 0) -> AbstractWorkflow:
    """CyberShake: ~5k+2 operators for k rupture variations."""
    k = max(1, round((n_tasks - 2) / 5))
    b = _Builder(f"cybershake-{n_tasks}")
    sgt_vars = [b.source(f"sgtvar{i}", size=5e8) for i in range(k)]
    seismograms = []
    peaks = []
    for i in range(k):
        sgt = b.op("ExtractSGT", [sgt_vars[i]])
        for j in range(2):
            synth = b.op("SeismogramSynthesis", [sgt])
            seismograms.append(synth)
            peaks.append(b.op("PeakValCalcOkaya", [synth]))
    zip_seis = b.op("ZipSeis", seismograms)
    zip_psa = b.op("ZipPSA", peaks)
    # terminal stage-out collecting both archives, so the whole graph feeds
    # the single $$target the planner optimizes for
    return b.finish(b.op("StageOut", [zip_seis, zip_psa]))


def epigenomics(n_tasks: int = 30, seed: int = 0) -> AbstractWorkflow:
    """Epigenomics: L parallel 4-stage pipelines between split and merge."""
    lanes = max(1, round((n_tasks - 4) / 4))
    b = _Builder(f"epigenomics-{n_tasks}")
    dna = b.source("dna", size=1e9)
    split = b.op("fastQSplit", [dna])
    mapped = []
    for _ in range(lanes):
        chunk = b.op("filterContams", [split])
        sanger = b.op("sol2sanger", [chunk])
        bfq = b.op("fastq2bfq", [sanger])
        mapped.append(b.op("map", [bfq]))
    merge = b.op("mapMerge", mapped)
    index = b.op("maqIndex", [merge])
    return b.finish(b.op("pileup", [index]))


def inspiral(n_tasks: int = 30, seed: int = 0) -> AbstractWorkflow:
    """Inspiral (LIGO): ~2k + 2k/g + 2 operators, group size g=3."""
    g = 3
    k = max(g, round((n_tasks - 2) / (2 + 2 / g)))
    b = _Builder(f"inspiral-{n_tasks}")
    frames = [b.source(f"frame{i}", size=3e8) for i in range(k)]
    inspirals = []
    for i in range(k):
        bank = b.op("TmpltBank", [frames[i]])
        inspirals.append(b.op("Inspiral", [bank]))
    thinca2 = []
    for start in range(0, k, g):
        group = inspirals[start : start + g]
        thinca = b.op("Thinca", group)
        trig = b.op("TrigBank", [thinca])
        thinca2.append(trig)
    return b.finish(b.op("Thinca2", thinca2))


def sipht(n_tasks: int = 30, seed: int = 0) -> AbstractWorkflow:
    """Sipht: wide Patser fan-in plus a fixed ~8-operator side chain."""
    fixed = 8
    p = max(1, n_tasks - fixed)
    b = _Builder(f"sipht-{n_tasks}")
    genome = b.source("genome", size=4e8)
    patsers = [b.op("Patser", [genome]) for _ in range(p)]
    patser_concat = b.op("PatserConcat", patsers)
    # the fixed side chain of individual analyses
    blast = b.op("Blast", [genome])
    tfbs = b.op("FindTerm", [genome])
    rna = b.op("RNAMotif", [genome])
    transterm = b.op("Transterm", [genome])
    srna = b.op("SRNA", [blast, tfbs, rna, transterm])
    annotate = b.op("SRNAAnnotate", [srna, patser_concat])
    return b.finish(b.op("FFNParse", [annotate]))


CATEGORIES = {
    "Montage": montage,
    "CyberShake": cybershake,
    "Epigenomics": epigenomics,
    "Inspiral": inspiral,
    "Sipht": sipht,
}


def generate(category: str, n_tasks: int, seed: int = 0) -> AbstractWorkflow:
    """Generate a workflow of the given Pegasus category and approximate size."""
    try:
        factory = CATEGORIES[category]
    except KeyError:
        raise ValueError(
            f"unknown category {category!r}; pick one of {sorted(CATEGORIES)}"
        ) from None
    return factory(n_tasks, seed)


def synthetic_library(
    workflow: AbstractWorkflow, n_engines: int, seed: int = 0
) -> OperatorLibrary:
    """Build ``n_engines`` implementations of every stage of a workflow.

    Each implementation is bound to a synthetic engine/store pair with a
    random static cost, and input/output format specs that force the planner
    to reason about move operators between engines — reproducing the m² term
    of the planner's complexity.
    """
    rng = np.random.default_rng(seed)
    # instances of one stage may differ in fan-in (e.g. Thinca groups), so
    # implementations are generated per distinct (algorithm, arity) shape
    shapes = sorted({
        (op.algorithm, max(op.n_inputs, 1)) for op in workflow.operators.values()
    })
    library = OperatorLibrary()
    for alg, arity in shapes:
        for j in range(n_engines):
            props = {
                "Constraints.OpSpecification.Algorithm.name": alg,
                "Constraints.Engine": f"engine{j}",
                "Constraints.Input.number": arity,
                "Constraints.Output.number": 1,
                "Constraints.Output0.Engine.FS": f"store{j}",
                "Constraints.Output0.type": "data",
                "Optimization.execTime": float(rng.uniform(1.0, 100.0)),
                "Optimization.cost": float(rng.uniform(1.0, 100.0)),
            }
            for i in range(arity):
                props[f"Constraints.Input{i}.Engine.FS"] = f"store{j}"
                props[f"Constraints.Input{i}.type"] = "data"
            library.add(MaterializedOperator(f"{alg}_k{arity}_e{j}", props))
    return library
