"""Scientific workflow generators (Pegasus categories, Bharathi et al. 2008)."""

from repro.workflows.pegasus import (
    CATEGORIES,
    cybershake,
    epigenomics,
    generate,
    inspiral,
    montage,
    sipht,
    synthetic_library,
)

__all__ = [
    "CATEGORIES",
    "cybershake",
    "epigenomics",
    "generate",
    "inspiral",
    "montage",
    "sipht",
    "synthetic_library",
]
