"""The IReS External API (§3.5): a RESTful surface over the platform."""

from repro.api.rest import ApiError, IResServer, Response
from repro.api.service import AdmissionError, IResService, RunRecord

__all__ = [
    "AdmissionError",
    "ApiError",
    "IResServer",
    "IResService",
    "Response",
    "RunRecord",
]
