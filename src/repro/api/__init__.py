"""The IReS External API (§3.5): a RESTful surface over the platform."""

from repro.api.rest import ApiError, IResServer, Response

__all__ = ["ApiError", "IResServer", "Response"]
