"""The IReS External API — the §3.5 RESTful surface, in process.

The deliverable exposes IReS to the other ASAP components through a REST
API (list/materialize/execute workflows, manage operators and datasets,
inspect engines and models).  This module reproduces that surface as an
in-process router: :meth:`IResServer.handle` takes ``(method, path, body)``
and returns a :class:`Response` with a JSON-serializable payload, so any
transport (an actual HTTP server, tests, the CLI) can sit on top.

Routes:

====== ================================================= =====================
GET    /abstractWorkflows                                 list workflows
GET    /abstractWorkflows/{name}                          one workflow
POST   /abstractWorkflows/{name}                          define from graph
POST   /abstractWorkflows/{name}/materialize              plan it
POST   /abstractWorkflows/{name}/execute                  plan + run it
GET    /operators                                         materialized ops
POST   /operators/{name}                                  add one (properties)
GET    /operators/{name}                                  one description
DELETE /operators/{name}                                  remove it
GET    /abstractOperators                                 abstract ops
POST   /abstractOperators/{name}                          add one
GET    /datasets                                          datasets
POST   /datasets/{name}                                   add one
GET    /engines                                           engine catalogue
GET    /engines/health                                    cluster health report
POST   /engines/{name}/stop                               kill a service
POST   /engines/{name}/start                              restart a service
GET    /models/{algorithm}/{engine}                       trained model info
GET    /resilience                                        retry/breaker status
POST   /resilience/breakers/{engine}/reset                close one breaker
POST   /lint                                              static analysis
GET    /metrics                                           Prometheus text
GET    /plancache                                         plan-cache counters
DELETE /plancache                                         invalidate the cache
GET    /traces                                            collected run ids
GET    /traces/{run_id}                                   one run's Chrome trace
GET    /accuracy                                          prediction-error stats
GET    /explain                                           runs with provenance
GET    /explain/{run_id}                                  one run's explain report
POST   /runs                                              submit a run (async)
GET    /runs                                              list submitted runs
GET    /runs/{run_id}                                     one run's status
POST   /runs/{run_id}/cancel                              cancel queued/running
POST   /runs/{run_id}/recover                             resume from journal
GET    /runs/{run_id}/timeline                            merged run timeline
GET    /runs/{run_id}/profile                             one run's profile
GET    /profile                                           live service profile
GET    /profile/flamegraph                                profile as HTML
GET    /service                                           service stats
GET    /cluster                                           shared-cluster state
GET    /tenants                                           per-tenant accounting
GET    /slo                                               SLO burn-rate status
GET    /dashboard                                         live HTML dashboard
====== ================================================= =====================

The ``/runs`` and ``/service`` resources need an attached
:class:`~repro.api.service.IResService` (what ``ires serve`` wires up);
without one they answer 503.  ``POST /runs`` is asynchronous — it returns
202 with the run id immediately, or 429/503 with a ``retryAfter`` hint when
the service sheds load.

``/metrics`` responds with Prometheus text exposition (``Response.text``);
``/traces/{run_id}`` responds with a Chrome trace-event JSON object that
Perfetto loads directly.  ``POST /lint`` (body: optional ``workflow``,
``strict``) runs the :mod:`repro.analysis` static analyzer over the live
platform and returns the typed ``IRES0xx`` diagnostics report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.dataset import Dataset
from repro.core.operators import AbstractOperator, MaterializedOperator
from repro.core.planner import PlanningError
from repro.core.platform import IReS
from repro.core.workflow import WorkflowError
from repro.execution.enforcer import ExecutionFailed
from repro.obs.metrics import get_registry


class ApiError(Exception):
    """An error with an HTTP-style status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Response:
    """An HTTP-style status code plus a JSON-able body.

    Non-JSON endpoints (``/metrics``) set ``text`` instead of ``body`` and
    flag it with ``content_type``.
    """
    status: int
    body: dict = field(default_factory=dict)
    text: str | None = None
    content_type: str = "application/json"

    def json(self) -> str:
        """The body serialized as a JSON string."""
        return json.dumps(self.body, sort_keys=True)

    def payload(self) -> str:
        """What a transport should write: ``text`` if set, else the JSON."""
        return self.text if self.text is not None else self.json()


class IResServer:
    """Routes API requests to an :class:`IReS` platform instance."""

    def __init__(self, ires: IReS | None = None, service=None) -> None:
        self.ires = ires if ires is not None else IReS()
        #: optional IResService backing the async /runs resource
        self.service = service

    # -- entry point ---------------------------------------------------------
    def handle(self, method: str, path: str, body: dict | None = None) -> Response:
        """Dispatch one request; never raises, errors become responses."""
        body = body or {}
        parts = [p for p in path.split("/") if p]
        try:
            return self._route(method.upper(), parts, body)
        except ApiError as exc:
            return Response(exc.status, {"error": str(exc)})
        except (PlanningError, ExecutionFailed) as exc:
            return Response(409, {"error": str(exc)})
        except (WorkflowError, ValueError, KeyError) as exc:
            return Response(400, {"error": str(exc)})

    # -- routing -----------------------------------------------------------
    def _route(self, method: str, parts: list[str], body: dict) -> Response:
        if not parts:
            return Response(200, {"service": "IReS", "status": "up"})
        head, rest = parts[0], parts[1:]
        handler = getattr(self, f"_{head}", None)
        if handler is None:
            raise ApiError(404, f"unknown resource {head!r}")
        return handler(method, rest, body)

    @staticmethod
    def _expect(condition: bool, status: int, message: str) -> None:
        if not condition:
            raise ApiError(status, message)

    # -- /abstractWorkflows ---------------------------------------------------
    def _abstractWorkflows(self, method, rest, body) -> Response:
        ires = self.ires
        if not rest:
            self._expect(method == "GET", 405, "use GET")
            return Response(200, {"workflows": sorted(ires.workflows)})
        name = rest[0]
        if len(rest) == 1:
            if method == "GET":
                workflow = ires.workflows.get(name)
                self._expect(workflow is not None, 404, f"no workflow {name!r}")
                return Response(200, {
                    "name": name,
                    "target": workflow.target,
                    "operators": sorted(workflow.operators),
                    "datasets": sorted(workflow.datasets),
                })
            if method == "POST":
                graph = body.get("graph")
                self._expect(isinstance(graph, list), 400,
                             "body needs 'graph': [lines]")
                ires.workflow_from_graph(name, graph)
                return Response(201, {"created": name})
            raise ApiError(405, "use GET or POST")
        action = rest[1]
        workflow = ires.workflows.get(name)
        self._expect(workflow is not None, 404, f"no workflow {name!r}")
        self._expect(method == "POST", 405, "use POST")
        if action == "materialize":
            plan = ires.plan(workflow)
            return Response(200, {"name": name, "plan": _plan_json(plan)})
        if action == "execute":
            report = ires.execute(workflow)
            return Response(200, {"name": name, "report": _report_json(report)})
        raise ApiError(404, f"unknown action {action!r}")

    # -- /operators ------------------------------------------------------------
    def _operators(self, method, rest, body) -> Response:
        ires = self.ires
        if not rest:
            self._expect(method == "GET", 405, "use GET")
            return Response(200, {
                "operators": sorted(op.name for op in ires.library)})
        name = rest[0]
        if method == "GET":
            self._expect(name in ires.library, 404, f"no operator {name!r}")
            return Response(200, {
                "name": name,
                "properties": ires.library.get(name).metadata.to_properties(),
            })
        if method == "POST":
            properties = body.get("properties")
            self._expect(isinstance(properties, dict), 400,
                         "body needs 'properties': {...}")
            ires.register_operator(MaterializedOperator(name, properties))
            return Response(201, {"created": name})
        if method == "DELETE":
            self._expect(name in ires.library, 404, f"no operator {name!r}")
            ires.library.remove(name)
            return Response(200, {"deleted": name})
        raise ApiError(405, "use GET, POST or DELETE")

    # -- /abstractOperators -------------------------------------------------------
    def _abstractOperators(self, method, rest, body) -> Response:
        ires = self.ires
        if not rest:
            self._expect(method == "GET", 405, "use GET")
            return Response(200, {
                "abstractOperators": sorted(ires.abstract_operators)})
        name = rest[0]
        if method == "GET":
            op = ires.abstract_operators.get(name)
            self._expect(op is not None, 404, f"no abstract operator {name!r}")
            return Response(200, {
                "name": name, "properties": op.metadata.to_properties()})
        if method == "POST":
            properties = body.get("properties")
            self._expect(isinstance(properties, dict), 400,
                         "body needs 'properties': {...}")
            ires.register_abstract(AbstractOperator(name, properties))
            return Response(201, {"created": name})
        raise ApiError(405, "use GET or POST")

    # -- /datasets ---------------------------------------------------------------
    def _datasets(self, method, rest, body) -> Response:
        ires = self.ires
        if not rest:
            self._expect(method == "GET", 405, "use GET")
            return Response(200, {"datasets": sorted(ires.datasets)})
        name = rest[0]
        if method == "GET":
            dataset = ires.datasets.get(name)
            self._expect(dataset is not None, 404, f"no dataset {name!r}")
            return Response(200, {
                "name": name, "properties": dataset.metadata.to_properties()})
        if method == "POST":
            properties = body.get("properties")
            self._expect(isinstance(properties, dict), 400,
                         "body needs 'properties': {...}")
            ires.register_dataset(Dataset(name, properties, materialized=True))
            return Response(201, {"created": name})
        raise ApiError(405, "use GET or POST")

    # -- /engines ---------------------------------------------------------------
    def _engines(self, method, rest, body) -> Response:
        cloud = self.ires.cloud
        if not rest:
            self._expect(method == "GET", 405, "use GET")
            return Response(200, {"engines": {
                name: {"kind": engine.kind, "status": engine.status}
                for name, engine in sorted(cloud.engines.items())
            }})
        if rest[0] == "health":
            self._expect(method == "GET", 405, "use GET")
            return Response(200, {
                "nodes": cloud.cluster.run_health_checks(),
                "availableEngines": sorted(cloud.available_engines()),
            })
        name = rest[0]
        self._expect(name in cloud.engines, 404, f"no engine {name!r}")
        if len(rest) == 2 and method == "POST":
            if rest[1] == "stop":
                cloud.kill_engine(name)
                return Response(200, {"engine": name, "status": "OFF"})
            if rest[1] == "start":
                cloud.restart_engine(name)
                return Response(200, {"engine": name, "status": "ON"})
        raise ApiError(404, "unknown engine action")

    # -- /resilience ---------------------------------------------------------
    def _resilience(self, method, rest, body) -> Response:
        resilience = self.ires.executor.resilience
        self._expect(resilience is not None, 404, "resilience layer disabled")
        if not rest:
            self._expect(method == "GET", 405, "use GET")
            return Response(200, resilience.status())
        self._expect(rest[0] == "breakers" and len(rest) == 3, 404,
                     "use /resilience/breakers/{engine}/reset")
        engine, action = rest[1], rest[2]
        self._expect(engine in self.ires.cloud.engines, 404,
                     f"no engine {engine!r}")
        self._expect(action == "reset", 404, f"unknown action {action!r}")
        self._expect(method == "POST", 405, "use POST")
        breaker = resilience.reset_breaker(engine, self.ires.cloud.clock.now)
        return Response(200, {"engine": engine, "breaker": breaker.status()})

    # -- /lint ---------------------------------------------------------------
    def _lint(self, method, rest, body) -> Response:
        self._expect(method == "POST", 405, "use POST")
        self._expect(not rest, 404, "use /lint")
        workflow = body.get("workflow")
        if workflow is not None:
            self._expect(workflow in self.ires.workflows, 404,
                         f"no workflow {workflow!r}")
        strict = bool(body.get("strict", False))
        collector = self.ires.lint(workflow=workflow)
        return Response(200, collector.to_json(strict=strict))

    # -- /analyze ------------------------------------------------------------
    def _analyze(self, method, rest, body) -> Response:
        """Concurrency-correctness passes (IRES050–063) over Python source.

        ``POST /analyze`` with ``{"paths": [...], "strict": bool}``; paths
        default to the installed ``repro`` package, so a bare POST audits
        the scheduler's own code.
        """
        from pathlib import Path

        import repro
        from repro.analysis.concurrency import analyze_paths

        self._expect(method == "POST", 405, "use POST")
        self._expect(not rest, 404, "use /analyze")
        raw_paths = body.get("paths")
        if raw_paths is None:
            paths = [Path(repro.__file__).parent]
        else:
            self._expect(
                isinstance(raw_paths, list)
                and all(isinstance(p, str) for p in raw_paths),
                400, "body 'paths' must be a list of strings")
            missing = [p for p in raw_paths if not Path(p).exists()]
            self._expect(not missing, 404,
                         f"no such path(s): {', '.join(missing)}")
            paths = [Path(p) for p in raw_paths]
        strict = bool(body.get("strict", False))
        collector = analyze_paths(paths)
        return Response(200, collector.to_json(strict=strict))

    # -- /metrics ------------------------------------------------------------
    def _metrics(self, method, rest, body) -> Response:
        self._expect(method == "GET", 405, "use GET")
        self._expect(not rest, 404, "use /metrics")
        return Response(200, text=get_registry().render(),
                        content_type="text/plain; version=0.0.4")

    # -- /plancache ----------------------------------------------------------
    def _plancache(self, method, rest, body) -> Response:
        self._expect(not rest, 404, "use /plancache")
        cache = self.ires.plan_cache
        self._expect(cache is not None, 404,
                     "plan cache disabled (construct IReS with plan_cache)")
        if method == "GET":
            return Response(200, cache.stats())
        if method == "DELETE":
            dropped = cache.invalidate(reason="api", force=True)
            return Response(200, {"invalidated": dropped, **cache.stats()})
        raise ApiError(405, "use GET or DELETE")

    # -- /traces -------------------------------------------------------------
    def _traces(self, method, rest, body) -> Response:
        self._expect(method == "GET", 405, "use GET")
        tracer = self.ires.tracer
        if not rest:
            runs = [
                {"runId": run_id, "spans": len(tracer.spans(run_id))}
                for run_id in tracer.run_ids()
            ]
            return Response(200, {"runs": runs})
        self._expect(len(rest) == 1, 404, "use /traces/{run_id}")
        run_id = rest[0]
        spans = tracer.spans(run_id)
        self._expect(bool(spans), 404, f"no trace for run {run_id!r}")
        return Response(200, tracer.chrome_trace(run_id))

    # -- /accuracy -----------------------------------------------------------
    def _accuracy(self, method, rest, body) -> Response:
        self._expect(method == "GET", 405, "use GET")
        self._expect(not rest, 404, "use /accuracy")
        ledger = self.ires.ledger
        self._expect(ledger is not None and ledger.enabled, 404,
                     "accuracy ledger disabled (construct IReS with a ledger)")
        payload = ledger.report()
        drift = self.ires.drift
        if drift is not None:
            payload["alarms"] = [a.to_dict() for a in drift.alarms]
        return Response(200, payload)

    # -- /explain ------------------------------------------------------------
    def _explain(self, method, rest, body) -> Response:
        self._expect(method == "GET", 405, "use GET")
        executor = self.ires.executor
        if not rest:
            return Response(200, {"runs": list(executor.explains)})
        self._expect(len(rest) == 1, 404, "use /explain/{run_id}")
        report = executor.explain_report(rest[0])
        self._expect(report is not None, 404,
                     f"no provenance for run {rest[0]!r} (plan with "
                     "record_provenance=True)")
        return Response(200, report)

    # -- /runs ---------------------------------------------------------------
    def _require_service(self):
        self._expect(self.service is not None, 503,
                     "no execution service attached (start with `ires serve`)")
        return self.service

    def _runs(self, method, rest, body) -> Response:
        from repro.api.service import AdmissionError

        service = self._require_service()
        if not rest:
            if method == "GET":
                return Response(200, {
                    "runs": [rec.to_dict() for rec in service.runs()]})
            if method == "POST":
                workflow = body.get("workflow")
                self._expect(isinstance(workflow, str) and bool(workflow),
                             400, "body needs 'workflow': name")
                try:
                    rec = service.submit(
                        workflow,
                        tenant=str(body.get("tenant", "default")),
                        deadline_seconds=body.get("deadlineSeconds"),
                    )
                except AdmissionError as exc:
                    return Response(exc.status, {
                        "error": str(exc), "retryAfter": exc.retry_after})
                return Response(202, rec.to_dict())
            raise ApiError(405, "use GET or POST")
        run_id = rest[0]
        if len(rest) == 1:
            self._expect(method == "GET", 405, "use GET")
            rec = service.status(run_id)
            self._expect(rec is not None, 404, f"no run {run_id!r}")
            return Response(200, rec.to_dict())
        action = rest[1] if len(rest) == 2 else ""
        if action == "timeline":
            self._expect(method == "GET", 405, "use GET")
            return self._run_timeline(service, run_id)
        if action == "profile":
            self._expect(method == "GET", 405, "use GET")
            profile = service.run_profile(run_id)
            self._expect(profile is not None, 404,
                         f"no profile for run {run_id!r} (profiler off, "
                         "run unknown, or profile evicted)")
            return Response(200, profile.speedscope(name=f"run {run_id}"))
        self._expect(len(rest) == 2 and method == "POST", 405,
                     "use POST /runs/{run_id}/cancel|recover or "
                     "GET /runs/{run_id}/timeline|profile")
        if action == "cancel":
            try:
                return Response(200, service.cancel(run_id).to_dict())
            except KeyError:
                raise ApiError(404, f"no run {run_id!r}") from None
        if action == "recover":
            from repro.execution.journal import JournalError

            try:
                rec = service.recover(run_id)
            except FileNotFoundError:
                raise ApiError(404, f"no journal for run {run_id!r}") from None
            except JournalError as exc:
                raise ApiError(409, str(exc)) from None
            except AdmissionError as exc:
                return Response(exc.status, {
                    "error": str(exc), "retryAfter": exc.retry_after})
            return Response(202, rec.to_dict())
        raise ApiError(404, f"unknown run action {action!r}")

    # -- /profile ------------------------------------------------------------
    def _profile(self, method, rest, body) -> Response:
        """Live speedscope snapshot of the service's always-on profiler."""
        from repro.obs.profiling import flamegraph_html

        service = self._require_service()
        self._expect(method == "GET", 405, "use GET")
        self._expect(not rest or rest == ["flamegraph"], 404,
                     "use /profile or /profile/flamegraph")
        profile = service.profile_snapshot()
        self._expect(profile is not None, 404,
                     "profiler disabled (construct the service with "
                     "profiler=True)")
        doc = profile.speedscope(name="ires service")
        if rest:
            return Response(200, text=flamegraph_html(doc),
                            content_type="text/html; charset=utf-8")
        return Response(200, doc)

    # -- /service ------------------------------------------------------------
    def _service(self, method, rest, body) -> Response:
        service = self._require_service()
        self._expect(method == "GET", 405, "use GET")
        self._expect(not rest, 404, "use /service")
        return Response(200, service.stats())

    # -- /cluster ------------------------------------------------------------
    def _cluster(self, method, rest, body) -> Response:
        service = self._require_service()
        self._expect(method == "GET", 405, "use GET")
        self._expect(not rest, 404, "use /cluster")
        self._expect(service.cluster is not None, 404,
                     "shared-cluster scheduling disabled "
                     "(start with `ires serve --cluster`)")
        return Response(200, service.cluster.snapshot())

    # -- /tenants ------------------------------------------------------------
    def _tenants(self, method, rest, body) -> Response:
        service = self._require_service()
        self._expect(method == "GET", 405, "use GET")
        self._expect(not rest, 404, "use /tenants")
        self._expect(service.accounts is not None, 404,
                     "tenant accounting disabled (accounts=False)")
        return Response(200, service.accounts.snapshot())

    # -- /slo ----------------------------------------------------------------
    def _slo(self, method, rest, body) -> Response:
        service = self._require_service()
        self._expect(method == "GET", 405, "use GET")
        self._expect(not rest, 404, "use /slo")
        self._expect(service.slo is not None, 404,
                     "SLO tracking disabled (slo=False)")
        return Response(200, service.slo.status())

    # -- /dashboard ----------------------------------------------------------
    def _dashboard(self, method, rest, body) -> Response:
        from repro.obs.dashboard import render_dashboard

        service = self._require_service()
        self._expect(method == "GET", 405, "use GET")
        self._expect(not rest, 404, "use /dashboard")
        profile = service.profile_snapshot()
        html = render_dashboard(
            service=service.stats(),
            slo=service.slo.status() if service.slo is not None else {},
            tenants=(service.accounts.snapshot()
                     if service.accounts is not None else {}),
            runs={"runs": [rec.to_dict() for rec in service.runs()]},
            profile=(profile.speedscope(name="ires service")
                     if profile is not None else None),
        )
        return Response(200, text=html,
                        content_type="text/html; charset=utf-8")

    def _run_timeline(self, service, run_id: str) -> Response:
        """Merge one run's journal, spans, logs and record (GET .../timeline)."""
        from repro.execution.journal import JournalError, read_journal
        from repro.obs.logging import recent as recent_logs
        from repro.obs.timeline import build_timeline, timeline_to_dict

        rec = service.status(run_id)
        journal_records: list[dict] = []
        if service.journal_dir is not None:
            from repro.execution.journal import journal_path

            path = journal_path(service.journal_dir, run_id)
            if path.exists():
                try:
                    journal_records = read_journal(path)
                except JournalError:
                    journal_records = []
        spans: list = []
        for platform in [self.ires, *service.platforms()]:
            spans.extend(platform.tracer.spans(run_id))
        span_self = None
        profile = service.run_profile(run_id)
        if profile is not None:
            span_self = {
                span: seconds for span, seconds in
                profile.run_breakdown()
                .get(run_id, {}).get("selfSecondsBySpan", {}).items()
            }
        events = build_timeline(
            run_id,
            journal_records=journal_records,
            spans=spans,
            logs=recent_logs(n=2000, run_id=run_id),
            record=rec,
            span_self=span_self,
        )
        self._expect(bool(events), 404, f"no telemetry for run {run_id!r}")
        return Response(200, timeline_to_dict(run_id, events))

    # -- /models -------------------------------------------------------------
    def _models(self, method, rest, body) -> Response:
        self._expect(method == "GET", 405, "use GET")
        self._expect(len(rest) == 2, 400, "use /models/{algorithm}/{engine}")
        algorithm, engine = rest
        model = self.ires.modeler.get(algorithm, engine)
        self._expect(model is not None, 404,
                     f"no trained model for {algorithm}@{engine}")
        return Response(200, {
            "algorithm": algorithm,
            "engine": engine,
            "model": model.model_name,
            "samples": model.n_samples,
            "features": model.feature_names,
            "cvScores": {k: round(v, 4) for k, v in model.cv_scores.items()},
        })


def _plan_json(plan) -> dict:
    return {
        "cost": plan.cost,
        "steps": [
            {
                "operator": step.operator.name,
                "engine": step.engine,
                "abstract": step.abstract_name,
                "inputs": [d.name for d in step.inputs],
                "outputs": [d.name for d in step.outputs],
                "estimatedCost": step.estimated_cost,
                "isMove": step.is_move,
            }
            for step in plan.steps
        ],
    }


def _report_json(report) -> dict:
    return {
        "succeeded": report.succeeded,
        "runId": report.run_id,
        "simTime": report.sim_time,
        "replans": report.replans,
        "retries": report.retries,
        "cachedPlans": report.cached_plans,
        "planningSeconds": report.planning_seconds,
        "enginesUsed": report.engines_used(),
        "failures": report.failures,
    }
