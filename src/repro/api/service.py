"""Asyncio execution service: queued, concurrent, durable workflow runs.

:class:`~repro.api.rest.IResServer` routes requests, but its ``execute``
action blocks the caller for the whole run and admits unbounded work.  This
module puts a production-shaped service in front of the platform:

- a **bounded submission queue** with admission control — a full queue or an
  exhausted tenant quota rejects the submission with a ``429``-style
  :class:`AdmissionError` carrying a ``retry_after`` hint (backpressure,
  not buffering);
- **N concurrent runs**: each worker is an asyncio task executing runs in a
  thread, against its own platform instance when a factory is supplied
  (isolated simulated clocks) or a shared one otherwise;
- **per-tenant quotas and fair dequeueing**: tenants round-robin, so one
  chatty tenant cannot starve the rest;
- **per-run deadlines and cancellation** via
  :class:`~repro.execution.resilience.RunControl` — both cut running retry
  loops short cooperatively;
- **durability**: with a ``journal_dir`` every run write-ahead journals its
  state (:mod:`repro.execution.journal`); :meth:`IResService.start` scans
  the directory and re-enqueues interrupted runs, resuming them with zero
  re-execution of journaled-finished steps;
- **graceful drain**: :meth:`IResService.shutdown` stops admitting, lets
  in-flight runs finish (they are journaled throughout), and cancels the
  stragglers after the drain timeout;
- **shared-cluster execution** (``cluster="fifo"|"fair"|"dagps"``): workers
  plan on their own platform but submit the materialized plan to one
  :class:`~repro.execution.cluster.ClusterScheduler` over a single shared
  cluster, so K concurrent runs genuinely contend for containers instead of
  each simulating against the cluster alone.  ``GET /cluster`` exposes the
  loop's queue/placement state.

All submission/status/cancel entry points are plain synchronous methods
guarded by a lock, so the in-process REST router (and any thread-based HTTP
transport on top of it) can drive the service directly.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.analysis.runtime_check import LockLike, make_lock
from repro.core.platform import IReS
from repro.execution.cluster import POLICIES, ClusterScheduler
from repro.execution.enforcer import ExecutionFailed
from repro.execution.journal import (
    RecoveredRun,
    journal_path,
    list_journals,
    recover,
)
from repro.execution.resilience import (
    RunCancelled,
    RunControl,
    RunDeadlineExceeded,
)
from repro.obs.accounting import TenantAccounts, usage_from_report
from repro.obs.context import bind_run_id, bind_tenant, new_run_id
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.profiling import SERVICE_HZ, Profile, SamplingProfiler
from repro.obs.slo import SLOTracker

_LOG = get_logger("service")

_SUBMISSIONS = REGISTRY.counter(
    "ires_service_submissions_total",
    "Run submissions by admission outcome",
    labels=("status",),
)
_RUNS = REGISTRY.counter(
    "ires_service_runs_total",
    "Service runs reaching a terminal state",
    labels=("status", "tenant"),
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "ires_service_queue_depth",
    "Queued (admitted, not yet running) submissions",
)
_ACTIVE = REGISTRY.gauge(
    "ires_service_active_runs",
    "Runs currently executing",
)
_RUN_SECONDS = REGISTRY.histogram(
    "ires_service_run_seconds",
    "Wall seconds from submission to terminal state",
    labels=("status",),
)
_QUEUE_WAIT = REGISTRY.histogram(
    "ires_service_queue_wait_seconds",
    "Wall seconds from admission to execution start",
)
_TELEMETRY_SECONDS = REGISTRY.histogram(
    "ires_service_telemetry_seconds",
    "Wall seconds the service spent on accounting + SLO evaluation per run",
)

#: run lifecycle states
QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"
DEADLINE = "deadline"
INTERRUPTED = "interrupted"

TERMINAL = (SUCCEEDED, FAILED, CANCELLED, DEADLINE, INTERRUPTED)


class AdmissionError(Exception):
    """The service refused a submission (backpressure or draining).

    ``status`` mirrors HTTP semantics: 429 for a full queue or exhausted
    tenant quota (retry after ``retry_after`` seconds), 503 while draining.
    """

    def __init__(self, message: str, status: int = 429,
                 retry_after: float = 5.0) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


@dataclass
class RunRecord:
    """One submission's lifecycle, from admission to terminal state."""

    run_id: str
    workflow: str
    tenant: str
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: wall seconds spent queued before execution started
    queued_wait_seconds: float | None = None
    deadline_seconds: float | None = None
    control: RunControl | None = None
    #: recovered journal state when this is a resumed run
    resume: RecoveredRun | None = None
    error: str = ""
    summary: dict = field(default_factory=dict)
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def terminal(self) -> bool:
        """Whether the run has reached a terminal state."""
        return self.state in TERMINAL

    def to_dict(self) -> dict:
        """JSON-able status view for the REST/CLI surfaces."""
        payload = {
            "runId": self.run_id,
            "workflow": self.workflow,
            "tenant": self.tenant,
            "state": self.state,
            "submittedAt": round(self.submitted_at, 6),
            "startedAt": self.started_at,
            "finishedAt": self.finished_at,
            "queuedWaitSeconds": (
                None if self.queued_wait_seconds is None
                else round(self.queued_wait_seconds, 6)),
            "deadlineSeconds": self.deadline_seconds,
            "resumed": self.resume is not None,
        }
        if self.error:
            payload["error"] = self.error
        if self.summary:
            payload["report"] = self.summary
        return payload


class IResService:
    """Bounded, fair, durable asyncio execution service over IReS.

    ``platform`` is either one :class:`~repro.core.platform.IReS` instance
    (shared by every worker — note the shared simulated clock) or a
    zero-argument factory building one platform per worker (isolated
    clocks; what ``ires serve`` uses).
    """

    def __init__(
        self,
        platform: IReS | Callable[[], IReS],
        *,
        workers: int = 4,
        queue_limit: int = 16,
        tenant_quota: int | None = None,
        journal_dir: str | Path | None = None,
        default_deadline_seconds: float | None = None,
        history_limit: int = 1024,
        accounts: "TenantAccounts | bool" = True,
        slo: "SLOTracker | bool" = True,
        profiler: "SamplingProfiler | bool" = True,
        profile_history: int = 32,
        cluster: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if cluster is not None and cluster not in POLICIES:
            raise ValueError(
                f"cluster policy must be one of {POLICIES}, got {cluster!r}")
        self._factory: Callable[[], IReS] = (
            platform if callable(platform) else (lambda: platform)
        )
        self.workers = workers
        self.queue_limit = queue_limit
        self.tenant_quota = tenant_quota
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.default_deadline_seconds = default_deadline_seconds
        self.history_limit = history_limit
        self._lock: LockLike = make_lock("service")
        self._pending: dict[str, deque[RunRecord]] = {}  # guarded-by: _lock
        self._ring: deque[str] = deque()  # guarded-by: _lock
        self._runs: dict[str, RunRecord] = {}  # guarded-by: _lock
        self._accepting = True  # guarded-by: _lock
        self._stopping = False  # guarded-by: _lock
        # loop-affine state (_loop/_wake/_tasks) is touched only from the
        # event-loop thread and needs no lock
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._tasks: list[asyncio.Task] = []
        self._platforms: dict[int, IReS] = {}  # guarded-by: _lock
        #: EWMA of completed-run wall latency, feeding the retry-after hint
        self._latency_ewma: float | None = None  # guarded-by: _lock
        #: EWMA of measured queue wait (admission → start) — the primary
        #: signal behind the 429 retry-after estimate
        self._queue_wait_ewma: float | None = None  # guarded-by: _lock
        #: EWMA of execution duration (start → terminal), projecting the
        #: extra wait each queued run ahead of a new submission adds
        self._exec_seconds_ewma: float | None = None  # guarded-by: _lock
        #: per-tenant cost attribution (GET /tenants); pass accounts=False
        #: to disable, or a TenantAccounts instance to share one
        if accounts is True:
            self.accounts: TenantAccounts | None = TenantAccounts()
        elif accounts is False:
            self.accounts = None
        else:
            self.accounts = accounts
        #: SLO tracking with burn-rate alarms (GET /slo); slo=False disables
        if slo is True:
            self.slo: SLOTracker | None = SLOTracker()
        elif slo is False:
            self.slo = None
        else:
            self.slo = slo
        #: always-on low-rate sampling profiler (GET /profile); pass
        #: profiler=False to disable, or a configured SamplingProfiler
        if profiler is True:
            self.profiler: SamplingProfiler | None = SamplingProfiler(
                hz=SERVICE_HZ)
        elif profiler is False:
            self.profiler = None
        else:
            self.profiler = profiler
        #: shared-cluster policy name, or None for isolated per-run clusters.
        #: Cluster runs contend on one simulated cluster; note that per-run
        #: deadlines/cancellation do not preempt steps already admitted to
        #: the shared loop (its virtual event loop is not cooperative).
        self.cluster_policy = cluster
        #: the shared ClusterScheduler; built (with its platform) in start()
        self.cluster: ClusterScheduler | None = None
        self.profile_history = profile_history
        self._profiles: dict[str, Profile] = {}  # guarded-by: _lock
        #: eviction order for _profiles  # guarded-by: _lock
        self._profile_ring: deque[str] = deque()
        self.peak_active = 0  # guarded-by: _lock
        self._active = 0  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> list[RunRecord]:
        """Spawn the workers; re-enqueue interrupted journaled runs.

        Returns the runs recovered from the journal directory (already
        queued for resumption).
        """
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        if self.profiler is not None:
            self.profiler.start()
        if self.cluster_policy is not None and self.cluster is None:
            # the shared loop lives on its own platform instance (slot -1,
            # so platforms()/trace surfaces include it); workers still plan
            # on their own platforms and only execution contends here
            platform = await asyncio.to_thread(self._platform_for, -1)
            self.cluster = ClusterScheduler(
                platform.cloud, policy=self.cluster_policy,
                tracer=platform.tracer)
        recovered = self.recover_interrupted()
        self._tasks = [
            asyncio.create_task(self._worker(i), name=f"ires-worker-{i}")
            for i in range(self.workers)
        ]
        return recovered

    async def shutdown(self, drain: bool = True,
                       timeout: float | None = None) -> None:
        """Stop the service: drain (or cancel) runs, then stop the workers.

        ``drain=True`` stops admitting and waits for queued + running work
        to finish — in-flight runs keep journaling, so even a timeout here
        leaves resumable journals.  After ``timeout`` seconds (None = wait
        forever) the remainder is cancelled: queued runs go straight to
        ``interrupted``, running runs get a cooperative cancel.
        """
        with self._lock:
            self._accepting = False
        if drain:
            await self._wait_idle(timeout)
        with self._lock:
            leftovers = [rec for ts in self._pending.values() for rec in ts]
            self._pending.clear()
            self._ring.clear()
            _QUEUE_DEPTH.set(0)
        for rec in leftovers:
            self._finish(rec, INTERRUPTED, error="service shutdown")
        with self._lock:
            running = [rec for rec in self._runs.values()
                       if rec.state == RUNNING]
        for rec in running:
            if rec.control is not None:
                rec.control.cancel("service shutdown")
        with self._lock:
            self._stopping = True
        self._wake_workers()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self.profiler is not None:
            self.profiler.stop()

    async def _wait_idle(self, timeout: float | None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                idle = not any(self._pending.values()) and self._active == 0
            if idle:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.02)

    # -- admission -----------------------------------------------------------
    def submit(
        self,
        workflow: str,
        tenant: str = "default",
        deadline_seconds: float | None = None,
        resume: RecoveredRun | None = None,
        run_id: str | None = None,
    ) -> RunRecord:
        """Admit one run (or reject it with :class:`AdmissionError`)."""
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline_seconds
        with self._lock:
            if not self._accepting or self._stopping:
                _SUBMISSIONS.inc(status="rejected_draining")
                raise AdmissionError("service is draining", status=503,
                                     retry_after=self._retry_after_locked())
            depth = sum(len(q) for q in self._pending.values())
            if depth >= self.queue_limit:
                _SUBMISSIONS.inc(status="rejected_full")
                raise AdmissionError(
                    f"queue full ({depth}/{self.queue_limit})",
                    status=429, retry_after=self._retry_after_locked())
            if self.tenant_quota is not None:
                inflight = len(self._pending.get(tenant, ())) + sum(
                    1 for rec in self._runs.values()
                    if rec.tenant == tenant and rec.state == RUNNING)
                if inflight >= self.tenant_quota:
                    _SUBMISSIONS.inc(status="rejected_quota")
                    raise AdmissionError(
                        f"tenant {tenant!r} at quota "
                        f"({inflight}/{self.tenant_quota})",
                        status=429,
                        retry_after=self._retry_after_locked())
            rec = RunRecord(
                run_id=run_id or (resume.run_id if resume else new_run_id()),
                workflow=workflow, tenant=tenant,
                deadline_seconds=deadline_seconds, resume=resume)
            if tenant not in self._pending:
                self._pending[tenant] = deque()
                self._ring.append(tenant)
            self._pending[tenant].append(rec)
            self._runs[rec.run_id] = rec
            self._trim_history_locked()
            _QUEUE_DEPTH.set(depth + 1)
        _SUBMISSIONS.inc(status="accepted")
        _LOG.info("run_admitted", run_id=rec.run_id, workflow=workflow,
                  tenant=tenant, queue_depth=depth + 1)
        self._wake_workers()
        return rec

    def _retry_after_locked(self) -> float:
        depth = sum(len(q) for q in self._pending.values())
        if self._queue_wait_ewma is not None:
            # anchor on what recent submissions *actually* waited, then
            # project the backlog ahead of a new submission from the
            # execution-duration EWMA
            per_run = (self._exec_seconds_ewma
                       if self._exec_seconds_ewma is not None
                       else (self._latency_ewma or 5.0))
            estimate = self._queue_wait_ewma + per_run * depth / self.workers
        else:
            # cold start: no completed runs yet, fall back to the
            # latency-model guess
            latency = self._latency_ewma or 5.0
            estimate = latency * (depth + 1) / self.workers
        return round(min(max(estimate, 1.0), 60.0), 2)

    def _trim_history_locked(self) -> None:
        if len(self._runs) <= self.history_limit:
            return
        for run_id in [rid for rid, rec in self._runs.items()
                       if rec.terminal][:len(self._runs) - self.history_limit]:
            del self._runs[run_id]

    # -- queries / control ---------------------------------------------------
    def status(self, run_id: str) -> RunRecord | None:
        """One run's record, or None when unknown."""
        with self._lock:
            return self._runs.get(run_id)

    def runs(self) -> list[RunRecord]:
        """Every known run, oldest submission first."""
        with self._lock:
            return sorted(self._runs.values(), key=lambda r: r.submitted_at)

    def cancel(self, run_id: str) -> RunRecord:
        """Cancel a queued (immediate) or running (cooperative) run."""
        with self._lock:
            rec = self._runs.get(run_id)
            if rec is None:
                raise KeyError(f"unknown run {run_id!r}")
            queued = rec.state == QUEUED
            if queued:
                queue = self._pending.get(rec.tenant)
                if queue is not None and rec in queue:
                    queue.remove(rec)
                    _QUEUE_DEPTH.set(
                        sum(len(q) for q in self._pending.values()))
        if queued:
            self._finish(rec, CANCELLED, error="cancelled while queued")
            return rec
        if rec.state == RUNNING and rec.control is not None:
            rec.control.cancel("cancelled by request")
        return rec

    def recover_interrupted(self) -> list[RunRecord]:
        """Queue every interrupted journal under ``journal_dir`` for resume."""
        if self.journal_dir is None:
            return []
        recovered = []
        for path in list_journals(self.journal_dir):
            with self._lock:
                known = path.stem in self._runs
            if known:
                continue
            run = recover(path)
            if not run.interrupted:
                continue
            recovered.append(self.submit(run.workflow, tenant="recovery",
                                         resume=run, run_id=run.run_id))
            _LOG.info("run_requeued_from_journal", run_id=run.run_id,
                      workflow=run.workflow,
                      finished_steps=len(run.finished_steps))
        return recovered

    def recover(self, run_id: str) -> RunRecord:
        """Re-enqueue one journaled, non-succeeded run for resumption."""
        if self.journal_dir is None:
            raise ValueError("service has no journal_dir")
        run = recover(journal_path(self.journal_dir, run_id))
        if run.terminal == SUCCEEDED:
            raise ValueError(f"run {run_id!r} already succeeded")
        with self._lock:
            existing = self._runs.get(run_id)
            if existing is not None and not existing.terminal:
                raise ValueError(f"run {run_id!r} is {existing.state}")
        return self.submit(run.workflow, tenant="recovery", resume=run,
                           run_id=run_id)

    async def wait(self, run_id: str,
                   timeout: float | None = None) -> RunRecord:
        """Await a run's terminal state (the record is returned either way)."""
        rec = self.status(run_id)
        if rec is None:
            raise KeyError(f"unknown run {run_id!r}")
        await asyncio.to_thread(rec.done.wait, timeout)
        return rec

    def stats(self) -> dict:
        """JSON-able service snapshot (the ``GET /service`` body)."""
        with self._lock:
            depth = sum(len(q) for q in self._pending.values())
            by_state: dict[str, int] = {}
            for rec in self._runs.values():
                by_state[rec.state] = by_state.get(rec.state, 0) + 1
            tenants = {
                tenant: len(queue)
                for tenant, queue in self._pending.items() if queue
            }
            return {
                "accepting": self._accepting and not self._stopping,
                "workers": self.workers,
                "queueLimit": self.queue_limit,
                "tenantQuota": self.tenant_quota,
                "queueDepth": depth,
                "active": self._active,
                "peakActive": self.peak_active,
                "runsByState": by_state,
                "queuedByTenant": tenants,
                "journalDir": str(self.journal_dir) if self.journal_dir else None,
                "clusterPolicy": self.cluster_policy,
                "retryAfterHint": self._retry_after_locked(),
                "queueWaitEwmaSeconds": (
                    None if self._queue_wait_ewma is None
                    else round(self._queue_wait_ewma, 6)),
                "sloActiveAlarms": (
                    self.slo.active_alarms() if self.slo is not None else []),
                "profiler": (
                    self.profiler.status()
                    if self.profiler is not None else None),
            }

    def platforms(self) -> "list[IReS]":
        """The worker platform instances built so far (tracers, journals)."""
        with self._lock:
            return list(self._platforms.values())

    # -- workers -------------------------------------------------------------
    def _wake_workers(self) -> None:
        loop, wake = self._loop, self._wake
        if loop is None or wake is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(wake.set)

    def _dequeue(self) -> RunRecord | None:
        """Round-robin over tenants: fairness under mixed submission rates."""
        with self._lock:
            for _ in range(len(self._ring)):
                tenant = self._ring[0]
                self._ring.rotate(-1)
                queue = self._pending.get(tenant)
                if queue:
                    rec = queue.popleft()
                    _QUEUE_DEPTH.set(
                        sum(len(q) for q in self._pending.values()))
                    return rec
            return None

    def _platform_for(self, worker: int) -> IReS:
        with self._lock:
            platform = self._platforms.get(worker)
        if platform is None:
            # build outside the lock (factories can be slow); each worker
            # only asks for its own index, so the slot cannot be contended
            platform = self._factory()
            if self.journal_dir is not None:
                platform.executor.journal_dir = self.journal_dir
            with self._lock:
                self._platforms[worker] = platform
        return platform

    async def _worker(self, index: int) -> None:
        assert self._wake is not None
        platform = await asyncio.to_thread(self._platform_for, index)
        while True:
            rec = self._dequeue()
            if rec is None:
                if self._stopping:
                    return
                self._wake.clear()
                if any(self._pending.values()) or self._stopping:
                    continue  # lost wakeup guard: something arrived mid-clear
                await self._wake.wait()
                continue
            await self._run_one(platform, rec)

    async def _run_one(self, platform: IReS, rec: RunRecord) -> None:
        workflow = platform.workflows.get(rec.workflow)
        if workflow is None:
            self._finish(rec, FAILED,
                         error=f"unknown workflow {rec.workflow!r}")
            return
        rec.control = RunControl(deadline_seconds=rec.deadline_seconds)
        rec.state = RUNNING
        rec.started_at = time.time()
        rec.queued_wait_seconds = max(rec.started_at - rec.submitted_at, 0.0)
        _QUEUE_WAIT.observe(rec.queued_wait_seconds)
        with self._lock:
            self._active += 1
            self.peak_active = max(self.peak_active, self._active)
            self._queue_wait_ewma = (
                rec.queued_wait_seconds if self._queue_wait_ewma is None
                else 0.7 * self._queue_wait_ewma
                + 0.3 * rec.queued_wait_seconds
            )
            active = self._active
        _ACTIVE.set(active)

        def _execute() -> object:
            # bind the service-assigned correlation ids in the worker
            # thread: enforcer spans, metrics, logs and journal records
            # then share the submission's run_id and tenant
            with bind_run_id(rec.run_id), bind_tenant(rec.tenant):
                if self.cluster is not None:
                    # plan locally, execute on the shared contended cluster
                    plan = platform.plan(workflow)
                    return self.cluster.execute(
                        plan, run_id=rec.run_id, tenant=rec.tenant)
                return platform.execute(
                    workflow, control=rec.control, run_id=rec.run_id,
                    resume_from=rec.resume)

        try:
            report = await asyncio.to_thread(_execute)
        except RunCancelled as exc:
            self._finish(rec, CANCELLED, error=str(exc))
        except RunDeadlineExceeded as exc:
            self._finish(rec, DEADLINE, error=str(exc))
        except ExecutionFailed as exc:
            self._finish(rec, FAILED, error=str(exc))
        except Exception as exc:  # noqa: BLE001 — any worker crash fails the run
            self._finish(rec, FAILED, error=f"{type(exc).__name__}: {exc}")
        else:
            if self.cluster is not None:
                rec.summary = {
                    "makespan": report.makespan,
                    "speedup": round(report.speedup, 4),
                    "steps": len(report.schedule),
                    "failures": len(report.failures),
                    "speculations": len(report.speculations),
                    "sharedCluster": True,
                    "clusterPolicy": self.cluster_policy,
                }
                if report.succeeded:
                    self._finish(rec, SUCCEEDED, report=report)
                else:
                    self._finish(
                        rec, FAILED, report=report,
                        error=report.failures[0].error)
            else:
                rec.summary = {
                    "simTime": report.sim_time,
                    "replans": report.replans,
                    "retries": report.retries,
                    "steps": len(report.executions),
                    "recoveredSteps": report.recovered_steps,
                    "cachedPlans": report.cached_plans,
                }
                self._finish(rec, SUCCEEDED, report=report)
        finally:
            with self._lock:
                self._active -= 1
                active = self._active
            _ACTIVE.set(active)

    def _finish(self, rec: RunRecord, state: str, error: str = "",
                report=None) -> None:
        rec.state = state
        rec.error = error
        rec.finished_at = time.time()
        latency = rec.finished_at - rec.submitted_at
        with self._lock:
            self._latency_ewma = (
                latency if self._latency_ewma is None
                else 0.7 * self._latency_ewma + 0.3 * latency
            )
            if rec.started_at is not None:
                exec_seconds = rec.finished_at - rec.started_at
                self._exec_seconds_ewma = (
                    exec_seconds if self._exec_seconds_ewma is None
                    else 0.7 * self._exec_seconds_ewma + 0.3 * exec_seconds
                )
        _RUNS.inc(status=state, tenant=rec.tenant)
        _RUN_SECONDS.observe(latency, status=state)
        self._capture_profile(rec)
        self._record_telemetry(rec, state, latency, report)
        _LOG.info("run_terminal", run_id=rec.run_id, state=state,
                  tenant=rec.tenant, latency_seconds=round(latency, 4),
                  error=error or None)
        rec.done.set()

    def _capture_profile(self, rec: RunRecord) -> None:
        """Bank the run's samples from the always-on profiler ring."""
        if self.profiler is None:
            return
        # take_run snapshots under the profiler's own lock; only the
        # bounded-ring bookkeeping below needs the service lock
        profile = self.profiler.take_run(rec.run_id)
        with self._lock:
            if rec.run_id not in self._profiles:
                self._profile_ring.append(rec.run_id)
            self._profiles[rec.run_id] = profile
            while len(self._profile_ring) > self.profile_history:
                evicted = self._profile_ring.popleft()
                self._profiles.pop(evicted, None)

    def run_profile(self, run_id: str) -> Profile | None:
        """The banked per-run profile, or None when unknown/evicted."""
        with self._lock:
            return self._profiles.get(run_id)

    def profile_snapshot(self) -> Profile | None:
        """A live snapshot of the service-wide profiler ring."""
        if self.profiler is None:
            return None
        return self.profiler.snapshot()

    def _record_telemetry(self, rec: RunRecord, state: str, latency: float,
                          report) -> None:
        """Feed accounting and the SLO tracker; self-measure the cost."""
        if self.accounts is None and self.slo is None:
            return
        telemetry_start = time.perf_counter()
        if self.accounts is not None:
            journal_bytes = 0
            if self.journal_dir is not None:
                try:
                    journal_bytes = journal_path(
                        self.journal_dir, rec.run_id).stat().st_size
                except OSError:
                    journal_bytes = 0
            self.accounts.record(usage_from_report(
                run_id=rec.run_id, tenant=rec.tenant, workflow=rec.workflow,
                state=state, report=report,
                queued_wait_seconds=rec.queued_wait_seconds or 0.0,
                journal_bytes=journal_bytes))
        if self.slo is not None and state in (SUCCEEDED, FAILED, DEADLINE):
            # cancellations/interruptions are operator actions, not
            # service failures — they stay out of the error budget
            self.slo.record_run(
                succeeded=state == SUCCEEDED,
                latency_seconds=latency,
                queue_wait_seconds=rec.queued_wait_seconds or 0.0,
                at=rec.finished_at, tenant=rec.tenant)
            self.slo.evaluate(now=rec.finished_at)
        _TELEMETRY_SECONDS.observe(time.perf_counter() - telemetry_start)
