"""A minimal stdlib HTTP transport over :meth:`IResServer.handle`.

The REST surface (:mod:`repro.api.rest`) is an in-process router; this
module puts a real socket in front of it with nothing but the standard
library.  Each request thread parses the JSON body, dispatches to the
router, and writes the JSON (or text, for ``/metrics``) response back —
including a ``Retry-After`` header when the execution service sheds load.

``ires serve`` is the consumer: the HTTP threads call straight into the
router, whose ``/runs`` resource forwards to the thread-safe
:class:`~repro.api.service.IResService` entry points.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api.rest import IResServer
from repro.obs.logging import get_logger

_LOG = get_logger("http")


def make_http_server(server: IResServer, host: str = "127.0.0.1",
                     port: int = 8080) -> ThreadingHTTPServer:
    """Build a threading HTTP server routing into ``server``.

    ``port=0`` binds an ephemeral port; read it back from
    ``httpd.server_address[1]``.  Call ``serve_forever()`` (usually on a
    daemon thread) to start serving and ``shutdown()`` to stop.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _dispatch(self, method: str) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                body = json.loads(raw) if raw else {}
            except ValueError:
                self._write(400, json.dumps({"error": "body is not JSON"}),
                            "application/json")
                return
            path = self.path.split("?", 1)[0]
            # HEAD routes exactly like GET; only the response body is elided
            response = server.handle(
                "GET" if method == "HEAD" else method, path,
                body if isinstance(body, dict) else {})
            extra = {}
            if response.status in (429, 503) and "retryAfter" in response.body:
                extra["Retry-After"] = str(response.body["retryAfter"])
            if not response.content_type.startswith("application/json"):
                # /dashboard and /metrics are live views — never cache them
                extra["Cache-Control"] = "no-store"
            self._write(response.status, response.payload(),
                        response.content_type, extra,
                        head_only=method == "HEAD")
            _LOG.debug("request", method=method, path=path,
                       status=response.status)

        def _write(self, status: int, payload: str, content_type: str,
                   extra: dict | None = None, head_only: bool = False) -> None:
            data = payload.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (extra or {}).items():
                self.send_header(name, value)
            self.end_headers()
            if not head_only:
                self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            self._dispatch("GET")

        def do_HEAD(self) -> None:  # noqa: N802
            self._dispatch("HEAD")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def do_DELETE(self) -> None:  # noqa: N802
            self._dispatch("DELETE")

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # request logging goes through repro.obs.logging above

    return ThreadingHTTPServer((host, port), Handler)
