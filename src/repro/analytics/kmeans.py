"""Lloyd's k-means (second stage of the text-analytics workflow)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Outcome of one k-means run: centers, labels, inertia."""
    centers: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,)
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centers.shape[0]


def _init_centers_pp(
    X: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding."""
    n = X.shape[0]
    centers = [X[rng.integers(n)]]
    d2 = ((X - centers[0]) ** 2).sum(axis=1)
    for _ in range(1, k):
        total = d2.sum()
        if total == 0:
            centers.append(X[rng.integers(n)])
            continue
        probs = d2 / total
        idx = rng.choice(n, p=probs)
        centers.append(X[idx])
        d2 = np.minimum(d2, ((X - centers[-1]) ** 2).sum(axis=1))
    return np.array(centers)


def kmeans(
    X,
    k: int,
    max_iterations: int = 50,
    tol: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Cluster rows of ``X`` into ``k`` clusters (k-means++ init + Lloyd)."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be a 2-D array")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    centers = _init_centers_pp(X, k, rng)
    labels = np.zeros(n, dtype=int)
    for iteration in range(1, max_iterations + 1):
        d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = X[labels == j]
            if len(members):
                new_centers[j] = members.mean(axis=0)
            else:  # re-seed empty cluster at the farthest point
                new_centers[j] = X[d2.min(axis=1).argmax()]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift <= tol:
            break
    d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    labels = d2.argmin(axis=1)
    inertia = float(d2[np.arange(n), labels].sum())
    return KMeansResult(centers=centers, labels=labels, inertia=inertia,
                        iterations=iteration)
