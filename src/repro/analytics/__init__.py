"""Real implementations of the paper's analytics operators.

IReS treats operators as black boxes; these pure-Python implementations make
the executor produce genuine artifacts end-to-end (see DESIGN.md §2).  The
evaluation workflows use:

- :func:`pagerank` over CDR call graphs (graph analytics, Fig 11),
- :func:`tfidf_vectorize` + :func:`kmeans` over document corpora
  (text analytics, Fig 12),
- :func:`wordcount` / :func:`linecount` (operator modeling, Fig 16; §3.3).

Synthetic data generators replace the proprietary WIND/IMR datasets:
:func:`generate_cdr_graph` (power-law call graph) and
:func:`generate_corpus` (Zipfian documents).
"""

from repro.analytics.generators import generate_cdr_graph, generate_corpus
from repro.analytics.graphs import (
    connected_components,
    degree_stats,
    k_core,
    triangle_count,
)
from repro.analytics.kmeans import KMeansResult, kmeans
from repro.analytics.pagerank import pagerank
from repro.analytics.tfidf import TfIdfResult, tfidf_vectorize
from repro.analytics.wordcount import linecount, wordcount

__all__ = [
    "KMeansResult",
    "TfIdfResult",
    "connected_components",
    "degree_stats",
    "generate_cdr_graph",
    "generate_corpus",
    "k_core",
    "kmeans",
    "linecount",
    "pagerank",
    "tfidf_vectorize",
    "triangle_count",
    "wordcount",
]
