"""Further graph-analytics operators over CDR-style edge lists.

The paper's graph workflow centres on Pagerank, but the motivating telecom
use case (subscriber analytics over call graphs) routinely needs community
and connectivity measures too.  These operators share the edge-list format
of :func:`repro.analytics.generate_cdr_graph` and are implemented with the
same from-scratch, numpy-first approach.
"""

from __future__ import annotations

import numpy as np


def _edge_array(edges, n_vertices: int | None) -> tuple[np.ndarray, int]:
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return arr.reshape(0, 2), int(n_vertices or 0)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be (src, dst) pairs")
    n = int(arr.max()) + 1 if n_vertices is None else int(n_vertices)
    if arr.min() < 0 or arr.max() >= n:
        raise ValueError("vertex id out of range")
    return arr.astype(np.int64), n


class _UnionFind:
    """Path-halving union-find over dense integer ids."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def connected_components(edges, n_vertices: int | None = None) -> np.ndarray:
    """Weakly connected component labels (0-based, ordered by first vertex).

    Direction is ignored — two subscribers who ever called each other are in
    the same community.
    """
    arr, n = _edge_array(edges, n_vertices)
    uf = _UnionFind(n)
    for src, dst in arr:
        uf.union(int(src), int(dst))
    roots = np.array([uf.find(v) for v in range(n)])
    _, labels = np.unique(roots, return_inverse=True)
    return labels


def degree_stats(edges, n_vertices: int | None = None) -> dict[str, np.ndarray]:
    """Per-vertex in/out/total call counts."""
    arr, n = _edge_array(edges, n_vertices)
    out_degree = np.bincount(arr[:, 0], minlength=n) if len(arr) else np.zeros(n, int)
    in_degree = np.bincount(arr[:, 1], minlength=n) if len(arr) else np.zeros(n, int)
    return {
        "in": in_degree,
        "out": out_degree,
        "total": in_degree + out_degree,
    }


def triangle_count(edges, n_vertices: int | None = None) -> int:
    """Number of undirected triangles (a community-cohesion signal).

    Uses the standard forward algorithm over the de-duplicated undirected
    edge set; adequate for the laptop-scale CDR samples used here.
    """
    arr, n = _edge_array(edges, n_vertices)
    if len(arr) == 0:
        return 0
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    undirected = {(int(a), int(b)) for a, b in zip(lo, hi) if a != b}
    neighbors: dict[int, set[int]] = {}
    for a, b in undirected:
        neighbors.setdefault(a, set()).add(b)
        neighbors.setdefault(b, set()).add(a)
    count = 0
    for a, b in undirected:
        count += len(neighbors.get(a, set()) & neighbors.get(b, set()))
    return count // 3


def k_core(edges, k: int, n_vertices: int | None = None) -> np.ndarray:
    """Boolean mask of vertices in the undirected k-core.

    Iteratively peels vertices with (undirected) degree < k — the classic
    engagement measure for social/call graphs.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    arr, n = _edge_array(edges, n_vertices)
    alive = np.ones(n, dtype=bool)
    lo = np.minimum(arr[:, 0], arr[:, 1]) if len(arr) else np.array([], int)
    hi = np.maximum(arr[:, 0], arr[:, 1]) if len(arr) else np.array([], int)
    mask = lo != hi
    lo, hi = lo[mask], hi[mask]
    while True:
        live_edges = alive[lo] & alive[hi]
        degree = (
            np.bincount(lo[live_edges], minlength=n)
            + np.bincount(hi[live_edges], minlength=n)
        )
        peel = alive & (degree < k)
        if not peel.any():
            return alive
        alive &= ~peel
