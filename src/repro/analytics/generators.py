"""Synthetic data generators replacing the proprietary ASAP datasets.

The paper's workflows run on anonymized telecom CDR traces (WIND) and web
content WARC files (IMR), neither publicly available.  The generators here
produce data with the same structural properties the workloads exercise:
a heavy-tailed call graph and a Zipfian-vocabulary document corpus.
"""

from __future__ import annotations

import numpy as np

#: a small word stock; Zipf sampling over it yields realistic tf-idf matrices
_WORDS = [
    f"w{i:04d}" for i in range(2000)
]


def generate_cdr_graph(
    n_edges: int, n_vertices: int | None = None, seed: int = 0
) -> np.ndarray:
    """Generate a call-detail-record graph as an (n_edges, 2) array.

    Callers and callees are drawn from a Zipf-like distribution so that a few
    subscribers concentrate most calls — the heavy-tailed degree structure
    real CDR graphs exhibit (and what makes Pagerank interesting on them).
    """
    if n_edges < 1:
        raise ValueError("need at least one edge")
    if n_vertices is None:
        n_vertices = max(2, n_edges // 10)
    rng = np.random.default_rng(seed)
    # Power-law vertex popularity via sorted Pareto weights.
    weights = rng.pareto(1.5, n_vertices) + 1.0
    probs = weights / weights.sum()
    src = rng.choice(n_vertices, size=n_edges, p=probs)
    dst = rng.choice(n_vertices, size=n_edges, p=probs)
    # avoid self-calls
    same = src == dst
    dst[same] = (dst[same] + 1) % n_vertices
    return np.stack([src, dst], axis=1)


def generate_corpus(
    n_documents: int,
    words_per_doc: int = 60,
    n_topics: int = 8,
    seed: int = 0,
) -> list[str]:
    """Generate a document corpus with latent topics.

    Each document draws from a topic-specific Zipfian slice of the
    vocabulary, so tf-idf + k-means recovers the topic structure — giving the
    text-clustering workflow a meaningful target.
    """
    if n_documents < 1:
        raise ValueError("need at least one document")
    rng = np.random.default_rng(seed)
    vocab = np.array(_WORDS)
    slice_size = len(vocab) // n_topics
    docs: list[str] = []
    zipf_ranks = np.arange(1, slice_size + 1, dtype=float)
    zipf_probs = (1.0 / zipf_ranks) / (1.0 / zipf_ranks).sum()
    for i in range(n_documents):
        topic = int(rng.integers(n_topics))
        base = topic * slice_size
        idx = rng.choice(slice_size, size=words_per_doc, p=zipf_probs)
        words = vocab[base + idx]
        # 10% global noise words
        noise = rng.random(words_per_doc) < 0.1
        words = np.where(noise, vocab[rng.integers(0, len(vocab), words_per_doc)], words)
        docs.append(" ".join(words.tolist()))
    return docs
