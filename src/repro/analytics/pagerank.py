"""Pagerank over call-detail-record graphs (the graph-analytics workflow).

The paper computes "the influence score of a subscriber on a
telecommunications network" by treating CDRs as a graph (customers are
vertices, calls are edges) and applying Pagerank.  This is the power-iteration
formulation over a sparse adjacency structure.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def pagerank(
    edges: Iterable[tuple[int, int]],
    n_vertices: int | None = None,
    damping: float = 0.85,
    iterations: int = 10,
    tol: float = 0.0,
) -> np.ndarray:
    """Power-iteration Pagerank.

    ``edges`` are (src, dst) vertex-id pairs; vertex ids are dense ints.
    Returns the score vector, which sums to 1.  ``tol > 0`` enables early
    exit on L1 convergence.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edge_array.size == 0:
        if not n_vertices:
            return np.array([])
        return np.full(n_vertices, 1.0 / n_vertices)
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise ValueError("edges must be (src, dst) pairs")
    src = edge_array[:, 0].astype(np.int64)
    dst = edge_array[:, 1].astype(np.int64)
    n = int(max(src.max(), dst.max())) + 1 if n_vertices is None else n_vertices
    if src.min() < 0 or dst.min() < 0 or max(src.max(), dst.max()) >= n:
        raise ValueError("vertex id out of range")

    out_degree = np.bincount(src, minlength=n).astype(float)
    scores = np.full(n, 1.0 / n)
    for _ in range(iterations):
        contrib = np.where(out_degree > 0, scores / np.maximum(out_degree, 1), 0.0)
        incoming = np.bincount(dst, weights=contrib[src], minlength=n)
        # dangling mass is redistributed uniformly
        dangling = scores[out_degree == 0].sum()
        new_scores = (1 - damping) / n + damping * (incoming + dangling / n)
        delta = np.abs(new_scores - scores).sum()
        scores = new_scores
        if tol and delta < tol:
            break
    return scores


def top_influencers(scores: Sequence[float], k: int = 10) -> list[tuple[int, float]]:
    """The k highest-Pagerank vertices — the workflow's business output."""
    scores = np.asarray(scores)
    k = min(k, len(scores))
    idx = np.argpartition(-scores, k - 1)[:k] if k else np.array([], dtype=int)
    idx = idx[np.argsort(-scores[idx])]
    return [(int(i), float(scores[i])) for i in idx]
