"""Wordcount and LineCount operators.

Wordcount ("counts distinct words in a corpus of documents", §4.3) is the
operator-modeling workload of Figure 16; LineCount is the §3.3 tutorial
operator (``wc -l`` wrapped in a YARN container).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.analytics.tfidf import tokenize


def wordcount(documents: Iterable[str]) -> dict[str, int]:
    """Count word occurrences across a corpus (MapReduce-style semantics)."""
    counts: Counter[str] = Counter()
    for doc in documents:
        counts.update(tokenize(doc))
    return dict(counts)


def distinct_words(documents: Iterable[str]) -> int:
    """The §4.3 metric: number of distinct words in the corpus."""
    return len(wordcount(documents))


def linecount(text: str) -> int:
    """The LineCount operator of §3.3 (the ``wc -l`` semantics)."""
    if not text:
        return 0
    return text.count("\n") + (0 if text.endswith("\n") else 1)
