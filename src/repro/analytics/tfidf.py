"""TF-IDF feature extraction (first stage of the text-analytics workflow)."""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Sequence

import numpy as np

_TOKEN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lower-case alphanumeric tokens of a text."""
    return _TOKEN.findall(text.lower())


@dataclass
class TfIdfResult:
    """Sparse-ish TF-IDF output: the matrix plus the learned vocabulary."""

    matrix: np.ndarray  # (n_documents, n_terms)
    vocabulary: dict[str, int]
    idf: np.ndarray

    @property
    def n_documents(self) -> int:
        """Number of documents (matrix rows)."""
        return self.matrix.shape[0]

    @property
    def n_terms(self) -> int:
        """Vocabulary size (matrix columns)."""
        return self.matrix.shape[1]


def tfidf_vectorize(
    documents: Sequence[str],
    min_df: int = 1,
    max_terms: int | None = None,
    sublinear_tf: bool = False,
) -> TfIdfResult:
    """Compute TF-IDF vectors for a corpus.

    tf = term frequency within the document (optionally 1+log tf),
    idf = log((1 + N) / (1 + df)) + 1 (the smoothed variant), rows are
    L2-normalized — matching the scikit/MLlib conventions the paper's
    implementations use.
    """
    if not documents:
        raise ValueError("cannot vectorize an empty corpus")
    doc_tokens = [tokenize(doc) for doc in documents]
    df: dict[str, int] = {}
    for tokens in doc_tokens:
        for term in set(tokens):
            df[term] = df.get(term, 0) + 1
    terms = [t for t, count in df.items() if count >= min_df]
    if max_terms is not None and len(terms) > max_terms:
        terms.sort(key=lambda t: (-df[t], t))
        terms = terms[:max_terms]
    terms.sort()
    vocabulary = {t: i for i, t in enumerate(terms)}

    n_docs = len(documents)
    idf = np.array(
        [math.log((1 + n_docs) / (1 + df[t])) + 1.0 for t in terms]
    )
    matrix = np.zeros((n_docs, len(terms)))
    for row, tokens in enumerate(doc_tokens):
        counts: dict[int, int] = {}
        for term in tokens:
            col = vocabulary.get(term)
            if col is not None:
                counts[col] = counts.get(col, 0) + 1
        for col, count in counts.items():
            tf = 1.0 + math.log(count) if sublinear_tf else float(count)
            matrix[row, col] = tf * idf[col]
        norm = np.linalg.norm(matrix[row])
        if norm > 0:
            matrix[row] /= norm
    return TfIdfResult(matrix=matrix, vocabulary=vocabulary, idf=idf)
