"""Graphviz (DOT) renderings of workflows and plans.

The deliverable's web UI displays abstract workflows, materialized plans
(optimal path in green, alternatives in red — Figures 5/19) and execution
progress.  These functions produce the equivalent DOT sources, viewable with
``dot -Tsvg`` or any Graphviz front end — the CLI-era stand-in for the UI.
"""

from __future__ import annotations

from repro.core.workflow import AbstractWorkflow, MaterializedPlan


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def workflow_to_dot(workflow: AbstractWorkflow) -> str:
    """DOT source of an abstract workflow graph.

    Datasets are ellipses, operators are boxes, the target is doubled.
    """
    lines = [f"digraph {_quote(workflow.name)} {{", "  rankdir=LR;"]
    for name, dataset in workflow.datasets.items():
        shape = "doubleoctagon" if name == workflow.target else "ellipse"
        style = ' style=filled fillcolor="#e8f0fe"' if dataset.materialized else ""
        lines.append(f"  {_quote(name)} [shape={shape}{style}];")
    for name in workflow.operators:
        lines.append(f"  {_quote(name)} [shape=box];")
    for op_name, inputs in workflow.op_inputs.items():
        for ds in inputs:
            lines.append(f"  {_quote(ds)} -> {_quote(op_name)};")
    for op_name, outputs in workflow.op_outputs.items():
        for ds in outputs:
            lines.append(f"  {_quote(op_name)} -> {_quote(ds)};")
    lines.append("}")
    return "\n".join(lines)


def plan_to_dot(plan: MaterializedPlan) -> str:
    """DOT source of a materialized plan: the Figure 5/19 'green path'.

    Each step is a box labelled operator@engine (moves are dashed); edges
    follow the dataflow between steps.
    """
    lines = [f"digraph {_quote('plan_' + plan.workflow.name)} {{",
             "  rankdir=LR;"]
    ids = {id(step): f"s{i}" for i, step in enumerate(plan.steps)}
    producer: dict[int, str] = {}
    for step in plan.steps:
        node = ids[id(step)]
        label = f"{step.operator.name}\\n@{step.engine}"
        if step.is_move:
            lines.append(
                f"  {node} [shape=box style=dashed label={_quote(label)}];")
        else:
            lines.append(
                f"  {node} [shape=box style=filled fillcolor="
                f"\"#d9f2d9\" label={_quote(label)}];")
        for out in step.outputs:
            producer[id(out)] = node
    for step in plan.steps:
        node = ids[id(step)]
        for inp in step.inputs:
            src = producer.get(id(inp))
            if src is not None:
                lines.append(f"  {src} -> {node} [label={_quote(inp.name)}];")
            else:
                source = f"d_{inp.name}"
                lines.append(
                    f"  {_quote(source)} [shape=ellipse label={_quote(inp.name)}];")
                lines.append(f"  {_quote(source)} -> {node};")
    lines.append("}")
    return "\n".join(lines)


def musqle_plan_to_dot(plan) -> str:
    """DOT source of a MuSQLE multi-engine SQL plan tree."""
    from repro.musqle.plan import MovePlanNode, SQLPlanNode

    lines = ["digraph musqle_plan {", "  rankdir=BT;"]
    ids = {}
    for i, node in enumerate(plan.walk()):
        ids[id(node)] = f"n{i}"
        if isinstance(node, SQLPlanNode):
            label = (f"{node.out_name}@{node.engine}\\n"
                     f"~{node.est_stats.n_rows} rows")
            lines.append(
                f"  n{i} [shape=box style=filled fillcolor=\"#d9e8f2\" "
                f"label={_quote(label)}];")
        elif isinstance(node, MovePlanNode):
            label = f"move -> {node.engine}\\n{node.move_seconds:.2f}s"
            lines.append(f"  n{i} [shape=box style=dashed label={_quote(label)}];")
    for node in plan.walk():
        for child in node.children():
            lines.append(f"  {ids[id(child)]} -> {ids[id(node)]};")
    lines.append("}")
    return "\n".join(lines)
