"""Mini in-memory SQL substrate.

The relational-analytics workflow (Fig 13) and the MuSQLE side system
(Appendix B) need SQL engines to plan over.  This package provides the
substrate they all share: column-oriented in-memory tables with statistics,
a parser for select-project-join queries, a hash-join executor, and a
TPC-H-style data generator.
"""

from repro.sqlengine.schema import ColumnStats, Table, TableStats
from repro.sqlengine.parser import (
    Filter,
    JoinCondition,
    Query,
    SQLSyntaxError,
    parse_query,
)
from repro.sqlengine.executor import QueryResult, execute_query
from repro.sqlengine.tpch import TPCH_TABLES, generate_tpch

__all__ = [
    "ColumnStats",
    "Filter",
    "JoinCondition",
    "Query",
    "QueryResult",
    "SQLSyntaxError",
    "TPCH_TABLES",
    "Table",
    "TableStats",
    "execute_query",
    "generate_tpch",
    "parse_query",
]
