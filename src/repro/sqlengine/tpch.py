"""TPC-H-style synthetic data generator.

Generates the eight TPC-H tables at a given scale factor with the foreign-key
structure and key columns the evaluation queries touch.  Row counts are the
official TPC-H proportions scaled down by ``ROW_SCALE`` so that a "50 GB"
experiment stays laptop-sized while preserving the relative table sizes the
placement decisions depend on.
"""

from __future__ import annotations

import numpy as np

from repro.sqlengine.schema import Table

#: official rows-per-SF divided by this factor
ROW_SCALE = 1000

#: TPC-H rows at scale factor 1 (before ROW_SCALE reduction)
_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]

TPCH_TABLES = tuple(_BASE_ROWS)


def _rows(table: str, scale_factor: float) -> int:
    if table in ("region", "nation"):
        return _BASE_ROWS[table]
    return max(2, int(_BASE_ROWS[table] * scale_factor / ROW_SCALE))


def _skewed_fk(rng: np.ndarray, n_refs: int, n: int) -> np.ndarray:
    """Foreign keys with a popularity skew (some customers order a lot).

    Real TPC-H data is uniform, but real *deployments* are not; the skew
    makes uniformity-based cardinality estimates err in the way the MuSQLE
    accuracy experiments observe (errors compound through deeper joins).
    """
    draws = rng.beta(0.8, 2.5, n)
    return np.minimum((draws * n_refs).astype(np.int64), n_refs - 1)


def generate_tpch(scale_factor: float = 1.0, seed: int = 0) -> dict[str, Table]:
    """Generate all eight tables; returns ``{name: Table}``."""
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rng = np.random.default_rng(seed)
    n = {t: _rows(t, scale_factor) for t in _BASE_ROWS}

    region = Table("region", {
        "r_regionkey": np.arange(n["region"]),
        "r_name": np.array(["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]),
    })
    nation = Table("nation", {
        "n_nationkey": np.arange(n["nation"]),
        "n_name": np.array(NATIONS),
        "n_regionkey": rng.integers(0, n["region"], n["nation"]),
    })
    supplier = Table("supplier", {
        "s_suppkey": np.arange(n["supplier"]),
        "s_nationkey": rng.integers(0, n["nation"], n["supplier"]),
        "s_acctbal": rng.uniform(-999, 9999, n["supplier"]).round(2),
    })
    customer = Table("customer", {
        "c_custkey": np.arange(n["customer"]),
        "c_nationkey": rng.integers(0, n["nation"], n["customer"]),
        "c_acctbal": rng.uniform(-999, 9999, n["customer"]).round(2),
        "c_mktsegment": rng.integers(0, 5, n["customer"]),
    })
    part = Table("part", {
        "p_partkey": np.arange(n["part"]),
        # spans [900, 2100] at any scale (the official formula is
        # 900 + (p_partkey % 1000)/10-ish; a multiplicative hash keeps the
        # range full even for scaled-down row counts)
        "p_retailprice": (900 + (np.arange(n["part"]) * 7919 % 1000) * 1.2001).round(2),
        "p_size": rng.integers(1, 51, n["part"]),
    })
    partsupp = Table("partsupp", {
        "ps_partkey": np.repeat(np.arange(n["part"]),
                                max(1, n["partsupp"] // max(n["part"], 1)))[: n["partsupp"]],
        "ps_suppkey": rng.integers(0, n["supplier"], n["partsupp"]),
        "ps_supplycost": rng.uniform(1, 1000, n["partsupp"]).round(2),
        "ps_availqty": rng.integers(1, 10_000, n["partsupp"]),
    })
    orders = Table("orders", {
        "o_orderkey": np.arange(n["orders"]),
        "o_custkey": _skewed_fk(rng, n["customer"], n["orders"]),
        "o_totalprice": rng.uniform(800, 500_000, n["orders"]).round(2),
        "o_orderdate": rng.integers(19920101, 19981231, n["orders"]),
    })
    lineitem = Table("lineitem", {
        "l_orderkey": _skewed_fk(rng, n["orders"], n["lineitem"]),
        "l_partkey": _skewed_fk(rng, n["part"], n["lineitem"]),
        "l_suppkey": _skewed_fk(rng, n["supplier"], n["lineitem"]),
        "l_quantity": rng.integers(1, 51, n["lineitem"]),
        "l_extendedprice": rng.uniform(900, 100_000, n["lineitem"]).round(2),
    })
    return {
        "region": region, "nation": nation, "supplier": supplier,
        "customer": customer, "part": part, "partsupp": partsupp,
        "orders": orders, "lineitem": lineitem,
    }


def schemas(tables: dict[str, Table]) -> dict[str, list[str]]:
    """``{table: [columns]}`` view for the parser."""
    return {name: table.column_names for name, table in tables.items()}
