"""Query execution: filter pushdown, greedy hash joins, projection."""

from __future__ import annotations

import operator
from dataclasses import dataclass

import numpy as np

from repro.sqlengine.parser import Filter, Query
from repro.sqlengine.schema import Table

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class ExecutionError(RuntimeError):
    """The query references data the catalog does not hold."""


@dataclass
class QueryResult:
    """Result rows plus the operator-level counters tests/benchmarks read."""

    table: Table
    joins_executed: int
    rows_scanned: int
    #: actual (left_rows, right_rows, out_rows, left_cols, right_cols) per
    #: 2-way join executed — what true-cost accounting needs
    join_shapes: list[tuple[int, int, int, int, int]] = None

    def __post_init__(self) -> None:
        if self.join_shapes is None:
            self.join_shapes = []

    @property
    def n_rows(self) -> int:
        """Rows in the result table."""
        return self.table.n_rows


def apply_filters(table: Table, filters: list[Filter]) -> Table:
    """Apply constant predicates to one table (filter pushdown)."""
    if not filters:
        return table
    mask = np.ones(table.n_rows, dtype=bool)
    for f in filters:
        column = table.column(f.column)
        mask &= _OPS[f.op](column, f.value)
    return table.select_rows(mask)


def hash_join(
    left: Table, left_key: str, right: Table, right_key: str
) -> Table:
    """Classic build/probe equi-join; output carries both column sets.

    The smaller side is the build side.  Column-name collisions keep the
    left value (TPC-H key names are disjoint per table, so this only affects
    self-joins, which the dialect does not support).
    """
    if right.n_rows < left.n_rows:
        left, left_key, right, right_key = right, right_key, left, left_key
    build: dict = {}
    build_keys = left.column(left_key)
    for i, key in enumerate(build_keys.tolist()):
        build.setdefault(key, []).append(i)
    probe_keys = right.column(right_key)
    left_idx: list[int] = []
    right_idx: list[int] = []
    for j, key in enumerate(probe_keys.tolist()):
        for i in build.get(key, ()):
            left_idx.append(i)
            right_idx.append(j)
    li = np.array(left_idx, dtype=int)
    ri = np.array(right_idx, dtype=int)
    columns: dict[str, np.ndarray] = {}
    for name, values in left.columns.items():
        columns[name] = values[li] if len(li) else values[:0]
    for name, values in right.columns.items():
        if name not in columns:
            columns[name] = values[ri] if len(ri) else values[:0]
    return Table(f"({left.name}⋈{right.name})", columns)


def execute_query(query: Query, catalog: dict[str, Table]) -> QueryResult:
    """Execute a parsed query against a table catalog.

    Strategy: push filters to base tables, then repeatedly hash-join the
    pair connected by a join condition with the smallest combined size
    (a greedy left-deep-ish order, adequate for the substrate — MuSQLE's
    optimizer makes the *real* ordering decisions above this layer).
    """
    missing = [t for t in query.tables if t not in catalog]
    if missing:
        raise ExecutionError(f"catalog is missing tables {missing}")
    parts: dict[str, Table] = {}
    rows_scanned = 0
    for name in query.tables:
        base = catalog[name]
        rows_scanned += base.n_rows
        table_filters = [f for f in query.filters if f.table == name]
        parts[name] = apply_filters(base, table_filters)

    # each part is a "component"; joins merge components
    component_of = {name: name for name in query.tables}
    pending = list(query.joins)
    joins_executed = 0
    join_shapes: list[tuple[int, int, int, int, int]] = []
    while pending:
        # pick the join whose two components are smallest
        def join_size(jc):
            lc = component_of[jc.left_table]
            rc = component_of[jc.right_table]
            if lc == rc:
                return -1  # already joined: apply as residual filter first
            return parts[lc].n_rows + parts[rc].n_rows

        pending.sort(key=join_size)
        jc = pending.pop(0)
        lc = component_of[jc.left_table]
        rc = component_of[jc.right_table]
        if lc == rc:
            # residual predicate within an already-joined component
            part = parts[lc]
            mask = part.column(jc.left_column) == part.column(jc.right_column)
            part = part.select_rows(mask)
        else:
            left_part, right_part = parts[lc], parts[rc]
            part = hash_join(left_part, jc.left_column, right_part, jc.right_column)
            joins_executed += 1
            join_shapes.append((
                left_part.n_rows, right_part.n_rows, part.n_rows,
                len(left_part.columns), len(right_part.columns),
            ))
        merged = part
        for name, comp in list(component_of.items()):
            if comp in (lc, rc):
                component_of[name] = merged.name
        if lc != merged.name:
            parts.pop(lc, None)
        if rc != merged.name:
            parts.pop(rc, None)
        parts[merged.name] = merged

    components = {component_of[t] for t in query.tables}
    if len(components) > 1:
        # cartesian product of disconnected components (rare; small inputs)
        tables = [parts[c] for c in sorted(components)]
        result = tables[0]
        for other in tables[1:]:
            left_n, right_n = result.n_rows, other.n_rows
            li = np.repeat(np.arange(left_n), right_n)
            ri = np.tile(np.arange(right_n), left_n)
            columns = {n: v[li] for n, v in result.columns.items()}
            for n, v in other.columns.items():
                columns.setdefault(n, v[ri])
            result = Table(f"({result.name}×{other.name})", columns)
    else:
        result = parts[next(iter(components))]

    if query.is_aggregation:
        result = aggregate(result, query)
    elif query.select != ("*",):
        result = result.project(list(query.select))
    return QueryResult(table=result, joins_executed=joins_executed,
                       rows_scanned=rows_scanned, join_shapes=join_shapes)


_AGG_FUNCS = {
    "count": len,
    "sum": np.sum,
    "avg": np.mean,
    "min": np.min,
    "max": np.max,
}


def aggregate(table: Table, query: Query) -> Table:
    """Apply GROUP BY + aggregate functions to a (joined, filtered) table.

    Without GROUP BY the whole table is one group (a single output row).
    Output columns are the group keys followed by the aggregate aliases.
    """
    n = table.n_rows
    if query.group_by:
        key_columns = [table.column(c) for c in query.group_by]
        groups: dict[tuple, list[int]] = {}
        for i in range(n):
            key = tuple(col[i] for col in key_columns)
            groups.setdefault(key, []).append(i)
        ordered = sorted(groups.items(), key=lambda kv: kv[0])
    else:
        ordered = [((), list(range(n)))]

    columns: dict[str, list] = {c: [] for c in query.group_by}
    for agg in query.aggregates:
        columns[agg.alias] = []
    for key, indices in ordered:
        for name, value in zip(query.group_by, key):
            columns[name].append(value)
        idx = np.asarray(indices, dtype=int)
        for agg in query.aggregates:
            if agg.func == "count":
                columns[agg.alias].append(len(idx))
                continue
            values = table.column(agg.column)[idx]
            if len(values) == 0:
                columns[agg.alias].append(0.0)
            else:
                columns[agg.alias].append(float(_AGG_FUNCS[agg.func](values)))
    return Table("(aggregated)", {k: np.asarray(v) for k, v in columns.items()})
