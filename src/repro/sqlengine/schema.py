"""Column-oriented in-memory tables with statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ColumnStats:
    """Per-column statistics used for cardinality estimation.

    ``histogram`` optionally holds equi-depth bin edges (length = bins + 1):
    each bin contains the same number of rows, so a range predicate's
    selectivity is the fraction of bins it covers — robust to the skew that
    wrecks plain min/max interpolation.
    """

    n_distinct: int
    min_value: float
    max_value: float
    histogram: tuple[float, ...] = ()

    def range_selectivity_above(self, value: float) -> float | None:
        """Fraction of rows with column > value, from the histogram.

        Returns None when no histogram is available.
        """
        edges = self.histogram
        if len(edges) < 2:
            return None
        if value >= edges[-1]:
            return 0.0
        if value < edges[0]:
            return 1.0
        n_bins = len(edges) - 1
        covered = 0.0
        for i in range(n_bins):
            lo, hi = edges[i], edges[i + 1]
            if value >= hi:
                continue  # the whole bin (incl. zero-width ties) is <= value
            if value <= lo:
                covered += 1.0
            else:
                covered += (hi - value) / (hi - lo)
        return covered / n_bins


@dataclass(frozen=True)
class TableStats:
    """Table statistics: the payload of MuSQLE's ``injectStats``."""

    n_rows: int
    n_columns: int
    columns: dict[str, ColumnStats]

    @property
    def size_bytes(self) -> float:
        """Approximate byte size (8-byte values)."""
        return float(self.n_rows) * self.n_columns * 8.0

    def column(self, name: str) -> ColumnStats | None:
        """Stats of one column, or None."""
        return self.columns.get(name)


class Table:
    """An immutable column-store table: name + {column: numpy array}."""

    def __init__(self, name: str, columns: dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError(f"table {name!r} needs at least one column")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"table {name!r} has ragged columns: {lengths}")
        self.name = name
        self.columns = {k: np.asarray(v) for k, v in columns.items()}

    @property
    def n_rows(self) -> int:
        """Row count."""
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        """One column's values (KeyError if absent)."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def select_rows(self, mask_or_index: np.ndarray) -> "Table":
        """Row subset as a new table (boolean mask or integer index)."""
        return Table(self.name, {k: v[mask_or_index] for k, v in self.columns.items()})

    def project(self, names: list[str]) -> "Table":
        """Column subset as a new table."""
        return Table(self.name, {n: self.column(n) for n in names})

    def renamed(self, name: str) -> "Table":
        """Same columns under a new table name."""
        return Table(name, self.columns)

    def stats(self, histogram_bins: int = 0) -> TableStats:
        """Compute exact statistics (what ANALYZE would gather).

        ``histogram_bins > 0`` additionally builds equi-depth histograms for
        numeric columns (ANALYZE's ``statistics_target`` knob).
        """
        col_stats: dict[str, ColumnStats] = {}
        for name, values in self.columns.items():
            if len(values) == 0:
                col_stats[name] = ColumnStats(0, 0.0, 0.0)
                continue
            numeric = np.issubdtype(values.dtype, np.number)
            histogram: tuple[float, ...] = ()
            if numeric and histogram_bins > 0 and len(values) > histogram_bins:
                quantiles = np.linspace(0.0, 100.0, histogram_bins + 1)
                histogram = tuple(
                    float(v) for v in np.percentile(values, quantiles))
            col_stats[name] = ColumnStats(
                n_distinct=int(len(np.unique(values))),
                min_value=float(values.min()) if numeric else 0.0,
                max_value=float(values.max()) if numeric else 0.0,
                histogram=histogram,
            )
        return TableStats(self.n_rows, len(self.columns), col_stats)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.n_rows}, cols={self.column_names})"
