"""A parser for the select-project-join SQL dialect the paper's queries use.

Supported shape (the TPCH-derived join/filter queries of MuSQLE §IX)::

    SELECT c_name, o_orderdate
    FROM customer, orders, nation
    WHERE c_custkey = o_custkey
      AND c_nationkey = n_nationkey
      AND n_name = 'GERMANY'
      AND o_totalprice > 1000

i.e. comma-joins with a conjunction of equi-join predicates and constant
filters.  ``SELECT *`` is allowed.  Column names may be qualified
(``customer.c_custkey``) or bare (resolved against the table schemas).
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class SQLSyntaxError(ValueError):
    """The query does not fit the supported dialect."""


@dataclass(frozen=True)
class JoinCondition:
    """Equi-join predicate ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def touches(self, table: str) -> bool:
        """Whether the predicate references the table."""
        return table in (self.left_table, self.right_table)


@dataclass(frozen=True)
class Filter:
    """Constant predicate ``table.column <op> value``."""

    table: str
    column: str
    op: str  # '=', '!=', '<', '<=', '>', '>='
    value: object


@dataclass(frozen=True)
class Aggregate:
    """``func(column) AS alias`` in the select list; COUNT(*) has column '*'."""

    func: str  # 'count', 'sum', 'avg', 'min', 'max'
    column: str
    alias: str


@dataclass(frozen=True)
class Query:
    """A parsed SPJ(+aggregate) query."""
    select: tuple[str, ...]  # plain column names, or ('*',)
    tables: tuple[str, ...]
    joins: tuple[JoinCondition, ...]
    filters: tuple[Filter, ...]
    aggregates: tuple[Aggregate, ...] = ()
    group_by: tuple[str, ...] = ()

    @property
    def is_aggregation(self) -> bool:
        """True when the select list has aggregate functions."""
        return bool(self.aggregates)


_QUERY_RE = re.compile(
    r"^\s*select\s+(?P<select>.+?)\s+from\s+(?P<tables>.+?)"
    r"(?:\s+where\s+(?P<where>.+?))?"
    r"(?:\s+group\s+by\s+(?P<groupby>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_AGGREGATE_RE = re.compile(
    r"^(?P<func>count|sum|avg|min|max)\s*\(\s*(?P<col>\*|[\w.]+)\s*\)"
    r"(?:\s+as\s+(?P<alias>\w+))?$",
    re.IGNORECASE,
)
_COMPARISON_RE = re.compile(
    r"^(?P<lhs>[\w.]+)\s*(?P<op>=|!=|<>|<=|>=|<|>)\s*(?P<rhs>.+)$", re.DOTALL
)


def _parse_value(token: str):
    token = token.strip()
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise SQLSyntaxError(f"cannot parse constant {token!r}") from None


def _resolve(column: str, schemas: dict[str, list[str]]) -> tuple[str, str]:
    """Resolve a (possibly qualified) column to its owning table."""
    if "." in column:
        table, _, name = column.partition(".")
        if table not in schemas:
            raise SQLSyntaxError(f"unknown table {table!r} in {column!r}")
        if name not in schemas[table]:
            raise SQLSyntaxError(f"table {table!r} has no column {name!r}")
        return table, name
    owners = [t for t, cols in schemas.items() if column in cols]
    if not owners:
        raise SQLSyntaxError(f"unknown column {column!r}")
    if len(owners) > 1:
        raise SQLSyntaxError(f"ambiguous column {column!r} (in {owners})")
    return owners[0], column


def parse_query(sql: str, schemas: dict[str, list[str]]) -> Query:
    """Parse ``sql`` against ``{table: [columns]}`` schemas."""
    match = _QUERY_RE.match(sql)
    if match is None:
        raise SQLSyntaxError(f"not a SELECT query: {sql[:80]!r}")
    select_raw = match.group("select").strip()
    tables = tuple(t.strip() for t in match.group("tables").split(","))
    for table in tables:
        if table not in schemas:
            raise SQLSyntaxError(f"unknown table {table!r}")
        if not re.fullmatch(r"\w+", table):
            raise SQLSyntaxError(f"bad table reference {table!r}")

    local = {t: schemas[t] for t in tables}
    aggregates: list[Aggregate] = []
    if select_raw == "*":
        select: tuple[str, ...] = ("*",)
    else:
        plain: list[str] = []
        for item in select_raw.split(","):
            item = item.strip()
            agg = _AGGREGATE_RE.match(item)
            if agg is not None:
                func = agg.group("func").lower()
                col = agg.group("col")
                if col != "*":
                    col = _resolve(col, local)[1]
                elif func != "count":
                    raise SQLSyntaxError(f"{func}(*) is not supported")
                alias = agg.group("alias") or f"{func}_{col.replace('*', 'all')}"
                aggregates.append(Aggregate(func, col, alias))
            else:
                plain.append(_resolve(item, local)[1])
        select = tuple(plain) if plain else ("*",) if not aggregates else ()

    group_by: tuple[str, ...] = ()
    group_raw = match.group("groupby")
    if group_raw:
        if not aggregates:
            raise SQLSyntaxError("GROUP BY without aggregate functions")
        group_by = tuple(
            _resolve(c.strip(), local)[1] for c in group_raw.split(","))
    if aggregates:
        extra = set(select) - set(group_by)
        if extra:
            raise SQLSyntaxError(
                f"non-aggregated columns {sorted(extra)} must appear in GROUP BY")
        select = group_by

    joins: list[JoinCondition] = []
    filters: list[Filter] = []
    where = match.group("where")
    if where:
        for predicate in re.split(r"\s+and\s+", where, flags=re.IGNORECASE):
            predicate = predicate.strip()
            comp = _COMPARISON_RE.match(predicate)
            if comp is None:
                raise SQLSyntaxError(f"unsupported predicate {predicate!r}")
            lhs, op, rhs = comp.group("lhs"), comp.group("op"), comp.group("rhs").strip()
            if op == "<>":
                op = "!="
            lhs_table, lhs_col = _resolve(lhs, local)
            if re.fullmatch(r"[\w.]+", rhs) and not re.fullmatch(r"[\d.]+", rhs):
                # column = column -> join condition
                rhs_table, rhs_col = _resolve(rhs, local)
                if op != "=":
                    raise SQLSyntaxError(
                        f"only equi-joins are supported, got {predicate!r}")
                joins.append(JoinCondition(lhs_table, lhs_col, rhs_table, rhs_col))
            else:
                filters.append(Filter(lhs_table, lhs_col, op, _parse_value(rhs)))
    return Query(select=select, tables=tables, joins=tuple(joins),
                 filters=tuple(filters), aggregates=tuple(aggregates),
                 group_by=group_by)
