"""The enforcer: executes materialized plans over the (simulated) cluster.

Translates plan steps into engine executions and data movements, monitors
service availability in real time, and — on failure — replans the remaining
workflow (D3.3 §2.3).  Two replanning strategies are implemented for the
§4.5 evaluation:

- ``IRES_REPLAN`` keeps materialized intermediate results and replans only
  the remainder of the workflow;
- ``TRIVIAL_REPLAN`` discards intermediates and reschedules the whole
  workflow from scratch.

Planning/replanning time is measured in *real* wall-clock (it is our code
running); engine work — including retry backoffs, partial work done before
a failure was detected, and straggler slowdowns — is charged to the
simulated clock.

Transient faults (flaky RPCs, stragglers, crash-after-partial-work) are
retried in place with backoff before any replanning happens; engines that
keep failing trip a per-engine circuit breaker, and the open set is
subtracted from the available engines during (re)planning so the planner
routes around sick engines until their breaker half-opens again (see
:mod:`repro.execution.resilience`).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.dataset import Dataset
from repro.core.estimators import monetary_cost, resources_for, workload_from_inputs
from repro.core.planner import Planner, PlanningError
from repro.core.workflow import AbstractWorkflow, MaterializedPlan, PlanStep
from repro.engines.errors import (
    EngineError,
    EngineUnavailableError,
    StepTimeoutError,
    TransientEngineError,
)
from repro.engines.faults import FaultInjector, TransientOutcome
from repro.engines.monitoring import MetricRecord
from repro.engines.profiles import Resources
from repro.engines.registry import MultiEngineCloud
from repro.execution.journal import (
    PLAN_CHOSEN,
    REPLAN,
    RUN_ADMITTED,
    RUN_FINISHED,
    RUN_RESUMED,
    STEP_FINISHED,
    STEP_STARTED,
    RecoveredRun,
    RunJournal,
    dataset_payload,
    journal_path,
    plan_payload,
    recover,
)
from repro.execution.resilience import (
    ResilienceManager,
    RunCancelled,
    RunControl,
    RunDeadlineExceeded,
)
from repro.obs.accuracy import NULL_LEDGER, AccuracyLedger
from repro.obs.context import (
    bind_run_id,
    current_run_id,
    current_tenant,
    new_run_id,
)
from repro.obs.drift import DriftDetector
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import NULL_TRACER, Tracer

IRES_REPLAN = "IResReplan"
TRIVIAL_REPLAN = "TrivialReplan"

_LOG = get_logger("executor")
_RUNS = REGISTRY.counter(
    "ires_executor_runs_total",
    "Workflow executions by outcome",
    labels=("status", "run_id"),
)
_STEPS = REGISTRY.counter(
    "ires_executor_steps_total",
    "Enforced plan steps by engine and outcome",
    labels=("engine", "status", "run_id"),
)
_STEP_SECONDS = REGISTRY.histogram(
    "ires_executor_step_sim_seconds",
    "Simulated seconds charged per enforced step",
    labels=("engine",),
)
_REPLANS = REGISTRY.counter(
    "ires_executor_replans_total",
    "Replanning passes triggered by step failures",
    labels=("run_id",),
)

#: simulated seconds to notice a failed submission (health probe round-trip);
#: failures are never free on the simulated clock.
FAILURE_DETECTION_SECONDS = 1.0


class ExecutionFailed(RuntimeError):
    """The workflow could not be completed (replanning exhausted)."""


@dataclass
class StepExecution:
    """Outcome of one enforced plan step."""

    step: PlanStep
    engine: str
    sim_seconds: float
    started_at: float
    success: bool
    error: str | None = None
    attempt: int = 1  # 1 = first try; >1 = a resilience-layer retry
    #: engine cores the step ran with (0 for data moves) — the accounting
    #: layer charges engine-core-seconds = sim_seconds * cores per tenant
    cores: int = 0


@dataclass
class ExecutionReport:
    """Everything the §4 experiments measure about one workflow run."""

    workflow: str
    strategy: str
    succeeded: bool
    sim_time: float
    run_id: str = ""
    planning_seconds: list[float] = field(default_factory=list)
    plans: list[MaterializedPlan] = field(default_factory=list)
    executions: list[StepExecution] = field(default_factory=list)
    replans: int = 0
    failures: list[str] = field(default_factory=list)
    retries: int = 0  # transient failures absorbed without replanning
    #: steps seeded from a recovered journal instead of being re-executed
    recovered_steps: int = 0
    #: planning passes (initial or replan) served from the plan cache
    cached_plans: int = 0
    #: PlanProvenance per planning pass (only with record_provenance planners)
    provenances: list = field(default_factory=list)

    @property
    def initial_planning_seconds(self) -> float:
        """Wall-clock of the first (pre-failure) planning pass."""
        return self.planning_seconds[0] if self.planning_seconds else 0.0

    @property
    def critical_path_seconds(self) -> float:
        """Makespan if independent steps had run concurrently.

        The enforcer charges the simulated clock serially, but the plan's
        dataflow admits parallelism (e.g. the relational workflow's q1 and
        q2 touch disjoint stores).  This walks the successful executions,
        starting each step after the producers of its inputs finished, and
        returns the resulting critical-path length.
        """
        finish_by_dataset: dict[str, float] = {}
        makespan = 0.0
        for execution in self.executions:
            if not execution.success:
                continue
            step = execution.step
            start = max(
                (finish_by_dataset.get(d.name, 0.0) for d in step.inputs),
                default=0.0,
            )
            finish = start + execution.sim_seconds
            for out in step.outputs:
                finish_by_dataset[out.name] = finish
            makespan = max(makespan, finish)
        return makespan

    @property
    def replanning_seconds(self) -> float:
        """Wall-clock summed over all replanning passes."""
        return sum(self.planning_seconds[1:])

    def engines_used(self) -> list[str]:
        """Engine of every successful step, in execution order."""
        return [e.engine for e in self.executions if e.success]


def hdfs_path(path: str | None) -> str | None:
    """Normalize an ``hdfs://…`` URI to the SimHDFS namespace path.

    Both ``hdfs:///p`` and ``hdfs://namenode/p`` resolve to ``/p`` (any
    authority component is dropped — there is a single simulated namenode).
    """
    if not path or not path.startswith("hdfs://"):
        return None
    rest = path[len("hdfs://"):]
    if not rest.startswith("/"):  # authority present: hdfs://host/path
        _, _, rest = rest.partition("/")
        rest = "/" + rest
    return rest


class WorkflowExecutor:
    """Runs abstract workflows end-to-end: plan → enforce → replan on failure.

    When a materialized operator carries an ``impl`` callable and its input
    datasets resolve to real HDFS payloads, the executor runs the
    implementation and stores the genuine artifact back into HDFS — timing
    always comes from the engine's performance profile (the data plane and
    the cost plane are decoupled, like a scheduler driving real jobs).
    """

    def __init__(
        self,
        cloud: MultiEngineCloud,
        planner: Planner,
        fault_injector: FaultInjector | None = None,
        strategy: str = IRES_REPLAN,
        max_replans: int = 8,
        health_checks: bool = True,
        resilience: ResilienceManager | None = None,
        failure_detection_seconds: float = FAILURE_DETECTION_SECONDS,
        tracer: Tracer | None = None,
        ledger: AccuracyLedger | None = None,
        drift: DriftDetector | None = None,
        journal_dir: str | Path | None = None,
        journal_fsync: bool = True,
        crash_after_steps: int | None = None,
    ) -> None:
        if strategy not in (IRES_REPLAN, TRIVIAL_REPLAN):
            raise ValueError(f"unknown replanning strategy {strategy!r}")
        self.cloud = cloud
        self.planner = planner
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.drift = drift
        if drift is not None and drift.observe not in self.ledger.listeners:
            self.ledger.listeners.append(drift.observe)
        #: run_id -> provenances of that run's planning passes (newest-last,
        #: bounded; the ``GET /explain/{run_id}`` data source)
        self.explains: "OrderedDict[str, list]" = OrderedDict()
        self.max_explains = 64
        self.fault_injector = fault_injector
        self.strategy = strategy
        self.max_replans = max_replans
        self.health_checks = health_checks
        self.resilience = (
            resilience if resilience is not None
            else ResilienceManager(collector=cloud.collector)
        )
        self.failure_detection_seconds = failure_detection_seconds
        #: when set, every run write-ahead journals its state under this
        #: directory (one ``<run_id>.jsonl`` per run) and becomes resumable
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.journal_fsync = journal_fsync
        #: crash-test hook: SIGKILL the process after journaling N steps
        self.crash_after_steps = crash_after_steps

    # -- public -------------------------------------------------------------
    def execute(
        self,
        workflow: AbstractWorkflow,
        cache=None,
        *,
        run_id: str | None = None,
        control: RunControl | None = None,
        resume_from: RecoveredRun | None = None,
    ) -> ExecutionReport:
        """Plan, enforce and (on failures) replan one workflow.

        ``cache`` (a :class:`~repro.execution.cache.ResultCache`) enables
        cross-execution reuse: steps whose computation the cache has already
        seen enter planning as materialized results, so only the new suffix
        of the workflow runs.

        ``control`` wires in cooperative cancellation and a wall-clock
        deadline (checked at step boundaries and inside retry loops);
        ``resume_from`` seeds the run with a recovered journal's completed
        steps, so only the unfinished suffix is planned and executed.
        When ``journal_dir`` is configured, every state change is
        write-ahead journaled and the run survives a scheduler crash.
        """
        if run_id is None:
            run_id = resume_from.run_id if resume_from is not None else new_run_id()
        journal = self._open_journal(run_id)
        tenant = current_tenant() or ""
        with bind_run_id(run_id):
            with self.tracer.span(
                f"execute:{workflow.name}", category="executor",
                workflow=workflow.name, strategy=self.strategy,
                tenant=tenant,
            ) as span:
                if journal is not None:
                    if resume_from is not None:
                        journal.append(
                            RUN_RESUMED, workflow=workflow.name,
                            recoveredSteps=len(resume_from.finished_steps),
                            tenant=tenant)
                    else:
                        journal.append(RUN_ADMITTED, workflow=workflow.name,
                                       strategy=self.strategy, tenant=tenant)
                try:
                    report = self._execute_inner(
                        workflow, cache, run_id, journal=journal,
                        control=control, resume_from=resume_from)
                except (RunCancelled, RunDeadlineExceeded) as exc:
                    state = ("cancelled" if isinstance(exc, RunCancelled)
                             else "deadline")
                    _RUNS.inc(status=state, run_id=run_id)
                    _LOG.warning("run_stopped", workflow=workflow.name,
                                 state=state, error=str(exc))
                    self._close_journal(journal, state, error=str(exc))
                    raise
                except KeyboardInterrupt:
                    # SIGINT: journal a resumable state before propagating
                    _RUNS.inc(status="interrupted", run_id=run_id)
                    _LOG.warning("run_interrupted", workflow=workflow.name)
                    self._close_journal(journal, "interrupted",
                                        error="SIGINT")
                    raise
                except Exception as exc:
                    _RUNS.inc(status="failed", run_id=run_id)
                    _LOG.error("run_failed", workflow=workflow.name,
                               error=str(exc))
                    self._close_journal(journal, "failed", error=str(exc))
                    raise
                if self.tracer.enabled:
                    span.set_attribute("replans", report.replans)
                    span.set_attribute("retries", report.retries)
                    span.set_attribute("sim_time", report.sim_time)
        if journal is not None:
            journal.append(RUN_FINISHED, state="succeeded",
                           simTime=report.sim_time, replans=report.replans,
                           retries=report.retries,
                           steps=len(report.executions),
                           recoveredSteps=report.recovered_steps)
            journal.close()
        _RUNS.inc(status="ok", run_id=run_id)
        _LOG.info("run_finished", workflow=workflow.name,
                  sim_time=report.sim_time, replans=report.replans,
                  retries=report.retries, steps=len(report.executions))
        return report

    def resume(
        self,
        workflow: AbstractWorkflow,
        recovered: RecoveredRun | str | Path,
        cache=None,
        control: RunControl | None = None,
    ) -> ExecutionReport:
        """Resume a journaled run: replay its journal, run only the rest.

        ``recovered`` is a :class:`RecoveredRun` (or a journal path to
        recover from).  Completed steps enter planning as materialized
        results — they are never re-executed — and the journal is appended
        in place, preserving the full run history across the crash.
        """
        if not isinstance(recovered, RecoveredRun):
            recovered = recover(recovered)
        return self.execute(workflow, cache, run_id=recovered.run_id,
                            control=control, resume_from=recovered)

    def _open_journal(self, run_id: str) -> RunJournal | None:
        if self.journal_dir is None:
            return None
        return RunJournal(journal_path(self.journal_dir, run_id),
                          run_id=run_id, fsync=self.journal_fsync,
                          crash_after_steps=self.crash_after_steps)

    @staticmethod
    def _close_journal(journal: RunJournal | None, state: str,
                       error: str = "") -> None:
        if journal is None:
            return
        journal.append(RUN_FINISHED, state=state, error=error)
        journal.close()

    def _execute_inner(
        self, workflow: AbstractWorkflow, cache, run_id: str,
        journal: RunJournal | None = None,
        control: RunControl | None = None,
        resume_from: RecoveredRun | None = None,
    ) -> ExecutionReport:
        report = ExecutionReport(
            workflow=workflow.name, strategy=self.strategy, succeeded=False,
            sim_time=0.0, run_id=run_id,
        )
        sim_start = self.cloud.clock.now
        completed: dict[str, Dataset] = {}
        if resume_from is not None:
            completed.update(resume_from.completed)
            report.recovered_steps = len(resume_from.finished_steps)
        if cache is not None:
            # probe with a throwaway plan, then replan around the cached prefix
            probe = self._plan(workflow, completed, report)
            completed.update(cache.seed_completed(probe.steps))
            report.plans.clear()
            report.planning_seconds.clear()
            report.provenances.clear()
            report.cached_plans = 0
            if report.run_id in self.explains:
                self.explains[report.run_id].clear()
        #: dataset name -> HDFS path of its real artifact (the data plane)
        payload_paths: dict[str, str] = {}
        for dataset in workflow.datasets.values():
            path = hdfs_path(dataset.path)
            if path is not None:
                payload_paths[dataset.name] = path
        plan = self._plan(workflow, completed, report, journal=journal)
        steps = list(plan.steps)
        cursor = 0
        while cursor < len(steps):
            if control is not None:
                control.check()
            step = steps[cursor]
            if self.fault_injector is not None and step.abstract_name:
                self.fault_injector.on_operator_start(step.abstract_name)
            if self.health_checks:
                self.cloud.cluster.run_health_checks()
            if journal is not None:
                journal.append(
                    STEP_STARTED, index=cursor,
                    abstract=step.abstract_name, operator=step.operator.name,
                    engine="move" if step.is_move else (step.engine or ""),
                    simStart=self.cloud.clock.now)
            try:
                self._enforce_with_resilience(step, report, payload_paths,
                                              workflow.name, control=control)
            except EngineError as exc:
                if journal is not None:
                    journal.append(
                        STEP_FINISHED, index=cursor, success=False,
                        abstract=step.abstract_name,
                        operator=step.operator.name,
                        engine="move" if step.is_move else (step.engine or ""),
                        error=str(exc))
                report.failures.append(f"{step.operator.name}@{step.engine}: {exc}")
                if report.replans >= self.max_replans:
                    raise ExecutionFailed(
                        f"workflow {workflow.name!r} failed after "
                        f"{report.replans} replans"
                    ) from exc
                report.replans += 1
                _REPLANS.inc(run_id=run_id)
                _LOG.warning("replanning", workflow=workflow.name,
                             strategy=self.strategy, replan=report.replans,
                             failed_step=step.operator.name,
                             engine=step.engine)
                if self.strategy == TRIVIAL_REPLAN:
                    completed.clear()
                if journal is not None:
                    journal.append(REPLAN, reason="failure",
                                   replan=report.replans,
                                   failedStep=step.operator.name,
                                   engine=step.engine or "")
                plan = self._plan(workflow, completed, report, journal=journal)
                steps = list(plan.steps)
                cursor = 0
                continue
            for out in step.outputs:
                done = Dataset(out.name, out.metadata.copy(), materialized=True)
                completed[out.name] = done
                if out.store == "HDFS" and getattr(self.cloud, "hdfs", None):
                    self.cloud.hdfs.put(
                        f"/intermediates/{workflow.name}/{out.name}",
                        out.size, overwrite=True)
            if journal is not None:
                execution = report.executions[-1] if report.executions else None
                journal.append(
                    STEP_FINISHED, index=cursor, success=True,
                    abstract=step.abstract_name, operator=step.operator.name,
                    engine="move" if step.is_move else (step.engine or ""),
                    simSeconds=execution.sim_seconds if execution else 0.0,
                    attempt=execution.attempt if execution else 1,
                    outputs=[dataset_payload(completed[out.name])
                             for out in step.outputs])
            if cache is not None:
                cache.store(step)
            cursor += 1
            if (self.drift is not None and cursor < len(steps)
                    and self.drift.take_replan_hint()
                    and report.replans < self.max_replans):
                # a drift alarm asked for fresh plans: the remaining steps
                # were costed by a model we now know to be wrong
                report.replans += 1
                _REPLANS.inc(run_id=run_id)
                _LOG.info("drift_replan", workflow=workflow.name,
                          completed_steps=cursor)
                if journal is not None:
                    journal.append(REPLAN, reason="drift",
                                   replan=report.replans,
                                   completedSteps=cursor)
                plan = self._plan(workflow, completed, report, journal=journal)
                steps = list(plan.steps)
                cursor = 0
        report.succeeded = True
        report.sim_time = self.cloud.clock.now - sim_start
        return report

    # -- internals -----------------------------------------------------------
    def _plan(
        self,
        workflow: AbstractWorkflow,
        completed: dict[str, Dataset],
        report: ExecutionReport,
        journal: RunJournal | None = None,
    ) -> MaterializedPlan:
        available = self.cloud.available_engines()
        open_set: set[str] = set()
        if self.resilience is not None:
            open_set = self.resilience.open_engines(self.cloud.clock.now)
            available = available - open_set
        wall_start = time.perf_counter()
        try:
            plan = self.planner.plan(
                workflow,
                available_engines=available | {"move"},
                materialized_results=dict(completed),
            )
        except PlanningError as exc:
            if not open_set:
                raise ExecutionFailed(str(exc)) from exc
            # Routing around every open breaker left no feasible plan; force
            # the sick engines into half-open probes and plan over them.
            try:
                plan = self.planner.plan(
                    workflow,
                    available_engines=self.cloud.available_engines() | {"move"},
                    materialized_results=dict(completed),
                )
            except PlanningError as exc2:
                raise ExecutionFailed(str(exc2)) from exc2
            self.resilience.on_breaker_override(self.cloud.clock.now, open_set)
        report.planning_seconds.append(time.perf_counter() - wall_start)
        report.plans.append(plan)
        if getattr(self.planner, "last_plan_cached", False):
            report.cached_plans += 1
        if journal is not None:
            from repro.core.plancache import workflow_digest

            library = getattr(self.planner, "library", None)
            plan_cache = getattr(self.planner, "plan_cache", None)
            journal.append(PLAN_CHOSEN, **plan_payload(
                plan,
                digest=workflow_digest(workflow),
                library_epoch=getattr(library, "epoch", None),
                model_epoch=getattr(plan_cache, "model_epoch", None),
                planning_seconds=report.planning_seconds[-1],
                cached=bool(getattr(self.planner, "last_plan_cached", False)),
            ))
        prov = getattr(self.planner, "last_provenance", None)
        if self.planner.record_provenance and prov is not None:
            report.provenances.append(prov)
            run_id = report.run_id or current_run_id() or ""
            slot = self.explains.setdefault(run_id, [])
            slot.append(prov)
            while len(self.explains) > self.max_explains:
                self.explains.popitem(last=False)
        return plan

    def explain_report(self, run_id: str | None = None) -> dict | None:
        """The explain report of one run (newest when ``run_id`` is None).

        Serializes every planning pass of the run via
        :meth:`~repro.core.provenance.PlanProvenance.explain`, annotated
        with the ledger's current model-error statistics.  Returns None
        when the run is unknown or provenance recording was off.
        """
        if run_id is None:
            if not self.explains:
                return None
            run_id = next(reversed(self.explains))
        provenances = self.explains.get(run_id)
        if not provenances:
            return None
        ledger = self.ledger if self.ledger.enabled else None
        return {
            "run_id": run_id,
            "plans": [p.explain(ledger=ledger) for p in provenances],
        }

    def _enforce_with_resilience(
        self,
        step: PlanStep,
        report: ExecutionReport,
        payload_paths: dict[str, str],
        workflow_name: str,
        control: RunControl | None = None,
    ) -> None:
        """Enforce one step, absorbing transient faults with retries.

        Transient failures (:class:`TransientEngineError`, including step
        timeouts) are retried in place up to the retry policy's budget, with
        exponential backoff charged to the simulated clock.  Every failure
        feeds the engine's circuit breaker; permanent errors — and transient
        ones once retries are exhausted or the breaker opens — propagate to
        the replanning loop in :meth:`execute`.  ``control`` is checked
        before every attempt, so cancellation and deadlines cut retry loops
        short instead of waiting out the backoff budget.
        """
        if not self.tracer.enabled:
            self._run_step_resilient(step, report, payload_paths,
                                     workflow_name, None, control)
            return
        with self.tracer.span(
            f"step:{step.operator.name}", category="executor",
            operator=step.operator.name,
            engine="move" if step.is_move else (step.engine or ""),
            abstract=step.abstract_name or "",
            inputs=[d.name for d in step.inputs],
            outputs=[d.name for d in step.outputs],
        ) as span:
            self._run_step_resilient(step, report, payload_paths,
                                     workflow_name, span, control)

    def _run_step_resilient(
        self, step, report, payload_paths, workflow_name, span, control=None
    ) -> None:
        resilience = self.resilience
        if resilience is None or step.is_move:
            self._enforce_step(step, report, payload_paths, workflow_name)
            if span is not None and report.executions:
                span.set_attribute(
                    "sim_seconds", report.executions[-1].sim_seconds)
            return
        engine_name = step.engine or ""
        policy = resilience.retry_policy
        attempt = 0
        while True:
            attempt += 1
            if control is not None:
                # cancellation / deadline preempts further (re)tries
                control.check()
            if not resilience.allow(engine_name, self.cloud.clock.now):
                if span is not None:
                    span.add_event("breaker_open", engine=engine_name)
                raise EngineUnavailableError(
                    f"circuit breaker open for engine {engine_name!r}"
                )
            try:
                self._enforce_step(step, report, payload_paths, workflow_name,
                                   attempt=attempt)
            except TransientEngineError as exc:
                now = self.cloud.clock.now
                resilience.on_failure(engine_name, now, exc)
                if attempt >= policy.max_attempts:
                    raise
                if not resilience.allow(engine_name, now):
                    if span is not None:
                        span.add_event("breaker_open", engine=engine_name)
                    raise
                backoff = policy.backoff_seconds(
                    attempt, salt=f"{step.operator.name}@{engine_name}")
                self.cloud.clock.advance(backoff)
                resilience.on_retry(engine_name, self.cloud.clock.now,
                                    attempt, backoff)
                report.retries += 1
                if span is not None:
                    span.add_event("retry", engine=engine_name,
                                   attempt=attempt, backoff_seconds=backoff,
                                   error=str(exc))
            except EngineError as exc:
                resilience.on_failure(engine_name, self.cloud.clock.now, exc)
                raise
            else:
                resilience.on_success(engine_name, self.cloud.clock.now)
                if span is not None:
                    span.set_attribute("attempts", attempt)
                    if report.executions:
                        span.set_attribute(
                            "sim_seconds", report.executions[-1].sim_seconds)
                return

    def _enforce_step(
        self,
        step: PlanStep,
        report: ExecutionReport,
        payload_paths: dict[str, str] | None = None,
        workflow_name: str = "",
        attempt: int = 1,
    ) -> None:
        payload_paths = payload_paths if payload_paths is not None else {}
        started = self.cloud.clock.now
        if step.is_move:
            src = step.inputs[0].store
            dst = step.outputs[0].store
            seconds = self.cloud.move(step.inputs[0].size, src, dst)
            report.executions.append(
                StepExecution(step, "move", seconds, started, success=True)
            )
            _STEPS.inc(engine="move", status="ok",
                       run_id=current_run_id() or "")
            _STEP_SECONDS.observe(seconds, engine="move")
            if self.ledger.enabled:
                self.ledger.record_step(
                    run_id=report.run_id or current_run_id() or "",
                    workflow=workflow_name,
                    step=step.operator.name,
                    operator="move",
                    engine="move",
                    predicted=step.predicted,
                    actual={"execTime": seconds},
                    at=started,
                    index=len(report.executions) - 1,
                    attempt=attempt,
                )
            return
        engine = self.cloud.engines.get(step.engine or "")
        if engine is None:
            raise EngineUnavailableError(f"engine {step.engine!r} is not deployed")
        workload = workload_from_inputs(step.operator, step.inputs)
        if step.resources:
            resources = Resources(
                cores=int(step.resources.get("cores", 4)),
                memory_gb=float(step.resources.get("memory_gb", 8.0)),
            )
        else:
            resources = resources_for(step.operator, self.cloud)
        outcome = (
            self.fault_injector.transient_outcome(engine.name)
            if self.fault_injector is not None else TransientOutcome()
        )
        estimate = self._safe_estimate(engine, step, workload, resources)
        if outcome.fails:
            # A transient crash partway through: the work done before the
            # failure was detected is real and stays on the simulated clock.
            partial = (estimate or 0.0) * outcome.work_fraction * outcome.slowdown
            self._fail_step(step, report, engine.name, workload, resources,
                            partial, started, attempt,
                            f"transient fault on {engine.name} after "
                            f"{outcome.work_fraction:.0%} of the work")
            raise TransientEngineError(
                f"transient fault on engine {engine.name} while running "
                f"{step.operator.name}"
            )
        deadline = (
            self.resilience.timeout_for(estimate)
            if self.resilience is not None else None
        )
        projected = (estimate or 0.0) * outcome.slowdown
        if deadline is not None and estimate is not None and projected > deadline:
            # A straggler: we wait until the deadline, then kill the attempt.
            self._fail_step(step, report, engine.name, workload, resources,
                            deadline, started, attempt,
                            f"step exceeded its {deadline:.1f}s deadline "
                            f"(projected {projected:.1f}s)")
            raise StepTimeoutError(
                f"{step.operator.name} on {engine.name} exceeded its "
                f"{deadline:.1f}s deadline"
            )
        impl, impl_input = self._data_plane_inputs(step, payload_paths)
        try:
            result = engine.execute(
                step.operator.algorithm,
                workload,
                resources=resources,
                operator_name=step.operator.name,
                impl=impl,
                impl_input=impl_input,
            )
        except EngineError as exc:
            # Noticing a failed submission costs a health-probe round-trip.
            detect = self.failure_detection_seconds
            self.cloud.clock.advance(detect)
            report.executions.append(
                StepExecution(step, engine.name, detect, started, success=False,
                              error=str(exc), attempt=attempt,
                              cores=resources.cores)
            )
            _STEPS.inc(engine=engine.name, status="failed",
                       run_id=current_run_id() or "")
            _STEP_SECONDS.observe(detect, engine=engine.name)
            raise
        sim_seconds = result.record.exec_time * outcome.slowdown
        if outcome.slowdown > 1.0:
            # the straggler's extra time is charged by the enforcer
            self.cloud.clock.advance(
                result.record.exec_time * (outcome.slowdown - 1.0))
        if result.output is not None and getattr(self.cloud, "hdfs", None):
            for out in step.outputs:
                path = f"/artifacts/{workflow_name}/{out.name}"
                self.cloud.hdfs.put(path, out.size, payload=result.output,
                                    overwrite=True)
                payload_paths[out.name] = path
        report.executions.append(
            StepExecution(step, engine.name, sim_seconds, started,
                          success=True, attempt=attempt, cores=resources.cores)
        )
        _STEPS.inc(engine=engine.name, status="ok",
                   run_id=current_run_id() or "")
        _STEP_SECONDS.observe(sim_seconds, engine=engine.name)
        if self.ledger.enabled:
            self.ledger.record_step(
                run_id=report.run_id or current_run_id() or "",
                workflow=workflow_name,
                step=step.operator.name,
                operator=step.operator.algorithm,
                engine=engine.name,
                predicted=step.predicted,
                actual={
                    "execTime": sim_seconds,
                    "cost": monetary_cost(resources, sim_seconds),
                },
                at=started,
                index=len(report.executions) - 1,
                attempt=attempt,
            )

    def _safe_estimate(self, engine, step, workload, resources) -> float | None:
        """Noise-free runtime estimate, or None when the profile can't say."""
        try:
            return engine.true_seconds(step.operator.algorithm, workload,
                                       resources)
        except (EngineError, KeyError):
            return None

    def _fail_step(
        self, step, report, engine_name, workload, resources,
        sim_seconds, started, attempt, error,
    ) -> None:
        """Charge a failed attempt to the clock and both record stores."""
        if sim_seconds > 0:
            self.cloud.clock.advance(sim_seconds)
        self.cloud.collector.record(MetricRecord(
            operator=step.operator.name,
            algorithm=step.operator.algorithm,
            engine=engine_name,
            exec_time=sim_seconds,
            started_at=started,
            success=False,
            error=error,
            input_size=workload.size_gb * 1e9,
            input_count=workload.count,
            cores=resources.cores,
            memory_gb=resources.memory_gb,
            params=dict(workload.params),
        ))
        report.executions.append(
            StepExecution(step, engine_name, sim_seconds, started,
                          success=False, error=error, attempt=attempt,
                          cores=resources.cores)
        )
        _STEPS.inc(engine=engine_name, status="failed",
                   run_id=current_run_id() or "")
        _STEP_SECONDS.observe(sim_seconds, engine=engine_name)

    def _data_plane_inputs(self, step: PlanStep, payload_paths: dict[str, str]):
        """Resolve the real input artifacts for an operator's ``impl``.

        Returns ``(impl, payload)`` — the single payload when the operator
        has one input, a list when it has several — or ``(None, None)`` when
        the operator has no implementation or some input has no artifact.
        """
        impl = getattr(step.operator, "impl", None)
        hdfs = getattr(self.cloud, "hdfs", None)
        if impl is None or hdfs is None:
            return None, None
        payloads = []
        for dataset in step.inputs:
            path = payload_paths.get(dataset.name) or hdfs_path(dataset.path)
            if path is None or not hdfs.exists(path):
                return None, None
            payload = hdfs.get(path)
            if payload is None:
                return None, None
            payloads.append(payload)
        if not payloads:
            return None, None
        return impl, payloads[0] if len(payloads) == 1 else payloads
