"""Cross-execution reuse of materialized intermediate results.

Within one execution, IReS already reuses intermediates when replanning
around failures ("our system does not discard results of tasks that have
been successfully executed", §2.3).  This module generalizes the idea across
executions: a :class:`ResultCache` remembers which (operator, inputs)
combinations already produced materialized outputs, so re-running the same —
or an overlapping — workflow skips the completed prefix, exactly like the
replanning path does.

Soundness: a cache key binds the *materialized operator* (implementation +
engine), its parameters, and the identity of every input dataset (name,
format signature, size and cardinality).  Any change to inputs or operator
choice misses the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import Dataset
from repro.core.workflow import PlanStep


def step_key(step: PlanStep) -> tuple:
    """Hashable identity of a step's computation (implementation + inputs)."""
    params = tuple(sorted(
        (k, v) for k, v in step.operator.metadata.to_properties().items()
        if k.startswith("Execution.Param")
    ))
    inputs = tuple(sorted(
        (d.name, d.signature(), float(d.size), float(d.count))
        for d in step.inputs
    ))
    return (step.abstract_name, step.operator.name, params, inputs)


@dataclass
class ResultCache:
    """Maps computation keys to their materialized output descriptors."""

    _entries: dict[tuple, list[Dataset]] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def lookup(self, step: PlanStep) -> list[Dataset] | None:
        """The cached outputs of a step's computation, or None."""
        outputs = self._entries.get(step_key(step))
        if outputs is None:
            self.misses += 1
            return None
        self.hits += 1
        return [Dataset(d.name, d.metadata.copy(), materialized=True)
                for d in outputs]

    def store(self, step: PlanStep) -> None:
        """Remember a successfully executed step's outputs."""
        if step.is_move:
            return  # moves are cheap and placement-dependent; don't cache
        self._entries[step_key(step)] = [
            Dataset(d.name, d.metadata.copy(), materialized=True)
            for d in step.outputs
        ]

    def seed_completed(self, steps: list[PlanStep]) -> dict[str, Dataset]:
        """Walk a plan's prefix, collecting every output the cache can supply.

        A step is reusable when all its non-source inputs were themselves
        supplied by the cache in this walk — i.e. the reusable region is a
        closed prefix of the dataflow, mirroring how replanning reuses only
        fully materialized intermediates.
        """
        completed: dict[str, Dataset] = {}
        produced_names = {out.name for s in steps for out in s.outputs}
        for step in steps:
            if step.is_move:
                continue
            dependent = [d for d in step.inputs if d.name in produced_names]
            if any(d.name not in completed for d in dependent):
                continue
            outputs = self.lookup(step)
            if outputs is None:
                continue
            for out in outputs:
                completed[out.name] = out
        return completed

    def invalidate(self) -> None:
        """Drop every cached result (e.g. after an input dataset changed)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)