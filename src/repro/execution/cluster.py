"""Cluster-wide event loop packing steps from many in-flight workflows.

Production meta-schedulers do not run each DAG against the cluster alone:
steps from every admitted workflow compete for the same containers.
:class:`ClusterScheduler` is that shared loop — K materialized plans are
in flight at once, one :class:`~repro.engines.containers.ContainerScheduler`
accounts for the *shared* (non-cloned) cluster, and at each event the
ready steps of *all* runs are dequeued under a pluggable policy:

``fifo``
    strict admission order — steps of earlier runs first (the naive
    baseline the bench compares against).
``fair``
    per-run deficit fair-share — the run that has consumed the fewest
    core·seconds goes first, so small workflows are not starved behind
    large ones.
``dagps``
    DAGPS-style priorities from remaining critical-path work
    (arXiv:1604.07371): across runs, the DAG with the *least*
    unscheduled work (core·seconds) goes first — near-done and small
    DAGs drain instead of idling at 95% behind wide ones; within a
    run, the step heading the *longest* remaining subgraph goes first
    ("do the hard stuff first"), keeping each DAG's troublesome pole
    moving.

Per run, the loop reuses the existing fault machinery via
:class:`~repro.execution.parallel.StepResolver`: transient faults and
engine outages become :class:`StepFailure` cascading to downstream
consumers, detected stragglers are speculatively re-executed on a backup
engine.  A step whose container request can never fit the cluster — even
empty — fails the same way instead of aborting the run; only a plan with
*no* placeable compute step raises
:class:`~repro.execution.parallel.SchedulingError`.

The loop is cooperative and thread-safe: any thread whose run is still
in flight may drive events (the service's workers all block in
:meth:`execute`), with one driver at a time advancing the shared virtual
clock.  Per-run spans and resilience events are recorded under the run's
id at finalization, so traces attribute correctly even though steps of
many runs interleave on one timeline.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.runtime_check import make_lock
from repro.core.workflow import MaterializedPlan, PlanStep
from repro.engines.cluster import Cluster
from repro.engines.containers import Container, ContainerRequest, ContainerScheduler
from repro.engines.errors import InsufficientResourcesError
from repro.engines.monitoring import resilience_event
from repro.engines.registry import MultiEngineCloud
from repro.execution.parallel import (
    ParallelReport,
    ScheduledStep,
    SchedulingError,
    SpeculationRecord,
    StepFailure,
    StepResolver,
)
from repro.obs.context import bind_run_id
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import NULL_TRACER, Tracer

_LOG = get_logger("cluster")
_RUNS_ADMITTED = REGISTRY.counter(
    "ires_cluster_runs_total",
    "Runs admitted to the shared cluster loop by policy and outcome",
    labels=("policy", "status"),
)
_STEPS_PLACED = REGISTRY.counter(
    "ires_cluster_steps_placed_total",
    "Steps granted containers on the shared cluster",
    labels=("policy",),
)
_INFLIGHT = REGISTRY.gauge(
    "ires_cluster_runs_inflight",
    "Runs currently admitted and not yet finalized",
)
_SLOWDOWN = REGISTRY.histogram(
    "ires_cluster_run_response_seconds",
    "Per-run response times (admission to completion) on the shared cluster",
)

#: valid policy names, in documentation order
POLICIES = ("fifo", "fair", "dagps")


def _policy_key(policy: str):
    """The sort key ``(run, plan_index, step) -> tuple`` for a policy.

    Every key ends with ``(run.seq, index)`` so candidate order is total
    and deterministic: ties — equal deficits, equal critical-path
    fractions — fall back to admission order, never dict/hash order.
    """
    if policy == "fifo":
        return lambda run, idx, step: (run.seq, idx)
    if policy == "fair":
        return lambda run, idx, step: (run.consumed_core_seconds, run.seq, idx)
    if policy == "dagps":
        # least unscheduled work across runs, longest remaining
        # (troublesome) subgraph within a run
        return lambda run, idx, step: (
            run.remaining_work, -run.crit[id(step)], run.seq, idx)
    raise ValueError(f"unknown cluster policy {policy!r}; pick one of {POLICIES}")


@dataclass
class ClusterRun:
    """One admitted plan's state inside the shared loop."""

    plan: MaterializedPlan
    seq: int
    run_id: str | None = None
    tenant: str = "default"
    arrival: float = 0.0  # virtual time of admission
    durations: dict[int, float] = field(default_factory=dict)
    failures: dict[int, StepFailure] = field(default_factory=dict)
    speculations: list[tuple[SpeculationRecord, PlanStep]] = field(default_factory=list)
    deps: dict[int, set[int]] = field(default_factory=dict)
    requests: dict[int, ContainerRequest | None] = field(default_factory=dict)
    crit: dict[int, float] = field(default_factory=dict)  # remaining critical path
    total_crit: float = 0.0
    #: core·seconds of container-backed steps not yet placed
    remaining_work: float = 0.0
    index: dict[int, int] = field(default_factory=dict)  # id(step) -> plan position
    pending: list[PlanStep] = field(default_factory=list)
    done: set[int] = field(default_factory=set)
    running: int = 0
    scheduled: dict[int, ScheduledStep] = field(default_factory=dict)  # absolute times
    consumed_core_seconds: float = 0.0
    finished_at: float | None = None
    report: ParallelReport | None = None

    @property
    def steps_total(self) -> int:
        """Number of steps in the admitted plan."""
        return len(self.plan.steps)

    @property
    def complete(self) -> bool:
        """Whether every step either finished or failed."""
        return not self.pending and self.running == 0


class ClusterScheduler:
    """Shared event loop interleaving steps of K in-flight plans.

    One instance owns the placement state of a cluster; by default the
    cloud's *live* cluster, so concurrent runs genuinely contend (pass
    ``cluster=`` a clone for isolated what-if simulation —
    :class:`~repro.execution.parallel.ParallelSimulator` does exactly
    that).  Admission (:meth:`submit`) and event-driving
    (:meth:`execute`, :meth:`run_until_idle`) may happen from any
    thread; a single condition variable guards all mutable state and
    elects one driving thread at a time.
    """

    def __init__(self, cloud: MultiEngineCloud, policy: str = "fifo", *,
                 cluster: Cluster | None = None, seed: int = 0,
                 speculation: bool = True, straggler_threshold: float = 2.0,
                 fault_injector=None, tracer: Tracer | None = None) -> None:
        self.cloud = cloud
        self.policy = policy
        self._key = _policy_key(policy)
        self.seed = seed
        self.speculation = speculation
        self.straggler_threshold = straggler_threshold
        self.fault_injector = fault_injector
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.scheduler = ContainerScheduler(
            cluster if cluster is not None else cloud.cluster)
        #: virtual-time origin: snapshots/spans report cloud-clock timestamps
        self._clock_base = cloud.clock.now
        self._cond = threading.Condition(make_lock("cluster"))
        self._now = 0.0  # guarded-by: _cond
        self._seq = 0  # guarded-by: _cond
        self._runs: dict[int, ClusterRun] = {}  # guarded-by: _cond
        # (finish, run.seq, step_index, run, step, grants) — heapq orders
        # equal finish times by admission then plan position, so releases
        # and successor admissions are stable across runs and seeds
        self._events: list[
            tuple[float, int, int, ClusterRun, PlanStep, list[Container]]
        ] = []  # guarded-by: _cond
        self._driving = False  # guarded-by: _cond
        self._admitted = 0  # guarded-by: _cond
        self._completed = 0  # guarded-by: _cond
        self._steps_placed = 0  # guarded-by: _cond
        self._peak_running = 0  # guarded-by: _cond
        self._peak_cores = 0  # guarded-by: _cond

    # -- admission --------------------------------------------------------------
    def submit(self, plan: MaterializedPlan, *, run_id: str | None = None,
               seed: int | None = None, tenant: str = "default") -> ClusterRun:
        """Admit a materialized plan to the shared loop.

        Pre-resolves every step's duration/failure with a per-run RNG
        (``seed`` defaults to the loop seed plus the admission sequence,
        so repeated submissions differ the way repeated real runs do),
        cascades failures downstream, and marks steps whose container
        request could never fit the *empty* cluster as failed.  Raises
        :class:`SchedulingError` only when that leaves no placeable
        compute step at all.
        """
        with self._cond:
            run = self._prepare_locked(plan, run_id=run_id, seed=seed,
                                       tenant=tenant)
            self._runs[id(run)] = run
            self._admitted += 1
            _RUNS_ADMITTED.inc(policy=self.policy, status="admitted")
            _INFLIGHT.set(len(self._runs))
            if run.complete:  # every step failed before placement
                self._finalize_locked(run)
            self._cond.notify_all()
        _LOG.info("cluster_admit", policy=self.policy, run_id=run.run_id,
                  workflow=plan.workflow.name, seq=run.seq,
                  steps=run.steps_total, failures=len(run.failures))
        return run

    def execute(self, plan: MaterializedPlan, *, run_id: str | None = None,
                seed: int | None = None, tenant: str = "default") -> ParallelReport:
        """Admit the plan, help drive the loop until it completes."""
        run = self.submit(plan, run_id=run_id, seed=seed, tenant=tenant)
        self._drive(lambda: run.report is not None)
        assert run.report is not None
        return run.report

    def run_until_idle(self) -> None:
        """Drive events until no admitted run remains in flight."""
        self._drive(lambda: not self._runs)

    # -- event driving ----------------------------------------------------------
    def _drive(self, finished) -> None:
        """Advance events until ``finished()`` (called under the lock) holds.

        Cooperative: whichever waiting thread wins the driver role
        advances exactly one event, then yields, so no thread is stuck
        driving other runs' tails after its own completed.
        """
        with self._cond:
            while not finished():
                if self._driving:
                    self._cond.wait(timeout=0.1)
                    continue
                self._driving = True
                try:
                    self._advance_locked()
                finally:
                    self._driving = False
                self._cond.notify_all()

    def _advance_locked(self) -> None:
        """Dispatch what fits, then consume the next finish event."""
        self._dispatch_locked()
        if self._events:
            finish, _seq, _idx, run, step, grants = heapq.heappop(self._events)
            self._now = max(self._now, finish)
            self.scheduler.release_all_of(grants)
            run.done.add(id(step))
            run.running -= 1
            if run.complete:
                self._finalize_locked(run)
            return
        # no event in flight: any still-pending step is stuck (its request
        # exceeds capacity freed by completed runs, or a dependency failed
        # in a way the cascade already recorded).  Fail it; never abort
        # the loop — other runs continue.
        for run in list(self._runs.values()):
            for step in list(run.pending):
                run.failures[id(step)] = StepFailure(
                    step,
                    f"{step.operator.name}: unschedulable — "
                    f"{self._describe_request(run, step)} cannot be granted",
                )
                run.pending.remove(step)
            if run.complete:
                self._finalize_locked(run)

    def _dispatch_locked(self) -> None:
        """Place every ready step the cluster can hold, policy order.

        Backfilling: a candidate whose containers do not fit right now is
        skipped, not blocking — smaller steps behind it may still start.
        (Steps only *complete* at heap pops, so one pass over the ready
        set is exhaustive: placements never unlock new candidates.)
        """
        candidates: list[tuple[tuple, ClusterRun, PlanStep]] = []
        for run in self._runs.values():
            for step in run.pending:
                if run.deps[id(step)] - run.done:
                    continue  # inputs not ready yet
                idx = run.index[id(step)]
                candidates.append((self._key(run, idx, step), run, step))
        candidates.sort(key=lambda c: c[0])
        placed = False
        for _key, run, step in candidates:
            request = run.requests[id(step)]
            grants: list[Container] = []
            if request is not None:
                try:
                    grants = self.scheduler.allocate(request)
                except InsufficientResourcesError:
                    continue  # backfill: try the next candidate
            duration = run.durations[id(step)]
            finish = self._now + duration
            run.pending.remove(step)
            run.running += 1
            run.scheduled[id(step)] = ScheduledStep(step, self._now, finish)
            if request is not None:
                work = duration * request.cores * request.instances
                run.consumed_core_seconds += work
                run.remaining_work = max(run.remaining_work - work, 0.0)
            heapq.heappush(
                self._events,
                (finish, run.seq, run.index[id(step)], run, step, grants))
            self._steps_placed += 1
            _STEPS_PLACED.inc(policy=self.policy)
            placed = True
        if placed:
            self._peak_running = max(self._peak_running, len(self._events))
            used = sum(n.cores_used
                       for n in self.scheduler.cluster.nodes.values())
            self._peak_cores = max(self._peak_cores, used)

    # -- admission internals ----------------------------------------------------
    def _prepare_locked(self, plan: MaterializedPlan, *, run_id: str | None,
                        seed: int | None, tenant: str) -> ClusterRun:
        run = ClusterRun(plan=plan, seq=self._seq, run_id=run_id,
                         tenant=tenant, arrival=self._now)
        self._seq += 1
        rng = np.random.default_rng(self.seed + run.seq if seed is None else seed)
        resolver = StepResolver(
            self.cloud, rng, fault_injector=self.fault_injector,
            speculation=self.speculation,
            straggler_threshold=self.straggler_threshold)
        steps = list(plan.steps)
        run.index = {id(s): i for i, s in enumerate(steps)}
        for step in steps:
            seconds, failure, spec = resolver.resolve(step)
            if failure is not None:
                run.failures[id(step)] = failure
                continue
            run.durations[id(step)] = float(seconds or 0.0)
            if spec is not None:
                run.speculations.append((spec, step))

        # dependencies by dataset-object identity (the planner shares them)
        producer_of: dict[int, PlanStep] = {}
        for step in steps:
            for out in step.outputs:
                producer_of[id(out)] = step
        run.deps = {
            id(s): {id(producer_of[id(d)])
                    for d in s.inputs if id(d) in producer_of}
            for s in steps
        }

        # a request no empty cluster could grant is a fault, not an abort
        run.requests = {
            id(s): resolver.request(s)
            for s in steps if id(s) not in run.failures
        }
        placeable = infeasible = 0
        for step in steps:
            if id(step) in run.failures:
                continue
            request = run.requests[id(step)]
            if request is None:
                continue  # moves need no containers
            if self._fits_empty(request):
                placeable += 1
            else:
                infeasible += 1
                run.failures[id(step)] = StepFailure(
                    step,
                    f"{step.operator.name} needs {request} "
                    "which exceeds the (empty) cluster")
        if infeasible and not placeable:
            raise SchedulingError(
                f"no step of plan {plan.workflow.name!r} fits the cluster "
                f"({infeasible} oversized requests)")

        # cascade failures to every (transitive) downstream consumer
        changed = True
        while changed:
            changed = False
            for step in steps:
                if id(step) in run.failures:
                    continue
                upstream = next(
                    (f for f in run.deps[id(step)] if f in run.failures), None)
                if upstream is not None:
                    run.failures[id(step)] = StepFailure(
                        step,
                        f"upstream failure: "
                        f"{run.failures[upstream].step.operator.name}",
                        cascaded=True)
                    changed = True

        run.pending = [s for s in steps if id(s) not in run.failures]
        run.crit, run.total_crit = self._critical_path(
            steps, run.deps, run.durations, run.failures)
        run.remaining_work = sum(
            run.durations[id(s)] * req.cores * req.instances
            for s in run.pending
            if (req := run.requests.get(id(s))) is not None)
        return run

    def _fits_empty(self, request: ContainerRequest) -> bool:
        """Whether an *empty* healthy cluster could grant the request."""
        free = [(n.cores, n.memory_gb)
                for n in self.scheduler.cluster.healthy_nodes()]
        free.sort(reverse=True)
        placed = 0
        for cores, memory in free:
            while (placed < request.instances and cores >= request.cores
                   and memory >= request.memory_gb):
                cores -= request.cores
                memory -= request.memory_gb
                placed += 1
        return placed >= request.instances

    @staticmethod
    def _critical_path(steps, deps, durations, failures):
        """Remaining critical-path seconds through each surviving step.

        ``crit[id(step)]`` is the longest duration-weighted path from the
        step (inclusive) to any sink — the DAGPS "troublesomeness" of the
        subgraph hanging off it.  Computed in one reverse pass: plan
        order is topological (producers precede consumers).
        """
        consumers: dict[int, list[int]] = {}
        for step in steps:
            for dep in deps[id(step)]:
                consumers.setdefault(dep, []).append(id(step))
        crit: dict[int, float] = {}
        for step in reversed(steps):
            if id(step) in failures:
                continue
            downstream = max(
                (crit.get(c, 0.0) for c in consumers.get(id(step), [])),
                default=0.0)
            crit[id(step)] = durations.get(id(step), 0.0) + downstream
        total = max(crit.values(), default=0.0)
        return crit, total

    def _describe_request(self, run: ClusterRun, step: PlanStep) -> str:
        request = run.requests.get(id(step))
        return repr(request) if request is not None else "no request"

    # -- finalization -----------------------------------------------------------
    def _finalize_locked(self, run: ClusterRun) -> None:
        """Assemble the run's paper-era report and emit its telemetry."""
        run.finished_at = max(
            (s.finish for s in run.scheduled.values()), default=run.arrival)
        if run.pending or run.running:
            raise RuntimeError("finalizing a run that is still in flight")
        steps = list(run.plan.steps)
        schedule = sorted(
            (ScheduledStep(s.step, s.start - run.arrival,
                           s.finish - run.arrival)
             for s in run.scheduled.values()),
            key=lambda s: (s.start, run.index[id(s.step)]))
        run.report = ParallelReport(
            makespan=run.finished_at - run.arrival,
            serial_time=sum(
                run.durations[id(s)] for s in steps if id(s) in run.scheduled),
            schedule=schedule,
            failures=[run.failures[id(s)] for s in steps
                      if id(s) in run.failures],
            speculations=[spec for spec, step in run.speculations
                          if id(step) in run.scheduled],
        )
        self._runs.pop(id(run), None)
        self._completed += 1
        _RUNS_ADMITTED.inc(
            policy=self.policy,
            status="succeeded" if run.report.succeeded else "failed")
        _INFLIGHT.set(len(self._runs))
        _SLOWDOWN.observe(run.report.makespan)
        self._emit_run_telemetry(run)
        _LOG.info("cluster_run_done", policy=self.policy, run_id=run.run_id,
                  workflow=run.plan.workflow.name, seq=run.seq,
                  makespan=run.report.makespan,
                  failures=len(run.report.failures))

    def _emit_run_telemetry(self, run: ClusterRun) -> None:
        """Record spans and resilience events under the run's identity.

        The finalizing thread may be driving on behalf of *another* run,
        so ambient context would attribute this run's telemetry to the
        wrong run id; re-bind explicitly.  Speculation events are stamped
        at the step's simulated *finish* — when the race between the
        straggler and its backup copy actually resolved — not the run's
        start time.
        """
        def _emit() -> None:
            for spec, step in run.speculations:
                sched = run.scheduled.get(id(step))
                if sched is None:
                    continue
                self.cloud.collector.record(resilience_event(
                    "speculation", spec.engine,
                    self._clock_base + sched.finish,
                    success=spec.won,
                    detail=f"{spec.operator}: backup on {spec.backup_engine} "
                           f"saved {spec.saved_seconds:.1f}s"))
            if not self.tracer.enabled:
                return
            for sched in sorted(run.scheduled.values(), key=lambda s: s.start):
                step = sched.step
                self.tracer.record_span(
                    f"step:{step.operator.name}", "cluster",
                    self._clock_base + sched.start,
                    self._clock_base + sched.finish,
                    attributes={
                        "operator": step.operator.name,
                        "engine": ("move" if step.is_move
                                   else (step.engine or "")),
                        "workflow": run.plan.workflow.name,
                        "policy": self.policy,
                        "runSeq": run.seq,
                    })

        if run.run_id is not None:
            with bind_run_id(run.run_id):
                _emit()
        else:
            _emit()

    # -- introspection ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Queue/placement state for ``GET /cluster`` and ``ires top``."""
        with self._cond:
            runs = []
            for run in self._runs.values():
                runs.append({
                    "runId": run.run_id,
                    "tenant": run.tenant,
                    "workflow": run.plan.workflow.name,
                    "seq": run.seq,
                    "arrival": self._clock_base + run.arrival,
                    "stepsTotal": run.steps_total,
                    "stepsDone": len(run.done),
                    "stepsRunning": run.running,
                    "stepsFailed": len(run.failures),
                    "consumedCoreSeconds": run.consumed_core_seconds,
                })
            placements = []
            for finish, _seq, _idx, run, step, grants in sorted(self._events):
                placements.append({
                    "runId": run.run_id,
                    "runSeq": run.seq,
                    "operator": step.operator.name,
                    "engine": "move" if step.is_move else (step.engine or ""),
                    "finish": self._clock_base + finish,
                    "containers": len(grants),
                    "nodes": sorted({g.node.node_id for g in grants}),
                })
            return {
                "policy": self.policy,
                "virtualNow": self._clock_base + self._now,
                "admitted": self._admitted,
                "completed": self._completed,
                "inFlight": len(self._runs),
                "stepsPlaced": self._steps_placed,
                "peakRunningSteps": self._peak_running,
                "peakCoresUsed": self._peak_cores,
                "utilization": self.scheduler.utilization(),
                "runs": runs,
                "placements": placements,
            }
