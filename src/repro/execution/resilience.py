"""Transient-fault resilience: retries, circuit breakers, timeouts.

Real multi-engine clouds mostly throw *transient* faults — flaky RPCs,
momentary resource pressure, stragglers — that are absorbed with retries
and speculation rather than a full replanning pass (Reshi, DAGPS).  This
module provides the policy objects the executor layer wires in:

- :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter; backoff waits are charged to the *simulated* clock
  (the enforcer sleeps in simulated time, not wall time).
- :class:`CircuitBreaker` — a per-engine closed → open → half-open state
  machine.  Repeated failures open the breaker; the open set is subtracted
  from the available engines during (re)planning so the planner routes
  around sick engines; after ``recovery_timeout`` simulated seconds the
  breaker half-opens and a probe execution decides whether to close it.
- :class:`ResilienceManager` — holds the retry policy and the breaker per
  engine, computes per-step timeouts, counts retries / breaker transitions
  / speculation outcomes, and emits resilience events into the metrics
  collector so the §2.2.1 monitoring plane sees them.
- :class:`RunControl` — per-run cooperative cancellation and wall-clock
  deadline.  The enforcer checks it at every step boundary *and inside the
  retry loop*, so a cancel or an expired deadline interrupts a retry/backoff
  sequence instead of letting it run its full budget; the service layer
  (:mod:`repro.api.service`) drives it from another thread.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

#: breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class RunCancelled(RuntimeError):
    """The run was cancelled (operator action or service shutdown).

    Deliberately *not* an :class:`~repro.engines.errors.EngineError`: the
    replanning loop must not treat a cancellation as a step failure.
    """


class RunDeadlineExceeded(RuntimeError):
    """The run overran its wall-clock deadline."""


class RunControl:
    """Cooperative cancellation + wall-clock deadline for one run.

    Thread-safe: the service layer cancels from the event-loop thread while
    the enforcer runs in a worker thread.  The enforcer calls :meth:`check`
    at step boundaries and before every retry attempt; a set cancel flag
    raises :class:`RunCancelled`, an expired deadline raises
    :class:`RunDeadlineExceeded`.  Both leave the journal in a resumable
    state (the terminal record says why the run stopped).
    """

    def __init__(self, deadline_seconds: float | None = None,
                 clock=time.monotonic) -> None:
        self.deadline_seconds = deadline_seconds
        self._clock = clock
        self.started_at = clock()
        self._cancelled = threading.Event()
        self.cancel_reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; takes effect at the next enforcer check."""
        self.cancel_reason = reason or "cancelled"
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._cancelled.is_set()

    def remaining_seconds(self) -> float | None:
        """Wall-clock seconds left before the deadline (None = unbounded)."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - (self._clock() - self.started_at)

    def check(self) -> None:
        """Raise if the run should stop (cancelled or past its deadline)."""
        if self._cancelled.is_set():
            raise RunCancelled(self.cancel_reason or "run cancelled")
        remaining = self.remaining_seconds()
        if remaining is not None and remaining <= 0:
            raise RunDeadlineExceeded(
                f"run exceeded its {self.deadline_seconds:.1f}s deadline"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    execution plus up to two retries.  ``max_attempts=1`` disables retrying
    (the baseline "replan on first error" behaviour).
    """

    max_attempts: int = 3
    base_backoff: float = 2.0  # simulated seconds before the first retry
    backoff_factor: float = 2.0
    max_backoff: float = 60.0
    jitter: float = 0.25  # +/- fraction of the raw backoff

    def backoff_seconds(self, attempt: int, salt: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered.

        The jitter is a pure function of ``(attempt, salt)`` — typically the
        step/engine pair — so repeated runs charge identical simulated time.
        """
        raw = min(
            self.base_backoff * self.backoff_factor ** max(attempt - 1, 0),
            self.max_backoff,
        )
        if self.jitter <= 0:
            return raw
        digest = zlib.crc32(f"{salt}:{attempt}".encode()) % 10_000
        unit = digest / 10_000.0  # deterministic in [0, 1)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))

    @property
    def retries_enabled(self) -> bool:
        """Whether the policy allows any retry at all."""
        return self.max_attempts > 1


@dataclass
class BreakerTransition:
    """One recorded state change of a circuit breaker."""

    at: float  # simulated time
    engine: str
    from_state: str
    to_state: str
    reason: str


@dataclass
class CircuitBreaker:
    """Per-engine failure isolation: closed → open → half-open → closed.

    Failures are counted *consecutively*; any success resets the count.
    While open, :meth:`allow` refuses executions until ``recovery_timeout``
    simulated seconds have passed, then the breaker half-opens and admits a
    single probe: success closes it, failure re-opens it (and restarts the
    recovery clock).
    """

    engine: str
    failure_threshold: int = 3
    recovery_timeout: float = 120.0  # simulated seconds
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    transitions: list[BreakerTransition] = field(default_factory=list)

    def _transition(self, to_state: str, now: float, reason: str) -> None:
        self.transitions.append(
            BreakerTransition(now, self.engine, self.state, to_state, reason)
        )
        self.state = to_state

    def allow(self, now: float) -> bool:
        """Whether an execution on this engine may proceed at time ``now``."""
        if self.state == OPEN:
            if now - self.opened_at >= self.recovery_timeout:
                self._transition(HALF_OPEN, now, "recovery timeout elapsed")
                return True
            return False
        return True  # closed or half-open (probe)

    def record_success(self, now: float) -> None:
        """A successful execution: close a half-open breaker, reset counts."""
        if self.state == HALF_OPEN:
            self._transition(CLOSED, now, "probe succeeded")
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """A failed execution: count it; open on threshold or failed probe."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self.opened_at = now
            self._transition(OPEN, now, "probe failed")
            return
        if self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
            self.opened_at = now
            self._transition(OPEN, now, f"{self.consecutive_failures} consecutive failures")

    def status(self) -> dict:
        """JSON-able snapshot for the API/CLI."""
        return {
            "engine": self.engine,
            "state": self.state,
            "consecutiveFailures": self.consecutive_failures,
            "openedAt": self.opened_at if self.state != CLOSED else None,
            "transitions": len(self.transitions),
        }


class ResilienceManager:
    """The executor's resilience brain: retry policy + per-engine breakers.

    ``timeout_factor`` (relative to the step's noise-free estimate) and
    ``step_timeout`` (absolute simulated seconds) bound each step's runtime;
    either may be ``None``.  ``collector`` optionally receives one
    :class:`~repro.engines.monitoring.MetricRecord` per resilience event
    (retry, breaker transition, speculation) so the monitoring plane carries
    the full fault story.
    """

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        failure_threshold: int = 3,
        recovery_timeout: float = 120.0,
        step_timeout: float | None = None,
        timeout_factor: float | None = None,
        collector=None,
    ) -> None:
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.step_timeout = step_timeout
        self.timeout_factor = timeout_factor
        self.collector = collector
        self.breakers: dict[str, CircuitBreaker] = {}
        self.retries = 0
        self.breaker_opens = 0
        self.speculations = 0
        self.breaker_overrides = 0

    @classmethod
    def baseline(cls) -> "ResilienceManager":
        """The pre-resilience behaviour: no retries, breakers never open."""
        return cls(
            retry_policy=RetryPolicy(max_attempts=1),
            failure_threshold=10**9,
        )

    # -- breakers ------------------------------------------------------------
    def breaker(self, engine: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one engine."""
        found = self.breakers.get(engine)
        if found is None:
            found = CircuitBreaker(
                engine,
                failure_threshold=self.failure_threshold,
                recovery_timeout=self.recovery_timeout,
            )
            self.breakers[engine] = found
        return found

    def allow(self, engine: str, now: float) -> bool:
        """Whether the engine's breaker admits an execution at ``now``."""
        return self.breaker(engine).allow(now)

    def open_engines(self, now: float) -> set[str]:
        """Engines whose breaker currently refuses executions.

        Calling this can flip an open breaker to half-open once its recovery
        timeout has elapsed — that is how sick engines are rediscovered.
        """
        return {
            name for name, breaker in self.breakers.items()
            if not breaker.allow(now)
        }

    def on_success(self, engine: str, now: float) -> None:
        """Feed a successful execution into the engine's breaker."""
        breaker = self.breaker(engine)
        was_half_open = breaker.state == HALF_OPEN
        breaker.record_success(now)
        if was_half_open:
            self._record_event("breaker_close", engine, now,
                               detail="half-open probe succeeded")

    def on_failure(self, engine: str, now: float, error: Exception | str) -> None:
        """Feed a failed execution into the engine's breaker."""
        breaker = self.breaker(engine)
        before = breaker.state
        breaker.record_failure(now)
        if breaker.state == OPEN and before != OPEN:
            self.breaker_opens += 1
            self._record_event("breaker_open", engine, now,
                               success=False, detail=str(error))

    # -- retries / timeouts -------------------------------------------------
    def on_retry(self, engine: str, now: float, attempt: int, backoff: float) -> None:
        """Count one retry and record it in the monitoring plane."""
        self.retries += 1
        self._record_event(
            "retry", engine, now, success=False,
            detail=f"attempt {attempt} failed; backing off {backoff:.2f}s",
        )

    def on_speculation(self, engine: str, now: float, won: bool, detail: str = "") -> None:
        """Count one speculative re-execution outcome."""
        self.speculations += 1
        self._record_event("speculation", engine, now, success=won, detail=detail)

    def on_breaker_override(self, now: float, engines: set[str]) -> None:
        """Planning had to re-admit open breakers (no alternative engines).

        The affected breakers are forced into half-open so the plan's probe
        executions are admitted; a failed probe re-opens them as usual.
        """
        self.breaker_overrides += 1
        for name in engines:
            breaker = self.breaker(name)
            if breaker.state == OPEN:
                breaker._transition(HALF_OPEN, now, "forced probe (no alternative)")
        self._record_event(
            "breaker_override", ",".join(sorted(engines)), now, success=False,
            detail="no plan without open-breaker engines; forcing probes",
        )

    def timeout_for(self, estimate_seconds: float | None) -> float | None:
        """The deadline for a step given its noise-free runtime estimate."""
        candidates = []
        if self.step_timeout is not None:
            candidates.append(self.step_timeout)
        if (
            self.timeout_factor is not None
            and estimate_seconds is not None
            and estimate_seconds > 0
        ):
            candidates.append(self.timeout_factor * estimate_seconds)
        return min(candidates) if candidates else None

    # -- reporting -----------------------------------------------------------
    def _record_event(self, kind: str, engine: str, now: float,
                      success: bool = True, detail: str = "") -> None:
        if self.collector is None:
            return
        from repro.engines.monitoring import resilience_event

        self.collector.record(
            resilience_event(kind, engine, now, success=success, detail=detail)
        )

    def status(self) -> dict:
        """JSON-able snapshot of the whole resilience layer."""
        return {
            "retryPolicy": {
                "maxAttempts": self.retry_policy.max_attempts,
                "baseBackoff": self.retry_policy.base_backoff,
                "backoffFactor": self.retry_policy.backoff_factor,
                "maxBackoff": self.retry_policy.max_backoff,
                "jitter": self.retry_policy.jitter,
            },
            "failureThreshold": self.failure_threshold,
            "recoveryTimeout": self.recovery_timeout,
            "stepTimeout": self.step_timeout,
            "timeoutFactor": self.timeout_factor,
            "counters": {
                "retries": self.retries,
                "breakerOpens": self.breaker_opens,
                "speculations": self.speculations,
                "breakerOverrides": self.breaker_overrides,
            },
            "breakers": {
                name: breaker.status()
                for name, breaker in sorted(self.breakers.items())
            },
        }

    def reset_breaker(self, engine: str, now: float = 0.0) -> CircuitBreaker:
        """Force one engine's breaker back to closed (operator action)."""
        breaker = self.breaker(engine)
        if breaker.state != CLOSED:
            breaker._transition(CLOSED, now, "operator reset")
        breaker.consecutive_failures = 0
        return breaker
