"""Executor layer: plan enforcement, monitoring, resilience and replanning."""

from repro.execution.cache import ResultCache, step_key
from repro.execution.cluster import POLICIES, ClusterRun, ClusterScheduler
from repro.execution.enforcer import (
    ExecutionReport,
    StepExecution,
    WorkflowExecutor,
    IRES_REPLAN,
    TRIVIAL_REPLAN,
)
from repro.execution.journal import (
    JournalCorruptError,
    JournalError,
    RecoveredRun,
    RunJournal,
    journal_path,
    list_journals,
    read_journal,
    recover,
)
from repro.execution.parallel import (
    ParallelReport,
    ParallelSimulator,
    ScheduledStep,
    SchedulingError,
    SpeculationRecord,
    StepFailure,
    StepResolver,
)
from repro.execution.resilience import (
    CircuitBreaker,
    ResilienceManager,
    RetryPolicy,
    RunCancelled,
    RunControl,
    RunDeadlineExceeded,
)

__all__ = [
    "CircuitBreaker",
    "ClusterRun",
    "ClusterScheduler",
    "POLICIES",
    "ExecutionReport",
    "IRES_REPLAN",
    "JournalCorruptError",
    "JournalError",
    "ParallelReport",
    "ParallelSimulator",
    "RecoveredRun",
    "ResilienceManager",
    "ResultCache",
    "RetryPolicy",
    "RunCancelled",
    "RunControl",
    "RunDeadlineExceeded",
    "RunJournal",
    "journal_path",
    "list_journals",
    "read_journal",
    "recover",
    "step_key",
    "ScheduledStep",
    "SchedulingError",
    "SpeculationRecord",
    "StepExecution",
    "StepFailure",
    "StepResolver",
    "TRIVIAL_REPLAN",
    "WorkflowExecutor",
]
