"""Executor layer: plan enforcement, monitoring and fault-tolerant replanning."""

from repro.execution.cache import ResultCache, step_key
from repro.execution.enforcer import (
    ExecutionReport,
    StepExecution,
    WorkflowExecutor,
    IRES_REPLAN,
    TRIVIAL_REPLAN,
)
from repro.execution.parallel import (
    ParallelReport,
    ParallelSimulator,
    ScheduledStep,
    SchedulingError,
)

__all__ = [
    "ExecutionReport",
    "IRES_REPLAN",
    "ParallelReport",
    "ParallelSimulator",
    "ResultCache",
    "step_key",
    "ScheduledStep",
    "SchedulingError",
    "StepExecution",
    "TRIVIAL_REPLAN",
    "WorkflowExecutor",
]
