"""Executor layer: plan enforcement, monitoring, resilience and replanning."""

from repro.execution.cache import ResultCache, step_key
from repro.execution.enforcer import (
    ExecutionReport,
    StepExecution,
    WorkflowExecutor,
    IRES_REPLAN,
    TRIVIAL_REPLAN,
)
from repro.execution.parallel import (
    ParallelReport,
    ParallelSimulator,
    ScheduledStep,
    SchedulingError,
    SpeculationRecord,
    StepFailure,
)
from repro.execution.resilience import (
    CircuitBreaker,
    ResilienceManager,
    RetryPolicy,
)

__all__ = [
    "CircuitBreaker",
    "ExecutionReport",
    "IRES_REPLAN",
    "ParallelReport",
    "ParallelSimulator",
    "ResilienceManager",
    "ResultCache",
    "RetryPolicy",
    "step_key",
    "ScheduledStep",
    "SchedulingError",
    "SpeculationRecord",
    "StepExecution",
    "StepFailure",
    "TRIVIAL_REPLAN",
    "WorkflowExecutor",
]
