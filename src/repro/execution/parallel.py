"""Discrete-event parallel plan simulation under container constraints.

The serial enforcer charges plan steps to the clock one after another; the
paper's YARN-based executor, however, runs independent DAG branches
concurrently ("run subtasks B and C in parallel").  :class:`ParallelSimulator`
schedules a materialized plan with an event loop: a step starts once the
steps producing its inputs finished *and* the YARN-like scheduler can grant
its containers; the makespan is the resulting parallel completion time.

Used to quantify how much the plan's dataflow parallelism buys on a given
cluster, and how makespan degrades as the cluster shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.estimators import resources_for, workload_from_inputs
from repro.core.workflow import MaterializedPlan, PlanStep
from repro.engines.containers import ContainerRequest, ContainerScheduler
from repro.engines.errors import EngineError, InsufficientResourcesError
from repro.engines.registry import MultiEngineCloud


class SchedulingError(RuntimeError):
    """The plan cannot be scheduled (a step exceeds total cluster capacity)."""


@dataclass
class ScheduledStep:
    """One step's placement in simulated time."""

    step: PlanStep
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Seconds the step occupies in the schedule."""
        return self.finish - self.start


@dataclass
class ParallelReport:
    """Outcome of a parallel simulation."""

    makespan: float
    serial_time: float
    schedule: list[ScheduledStep] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Serial time divided by the parallel makespan."""
        return self.serial_time / self.makespan if self.makespan > 0 else 1.0

    def concurrency_at(self, t: float) -> int:
        """Number of steps running at simulated time ``t``."""
        return sum(1 for s in self.schedule if s.start <= t < s.finish)

    @property
    def max_concurrency(self) -> int:
        """Peak number of concurrently running steps."""
        times = sorted({s.start for s in self.schedule})
        return max((self.concurrency_at(t) for t in times), default=0)


class ParallelSimulator:
    """Event-driven scheduler for one materialized plan."""

    def __init__(self, cloud: MultiEngineCloud, seed: int = 0,
                 charge_clock: bool = True) -> None:
        self.cloud = cloud
        self.seed = seed
        #: advance the cloud's simulated clock by the makespan afterwards
        self.charge_clock = charge_clock

    # -- durations -----------------------------------------------------------
    def _duration(self, step: PlanStep, rng: np.random.Generator) -> float:
        if step.is_move:
            return self.cloud.move_seconds(
                step.inputs[0].size, step.inputs[0].store, step.outputs[0].store)
        engine = self.cloud.engines.get(step.engine or "")
        if engine is None:
            raise SchedulingError(f"engine {step.engine!r} is not deployed")
        workload = workload_from_inputs(step.operator, step.inputs)
        resources = resources_for(step.operator, self.cloud)
        try:
            truth = engine.true_seconds(step.operator.algorithm, workload,
                                        resources)
        except EngineError as exc:
            raise SchedulingError(
                f"step {step.operator.name} is infeasible: {exc}") from exc
        noise = float(np.exp(rng.normal(0.0, engine.noise_sigma)))
        return truth * noise

    def _request(self, step: PlanStep) -> ContainerRequest | None:
        if step.is_move:
            return None
        engine = self.cloud.engines[step.engine]
        return engine.request_for(resources_for(step.operator, self.cloud))

    # -- main loop --------------------------------------------------------------
    def simulate(self, plan: MaterializedPlan) -> ParallelReport:
        """Schedule the plan and return the parallel report."""
        rng = np.random.default_rng(self.seed)
        steps = list(plan.steps)
        durations = {id(s): self._duration(s, rng) for s in steps}
        requests = {id(s): self._request(s) for s in steps}

        # dependencies by dataset-object identity (the planner shares them)
        producer_of: dict[int, PlanStep] = {}
        for step in steps:
            for out in step.outputs:
                producer_of[id(out)] = step
        deps: dict[int, set[int]] = {
            id(s): {
                id(producer_of[id(d)]) for d in s.inputs if id(d) in producer_of
            }
            for s in steps
        }

        scheduler = ContainerScheduler(self.cloud.cluster.clone())
        done: set[int] = set()
        running: list[tuple[float, PlanStep, list]] = []  # (finish, step, grants)
        scheduled: dict[int, ScheduledStep] = {}
        now = 0.0
        remaining = list(steps)

        while remaining or running:
            progressed = True
            while progressed:
                progressed = False
                for step in list(remaining):
                    if deps[id(step)] - done:
                        continue  # inputs not ready yet
                    request = requests[id(step)]
                    grants: list = []
                    if request is not None:
                        try:
                            grants = scheduler.allocate(request)
                        except InsufficientResourcesError:
                            if not running:
                                raise SchedulingError(
                                    f"step {step.operator.name} needs {request} "
                                    "which exceeds the (empty) cluster"
                                ) from None
                            continue  # wait for capacity
                    finish = now + durations[id(step)]
                    running.append((finish, step, grants))
                    scheduled[id(step)] = ScheduledStep(step, now, finish)
                    remaining.remove(step)
                    progressed = True
            if not running:
                if remaining:
                    raise SchedulingError("plan has a dependency the schedule "
                                          "cannot satisfy")
                break
            running.sort(key=lambda item: item[0])
            finish, step, grants = running.pop(0)
            now = finish
            done.add(id(step))
            scheduler.release_all_of(grants)

        makespan = max((s.finish for s in scheduled.values()), default=0.0)
        serial = sum(durations.values())
        if self.charge_clock:
            self.cloud.clock.advance(makespan)
        return ParallelReport(
            makespan=makespan, serial_time=serial,
            schedule=sorted(scheduled.values(), key=lambda s: s.start),
        )
