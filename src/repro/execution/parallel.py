"""Discrete-event parallel plan simulation under container constraints.

The serial enforcer charges plan steps to the clock one after another; the
paper's YARN-based executor, however, runs independent DAG branches
concurrently ("run subtasks B and C in parallel").  :class:`ParallelSimulator`
schedules a materialized plan with an event loop: a step starts once the
steps producing its inputs finished *and* the YARN-like scheduler can grant
its containers; the makespan is the resulting parallel completion time.

The event loop is fault-aware: a step whose engine fails (OOM, killed
service, injected transient fault) no longer aborts the whole simulation —
the failing step and everything downstream of it are surfaced in the
report's ``failures`` while independent branches still complete.  A step
whose container request exceeds what the cluster could ever grant is the
same kind of fault: it (and its downstream) fails, the rest of the plan
runs; :class:`SchedulingError` is raised only when *no* compute step of the
plan can ever be placed.  Detected stragglers (injected slowdowns beyond
``straggler_threshold``) are speculatively re-executed on the best
alternative engine, Hadoop-style: whichever copy finishes first wins, and
the outcome is recorded.

The event loop itself lives in :mod:`repro.execution.cluster` — a
:class:`~repro.execution.cluster.ClusterScheduler` interleaves steps from
many in-flight plans over one shared cluster.  :class:`ParallelSimulator`
is the single-plan view of it: one run, a private cluster clone, the
paper-era report.  :class:`StepResolver` (durations, transient faults,
straggler speculation) is the per-run machinery both share.

Used to quantify how much the plan's dataflow parallelism buys on a given
cluster, and how makespan degrades as the cluster shrinks or faults rise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.estimators import resources_for, workload_from_inputs
from repro.core.workflow import MaterializedPlan, PlanStep
from repro.engines.containers import ContainerRequest
from repro.engines.errors import EngineError
from repro.engines.faults import TransientOutcome
from repro.engines.registry import MultiEngineCloud
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import NULL_TRACER, Tracer

_LOG = get_logger("simulator")
_SIM_STEPS = REGISTRY.counter(
    "ires_simulator_steps_total",
    "Simulated plan steps by engine and outcome",
    labels=("engine", "status"),
)
_SIM_MAKESPAN = REGISTRY.histogram(
    "ires_simulator_makespan_seconds",
    "Parallel makespans of simulated plans",
)


class SchedulingError(RuntimeError):
    """The plan cannot be scheduled (no compute step fits the cluster)."""


@dataclass
class ScheduledStep:
    """One step's placement in simulated time."""

    step: PlanStep
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Seconds the step occupies in the schedule."""
        return self.finish - self.start


@dataclass
class StepFailure:
    """A step the simulation could not run (or skipped due to one that failed)."""

    step: PlanStep
    error: str
    cascaded: bool = False  # True when an upstream producer failed, not this step


@dataclass
class SpeculationRecord:
    """Outcome of one speculative re-execution of a detected straggler."""

    operator: str
    engine: str  # the straggling original placement
    backup_engine: str  # where the speculative copy ran
    original_seconds: float  # how long the straggler would have taken
    effective_seconds: float  # what the step actually took with speculation

    @property
    def won(self) -> bool:
        """Whether the speculative copy beat the straggler."""
        return self.effective_seconds < self.original_seconds

    @property
    def saved_seconds(self) -> float:
        """Simulated time the speculation shaved off the step."""
        return max(self.original_seconds - self.effective_seconds, 0.0)


@dataclass
class ParallelReport:
    """Outcome of a parallel simulation."""

    makespan: float
    serial_time: float
    schedule: list[ScheduledStep] = field(default_factory=list)
    failures: list[StepFailure] = field(default_factory=list)
    speculations: list[SpeculationRecord] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Whether every step of the plan was scheduled and completed."""
        return not self.failures

    @property
    def speedup(self) -> float:
        """Serial time divided by the parallel makespan."""
        return self.serial_time / self.makespan if self.makespan > 0 else 1.0

    def concurrency_at(self, t: float) -> int:
        """Number of steps running at simulated time ``t``.

        Zero-duration steps (e.g. free moves between co-located stores)
        count at their instant: they did run at ``t``, even though
        ``start <= t < finish`` is unsatisfiable for them.
        """
        return sum(
            1 for s in self.schedule
            if (s.start <= t < s.finish) or (s.start == t == s.finish)
        )

    @property
    def max_concurrency(self) -> int:
        """Peak number of concurrently running steps.

        A single sweep over start/finish events — O(n log n), not the
        former O(n²) per-start-time rescan, which 64-workflow cluster
        schedules made noticeable.  At any event time the finishes of
        positive-duration steps are applied first (a step ending exactly
        when another starts does not overlap it), then starts, and
        zero-duration steps at that instant are counted on top.
        """
        starts: dict[float, int] = {}
        finishes: dict[float, int] = {}
        zeros: dict[float, int] = {}
        for s in self.schedule:
            if s.finish <= s.start:
                zeros[s.start] = zeros.get(s.start, 0) + 1
            else:
                starts[s.start] = starts.get(s.start, 0) + 1
                finishes[s.finish] = finishes.get(s.finish, 0) + 1
        peak = running = 0
        for t in sorted(set(starts) | set(finishes) | set(zeros)):
            running -= finishes.get(t, 0)
            running += starts.get(t, 0)
            peak = max(peak, running + zeros.get(t, 0))
        return peak


class StepResolver:
    """Per-run resolution of step durations, faults and speculation.

    One instance per simulated run: it owns the run's RNG stream, so
    resolving the same plan with the same seed always yields the same
    durations — whether the run is simulated alone
    (:class:`ParallelSimulator`) or packed onto a shared cluster
    (:class:`~repro.execution.cluster.ClusterScheduler`).
    """

    def __init__(self, cloud: MultiEngineCloud, rng: np.random.Generator,
                 fault_injector=None, speculation: bool = True,
                 straggler_threshold: float = 2.0) -> None:
        self.cloud = cloud
        self.rng = rng
        self.fault_injector = fault_injector
        self.speculation = speculation
        self.straggler_threshold = straggler_threshold

    def resolve(
        self, step: PlanStep
    ) -> tuple[float | None, StepFailure | None, SpeculationRecord | None]:
        """One step's effective duration, or its failure, plus speculation."""
        if step.is_move:
            seconds = self.cloud.move_seconds(
                step.inputs[0].size, step.inputs[0].store, step.outputs[0].store)
            return seconds, None, None
        engine = self.cloud.engines.get(step.engine or "")
        if engine is None:
            raise SchedulingError(f"engine {step.engine!r} is not deployed")
        if not engine.available:
            return None, StepFailure(
                step, f"{step.operator.name}@{engine.name}: engine is OFF"), None
        workload = workload_from_inputs(step.operator, step.inputs)
        resources = resources_for(step.operator, self.cloud)
        try:
            truth = engine.true_seconds(step.operator.algorithm, workload,
                                        resources)
        except EngineError as exc:
            return None, StepFailure(
                step, f"{step.operator.name}@{engine.name}: {exc}"), None
        noise = float(np.exp(self.rng.normal(0.0, engine.noise_sigma)))
        base = truth * noise
        outcome = (
            self.fault_injector.transient_outcome(engine.name)
            if self.fault_injector is not None else TransientOutcome()
        )
        if outcome.fails:
            return None, StepFailure(
                step,
                f"{step.operator.name}@{engine.name}: transient fault after "
                f"{outcome.work_fraction:.0%} of the work"), None
        if outcome.slowdown <= 1.0:
            return base, None, None
        slowed = base * outcome.slowdown
        if not self.speculation or outcome.slowdown <= self.straggler_threshold:
            return slowed, None, None
        # straggler detected at threshold × nominal: launch a backup copy
        spec = self._speculate(step, engine, workload, resources, base, slowed)
        if spec is None:
            return slowed, None, None
        return spec.effective_seconds, None, spec

    def request(self, step: PlanStep) -> ContainerRequest | None:
        """The container request the step asks the shared scheduler for."""
        if step.is_move:
            return None
        engine = self.cloud.engines[step.engine]
        return engine.request_for(resources_for(step.operator, self.cloud))

    def _speculate(self, step, engine, workload, resources,
                   base: float, slowed: float) -> SpeculationRecord | None:
        backup = self._backup_engine(step, engine)
        if backup is None:
            return None
        try:
            backup_truth = backup.true_seconds(step.operator.algorithm,
                                               workload, resources)
        except EngineError:
            return None
        backup_noise = float(np.exp(self.rng.normal(0.0, backup.noise_sigma)))
        detect = base * self.straggler_threshold
        effective = min(slowed, detect + backup_truth * backup_noise)
        return SpeculationRecord(
            operator=step.operator.name,
            engine=engine.name,
            backup_engine=backup.name,
            original_seconds=slowed,
            effective_seconds=effective,
        )

    def _backup_engine(self, step: PlanStep, original):
        """Fastest other available engine implementing the step's algorithm."""
        workload = workload_from_inputs(step.operator, step.inputs)
        best, best_seconds = None, float("inf")
        for candidate in self.cloud.engines.values():
            if candidate.name == original.name or not candidate.available:
                continue
            if not candidate.supports(step.operator.algorithm):
                continue
            try:
                seconds = candidate.true_seconds(
                    step.operator.algorithm, workload,
                    resources_for(step.operator, self.cloud))
            except EngineError:
                continue
            if seconds < best_seconds:
                best, best_seconds = candidate, seconds
        return best


class ParallelSimulator:
    """Event-driven, fault-aware scheduler for one materialized plan.

    A thin single-run view over the shared cluster event loop: each
    ``simulate`` call admits the plan to a fresh
    :class:`~repro.execution.cluster.ClusterScheduler` over a *clone* of
    the cloud's cluster, so isolated what-if simulations never contend
    with (or mutate) the live placement state.
    """

    def __init__(self, cloud: MultiEngineCloud, seed: int = 0,
                 charge_clock: bool = True, fault_injector=None,
                 speculation: bool = True,
                 straggler_threshold: float = 2.0,
                 tracer: Tracer | None = None) -> None:
        self.cloud = cloud
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: advance the cloud's simulated clock by the makespan afterwards
        self.charge_clock = charge_clock
        #: optional FaultInjector supplying transient outcomes per execution
        self.fault_injector = fault_injector
        #: speculatively re-execute stragglers slower than threshold × nominal
        self.speculation = speculation
        self.straggler_threshold = straggler_threshold

    # -- main loop --------------------------------------------------------------
    def simulate(self, plan: MaterializedPlan) -> ParallelReport:
        """Schedule the plan and return the parallel report."""
        base_sim = self.cloud.clock.now
        with self.tracer.span(
            f"simulate:{plan.workflow.name}", category="simulator",
            workflow=plan.workflow.name, steps=len(plan.steps),
        ) as span:
            report = self._simulate_inner(plan)
            if self.tracer.enabled:
                self._trace_report(report, span, base_sim)
        _SIM_MAKESPAN.observe(report.makespan)
        for sched in report.schedule:
            engine = "move" if sched.step.is_move else (sched.step.engine or "")
            _SIM_STEPS.inc(engine=engine, status="ok")
        for failure in report.failures:
            engine = ("move" if failure.step.is_move
                      else (failure.step.engine or ""))
            _SIM_STEPS.inc(engine=engine,
                           status="cascaded" if failure.cascaded else "failed")
        _LOG.info("simulated", workflow=plan.workflow.name,
                  makespan=report.makespan, speedup=report.speedup,
                  failures=len(report.failures),
                  speculations=len(report.speculations))
        return report

    def _simulate_inner(self, plan: MaterializedPlan) -> ParallelReport:
        # one private shared-loop instance over a cluster clone: isolated
        # what-if simulation, identical event-loop semantics
        from repro.execution.cluster import ClusterScheduler

        loop = ClusterScheduler(
            self.cloud, policy="fifo",
            cluster=self.cloud.cluster.clone(),
            seed=self.seed,
            speculation=self.speculation,
            straggler_threshold=self.straggler_threshold,
            fault_injector=self.fault_injector,
        )
        report = loop.execute(plan, seed=self.seed)
        if self.charge_clock:
            self.cloud.clock.advance(report.makespan)
        return report

    def _trace_report(self, report: ParallelReport, span,
                      base_sim: float) -> None:
        """Retro-record the event loop's schedule as child spans + events."""
        span.set_attribute("makespan", report.makespan)
        span.set_attribute("speedup", report.speedup)
        span.set_attribute("failures", len(report.failures))
        for sched in report.schedule:
            step = sched.step
            self.tracer.record_span(
                f"step:{step.operator.name}", "simulator",
                base_sim + sched.start, base_sim + sched.finish,
                attributes={
                    "operator": step.operator.name,
                    "engine": "move" if step.is_move else (step.engine or ""),
                    "inputs": [d.name for d in step.inputs],
                    "outputs": [d.name for d in step.outputs],
                },
                parent=span,
            )
        for failure in report.failures:
            span.add_event("step_failed",
                           operator=failure.step.operator.name,
                           cascaded=failure.cascaded, error=failure.error)
        for spec in report.speculations:
            span.add_event("speculation", operator=spec.operator,
                           engine=spec.engine,
                           backup_engine=spec.backup_engine,
                           won=spec.won, saved_seconds=spec.saved_seconds)
