"""Write-ahead run journal: durable execution state for crash recovery.

IReS tolerates *engine* failures by replanning (§2.3) and transient faults
by retrying (:mod:`repro.execution.resilience`) — but until now the
scheduler itself was a single point of loss: kill the process mid-run and
every completed step evaporated.  This module makes runs durable:

- :class:`RunJournal` is an append-only JSONL file the enforcer writes
  *before and after* every state change — run admitted, plan chosen
  (digest + epochs), step started/finished (with actuals and materialized
  outputs), replans, terminal state.  Every record carries a sequence
  number and a CRC32 stamp and is flushed + ``fsync``'d before the
  corresponding work is considered done, so a ``kill -9`` can lose at most
  the record being written — never a completed step.
- :func:`read_journal` replays a journal, tolerating exactly the torn
  final line a crashed writer can leave behind (skip with a warning);
  corruption anywhere else raises :class:`JournalCorruptError`.
- :func:`recover` folds the records into a :class:`RecoveredRun`: the
  completed steps' outputs become materialized results, so a resumed run
  seeds the planner's dpTable (and the plan cache key) with them and only
  the unfinished suffix is planned and executed — a journaled-finished
  step is never re-executed.

The journal is the durability substrate under the asyncio service layer
(:mod:`repro.api.service`): the service journals every in-flight run and
re-enqueues interrupted journals on startup.
"""

from __future__ import annotations

import json
import os
import signal
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.runtime_check import LockLike, make_lock
from repro.core.dataset import Dataset
from repro.core.workflow import MaterializedPlan
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

_LOG = get_logger("journal")

_RECORDS = REGISTRY.counter(
    "ires_journal_records_total",
    "Run-journal records appended, by kind",
    labels=("kind",),
)
_TORN = REGISTRY.counter(
    "ires_journal_torn_lines_total",
    "Torn (partially written) journal tail lines skipped on read",
)
_RECOVERIES = REGISTRY.counter(
    "ires_journal_recoveries_total",
    "Journal recovery reads, by terminal state found",
    labels=("state",),
)
_APPEND_SECONDS = REGISTRY.histogram(
    "ires_journal_append_seconds",
    "Wall time spent durably appending one journal record "
    "(serialize + write + flush + fsync)",
)

#: record kinds — the journal's append-only vocabulary
RUN_ADMITTED = "run_admitted"
RUN_RESUMED = "run_resumed"
PLAN_CHOSEN = "plan_chosen"
STEP_STARTED = "step_started"
STEP_FINISHED = "step_finished"
REPLAN = "replan"
RUN_FINISHED = "run_finished"

#: terminal states a ``run_finished`` record can carry
TERMINAL_STATES = ("succeeded", "failed", "cancelled", "deadline", "interrupted")


class JournalError(ValueError):
    """A malformed journal file."""


class JournalCorruptError(JournalError):
    """A journal line failed validation somewhere other than the tail."""


def _stamp(record: dict) -> str:
    """Serialize ``record`` with its CRC32 stamp appended."""
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(canonical.encode("utf-8"))
    return canonical[:-1] + f',"crc":{crc}}}'


def _validate(line: str, line_no: int) -> dict:
    """Parse one journal line, verifying its CRC stamp."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalError(f"line {line_no}: not valid JSON: {exc}") from exc
    if not isinstance(record, dict) or "crc" not in record:
        raise JournalError(f"line {line_no}: missing crc stamp")
    crc = record.pop("crc")
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(canonical.encode("utf-8")) != crc:
        raise JournalError(f"line {line_no}: crc mismatch")
    return record


def _scan(path: str | Path) -> tuple[list[dict], int, bool]:
    """Read a journal file: ``(records, valid_byte_length, torn_tail)``.

    A single appending writer can only tear the *final* line (a crash mid
    ``write``); that line is skipped and reported.  An invalid line that is
    *not* the last one means real corruption and raises
    :class:`JournalCorruptError`.
    """
    data = Path(path).read_bytes()
    records: list[dict] = []
    valid_bytes = 0
    offset = 0
    torn = False
    text = data.decode("utf-8", errors="replace")
    lines = text.split("\n")
    last_content = max((i for i, ln in enumerate(lines) if ln.strip()),
                       default=-1)
    for i, line in enumerate(lines):
        end = offset + len(line.encode("utf-8")) + 1  # +1 for the newline
        is_last = i >= last_content
        if not line.strip():
            offset = end
            continue
        try:
            record = _validate(line, i + 1)
        except JournalError as exc:
            if is_last:
                torn = True
                _TORN.inc()
                _LOG.warning("journal_torn_tail", path=str(path),
                             line=i + 1, error=str(exc))
                break
            raise JournalCorruptError(
                f"{path}: corrupt record before the tail — {exc}"
            ) from exc
        records.append(record)
        valid_bytes = min(end, len(data))
        offset = end
    return records, valid_bytes, torn


def read_journal(path: str | Path) -> list[dict]:
    """Replay a journal file; skips a torn final line with a warning."""
    records, _, _ = _scan(path)
    return records


def journal_path(journal_dir: str | Path, run_id: str) -> Path:
    """The canonical journal file of one run."""
    return Path(journal_dir) / f"{run_id}.jsonl"


def list_journals(journal_dir: str | Path) -> list[Path]:
    """Every run journal under a directory, sorted by modification time."""
    root = Path(journal_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.jsonl"), key=lambda p: p.stat().st_mtime)


def plan_payload(plan: MaterializedPlan, *, digest: str = "",
                 library_epoch: int | None = None,
                 model_epoch: int | None = None,
                 planning_seconds: float = 0.0,
                 cached: bool = False) -> dict:
    """The ``plan_chosen`` record body for one planning pass."""
    return {
        "cost": plan.cost,
        "digest": digest,
        "libraryEpoch": library_epoch,
        "modelEpoch": model_epoch,
        "planningSeconds": round(planning_seconds, 6),
        "cached": cached,
        "steps": [
            {
                "abstract": step.abstract_name,
                "operator": step.operator.name,
                "engine": "move" if step.is_move else (step.engine or ""),
                "isMove": step.is_move,
            }
            for step in plan.steps
        ],
    }


def dataset_payload(dataset: Dataset) -> dict:
    """A JSON-able descriptor from which the dataset can be rebuilt."""
    return {"name": dataset.name,
            "properties": dataset.metadata.to_properties()}


class RunJournal:
    """The write-ahead journal of one workflow run.

    Opening an existing journal (a resume) truncates any torn tail line
    first, so appended records always follow a valid prefix.  Every append
    is flushed and — unless ``fsync=False`` — fsync'd before returning.

    ``crash_after_steps`` is the crash-test hook used by the recovery smoke
    suite: after journaling that many ``step_finished`` records the process
    SIGKILLs itself, simulating a scheduler crash at an exact step boundary.
    """

    def __init__(self, path: str | Path, run_id: str = "",
                 fsync: bool = True,
                 crash_after_steps: int | None = None) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.fsync = fsync
        self.crash_after_steps = crash_after_steps
        # one journal can be shared by enforcer + service threads; the lock
        # serializes appends so seq numbers and the file itself stay ordered
        self._lock: LockLike = make_lock("journal")
        self._seq = 0  # guarded-by: _lock
        self._steps_journaled = 0  # guarded-by: _lock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            records, valid_bytes, torn = _scan(self.path)
            if torn:
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
            if records:
                self._seq = int(records[-1].get("seq", len(records) - 1)) + 1
                self._steps_journaled = sum(
                    1 for r in records if r.get("kind") == STEP_FINISHED)
                if not run_id:
                    self.run_id = str(records[0].get("runId", ""))
        self._handle = open(self.path, "a", encoding="utf-8")

    # -- writing -------------------------------------------------------------
    def append(self, kind: str, **payload: object) -> dict:
        """Durably append one record; returns the record as written."""
        started = time.perf_counter()
        with self._lock:
            record: dict = {"seq": self._seq, "kind": kind,
                            "runId": self.run_id,
                            "wallTime": round(time.time(), 6)}
            record.update(payload)
            self._handle.write(_stamp(record) + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._seq += 1
            crash = False
            if kind == STEP_FINISHED:
                self._steps_journaled += 1
                crash = (self.crash_after_steps is not None
                         and self._steps_journaled >= self.crash_after_steps)
        _APPEND_SECONDS.observe(time.perf_counter() - started)
        _RECORDS.inc(kind=kind)
        if crash:
            # the crash-test hook: die *after* the record hit the disk
            self._handle.flush()
            os.fsync(self._handle.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        return record

    def close(self) -> None:
        """Close the underlying file handle (appends after this reopen)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class RecoveredRun:
    """Everything a crashed (or finished) journal says about its run."""

    run_id: str
    path: Path
    workflow: str = ""
    strategy: str = ""
    #: dataset name -> materialized Dataset, from successful step_finished
    #: records — the dpTable / plan-cache seed of a resumed run
    completed: dict[str, Dataset] = field(default_factory=dict)
    #: successful ``step_finished`` payloads, in journal order
    finished_steps: list[dict] = field(default_factory=list)
    #: terminal state from ``run_finished`` (None = interrupted mid-run)
    terminal: str | None = None
    plans: int = 0
    replans: int = 0
    resumes: int = 0
    records: int = 0
    torn_tail: bool = False

    @property
    def interrupted(self) -> bool:
        """True when the run stopped without finishing and can be resumed.

        Covers both a hard crash (no terminal record at all — a ``kill -9``)
        and a graceful interruption (SIGINT journals an ``interrupted``
        terminal state before the process exits).
        """
        return self.terminal is None or self.terminal == "interrupted"

    def finished_step_keys(self) -> set[tuple[str, str]]:
        """The ``(abstract, operator)`` identities journaled as finished."""
        return {(str(s.get("abstract", "")), str(s.get("operator", "")))
                for s in self.finished_steps}

    def to_dict(self) -> dict:
        """JSON-able summary for the CLI / REST surfaces."""
        return {
            "runId": self.run_id,
            "workflow": self.workflow,
            "strategy": self.strategy,
            "state": self.terminal or "interrupted",
            "finishedSteps": len(self.finished_steps),
            "completedDatasets": sorted(self.completed),
            "plans": self.plans,
            "replans": self.replans,
            "resumes": self.resumes,
            "records": self.records,
            "tornTail": self.torn_tail,
        }


def recover(path: str | Path) -> RecoveredRun:
    """Replay one journal into the state a resumed run starts from.

    Completed steps' outputs come back as materialized datasets; the caller
    hands them to the enforcer as ``resume_from`` so planning skips the
    finished prefix entirely (zero re-execution).
    """
    path = Path(path)
    records, _, torn = _scan(path)
    run = RecoveredRun(run_id=path.stem, path=path, torn_tail=torn,
                       records=len(records))
    for record in records:
        kind = record.get("kind")
        if record.get("runId"):
            run.run_id = str(record["runId"])
        if kind == RUN_ADMITTED:
            run.workflow = str(record.get("workflow", ""))
            run.strategy = str(record.get("strategy", ""))
        elif kind == RUN_RESUMED:
            run.resumes += 1
            run.workflow = str(record.get("workflow", run.workflow))
        elif kind == PLAN_CHOSEN:
            run.plans += 1
        elif kind == REPLAN:
            run.replans += 1
        elif kind == STEP_FINISHED and record.get("success"):
            run.finished_steps.append(record)
            for out in record.get("outputs", ()):
                dataset = Dataset(out["name"], dict(out.get("properties", {})),
                                  materialized=True)
                run.completed[dataset.name] = dataset
        elif kind == RUN_FINISHED:
            run.terminal = str(record.get("state", "failed"))
    _RECOVERIES.inc(state=run.terminal or "interrupted")
    return run
