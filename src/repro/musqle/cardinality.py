"""Cardinality estimation shared by every engine's EXPLAIN endpoint.

Textbook System-R style estimates over :class:`TableStats`:

- equality filter selectivity ``1/V(col)``, range filters ``~1/3`` (or the
  min/max interpolation when bounds are known),
- equi-join cardinality ``|R|·|S| / max(V(R,a), V(S,b))``,
- statistics propagation for the result relation (so injected stats of
  intermediates stay usable for further joins).

Because every engine uses the same estimation logic over its own statistics,
estimation *errors* come from the estimation model — exactly the
misestimate-propagation behaviour the MuSQLE accuracy experiment (Fig 6)
studies as query size grows.
"""

from __future__ import annotations

from repro.sqlengine.parser import Filter, JoinCondition
from repro.sqlengine.schema import ColumnStats, TableStats

DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_NEQ_SELECTIVITY = 0.9


def filter_selectivity(stats: TableStats, f: Filter) -> float:
    """Estimated fraction of rows passing one constant predicate."""
    col = stats.column(f.column)
    if col is None or stats.n_rows == 0:
        return 1.0
    if f.op == "=":
        return 1.0 / max(col.n_distinct, 1)
    if f.op == "!=":
        return DEFAULT_NEQ_SELECTIVITY
    # range predicate: use the equi-depth histogram when available (robust
    # to skew), else interpolate the min/max span
    try:
        value = float(f.value)
    except (TypeError, ValueError):
        return DEFAULT_RANGE_SELECTIVITY
    above = col.range_selectivity_above(value)
    if above is not None:
        sel = 1.0 - above if f.op in ("<", "<=") else above
        return min(max(sel, 0.0005), 1.0)
    span = col.max_value - col.min_value
    if span <= 0:
        return DEFAULT_RANGE_SELECTIVITY
    frac = (value - col.min_value) / span
    frac = min(max(frac, 0.0), 1.0)
    if f.op in ("<", "<="):
        sel = frac
    else:  # '>', '>='
        sel = 1.0 - frac
    return min(max(sel, 0.0005), 1.0)


def estimate_filtered(stats: TableStats, filters: list[Filter]) -> TableStats:
    """Stats of a table after applying constant predicates."""
    selectivity = 1.0
    for f in filters:
        selectivity *= filter_selectivity(stats, f)
    n_rows = max(int(round(stats.n_rows * selectivity)), 1) if stats.n_rows else 0
    columns = {
        name: ColumnStats(
            n_distinct=max(1, min(col.n_distinct, n_rows)),
            min_value=col.min_value,
            max_value=col.max_value,
        )
        for name, col in stats.columns.items()
    }
    return TableStats(n_rows, stats.n_columns, columns)


def estimate_join(
    left: TableStats, right: TableStats, conditions: list[JoinCondition]
) -> TableStats:
    """Stats of an equi-join of two relations over one or more conditions."""
    if not conditions:  # cartesian product
        n_rows = left.n_rows * right.n_rows
    else:
        n_rows = float(left.n_rows) * float(right.n_rows)
        for jc in conditions:
            lcol = left.column(jc.left_column) or right.column(jc.left_column)
            rcol = right.column(jc.right_column) or left.column(jc.right_column)
            v_left = lcol.n_distinct if lcol else 1
            v_right = rcol.n_distinct if rcol else 1
            n_rows /= max(v_left, v_right, 1)
        n_rows = max(int(round(n_rows)), 0)
    columns: dict[str, ColumnStats] = {}
    for side in (left, right):
        for name, col in side.columns.items():
            if name not in columns:
                columns[name] = ColumnStats(
                    n_distinct=max(1, min(col.n_distinct, max(int(n_rows), 1))),
                    min_value=col.min_value,
                    max_value=col.max_value,
                )
    return TableStats(int(n_rows), len(columns), columns)
